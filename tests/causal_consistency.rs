//! Whole-system causal-consistency tests.
//!
//! Every test runs a complete simulated deployment (several data centers, partitions and
//! closed-loop clients) with the *exact* consistency checker enabled: each returned value
//! is validated against the true causal history, independently of the protocol's own
//! dependency metadata, and replicas must converge once traffic drains.

use pocc::sim::{ProtocolKind, SimConfig, Simulation};
use pocc::workload::WorkloadMix;
use std::time::Duration;

fn base(protocol: ProtocolKind, seed: u64) -> pocc::sim::SimConfigBuilder {
    SimConfig::builder()
        .protocol(protocol)
        .replicas(3)
        .partitions(4)
        .clients_per_partition(3)
        .keys_per_partition(200)
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(600))
        .drain(Duration::from_millis(500))
        .check_consistency(true)
        .seed(seed)
}

fn assert_clean(report: &pocc::sim::SimReport) {
    assert!(
        report.operations_completed > 100,
        "the run must do real work: {}",
        report.summary()
    );
    assert_eq!(
        report.consistency_violations,
        0,
        "causal consistency violated: {}",
        report.summary()
    );
    assert!(
        report.converged,
        "replicas did not converge after draining: {}",
        report.summary()
    );
}

#[test]
fn pocc_get_put_workload_is_causally_consistent_across_seeds() {
    for seed in [1, 2, 3] {
        let report = Simulation::new(
            base(ProtocolKind::Pocc, seed)
                .mix(WorkloadMix::GetPut { gets_per_put: 4 })
                .build(),
        )
        .run();
        assert_clean(&report);
    }
}

#[test]
fn cure_get_put_workload_is_causally_consistent_across_seeds() {
    for seed in [1, 2, 3] {
        let report = Simulation::new(
            base(ProtocolKind::Cure, seed)
                .mix(WorkloadMix::GetPut { gets_per_put: 4 })
                .build(),
        )
        .run();
        assert_clean(&report);
    }
}

#[test]
fn pocc_transactional_workload_returns_causal_snapshots() {
    let report = Simulation::new(
        base(ProtocolKind::Pocc, 11)
            .mix(WorkloadMix::TxPut {
                partitions_per_tx: 4,
            })
            .build(),
    )
    .run();
    assert_clean(&report);
    assert!(report.rotx_completed > 50);
}

#[test]
fn cure_transactional_workload_returns_causal_snapshots() {
    let report = Simulation::new(
        base(ProtocolKind::Cure, 11)
            .mix(WorkloadMix::TxPut {
                partitions_per_tx: 4,
            })
            .build(),
    )
    .run();
    assert_clean(&report);
    assert!(report.rotx_completed > 50);
}

#[test]
fn ha_pocc_behaves_like_pocc_during_normal_operation() {
    let report = Simulation::new(
        base(ProtocolKind::HaPocc, 5)
            .mix(WorkloadMix::GetPut { gets_per_put: 4 })
            .build(),
    )
    .run();
    assert_clean(&report);
    // Without partitions the optimistic path serves everything: no sessions are aborted.
    assert_eq!(report.sessions_reinitialized, 0);
}

#[test]
fn write_heavy_workload_stays_consistent() {
    // 1:1 GET:PUT is the most write-intensive point of Figure 1c and the most likely to
    // expose ordering bugs in replication and visibility.
    for protocol in [ProtocolKind::Pocc, ProtocolKind::Cure] {
        let report = Simulation::new(
            base(protocol, 23)
                .mix(WorkloadMix::GetPut { gets_per_put: 1 })
                .build(),
        )
        .run();
        assert_clean(&report);
        assert!(report.puts_completed > 100);
    }
}

#[test]
fn pocc_never_returns_old_data_on_gets_while_cure_does_under_load() {
    let run = |protocol| {
        Simulation::new(
            SimConfig::builder()
                .protocol(protocol)
                .replicas(3)
                .partitions(4)
                .clients_per_partition(12)
                .keys_per_partition(100) // small + zipfian: heavy key contention
                .mix(WorkloadMix::GetPut { gets_per_put: 2 })
                .think_time(Duration::from_millis(2))
                .warmup(Duration::from_millis(200))
                .duration(Duration::from_secs(1))
                .drain(Duration::from_millis(400))
                .seed(9)
                .build(),
        )
        .run()
    };
    let pocc = run(ProtocolKind::Pocc);
    let cure = run(ProtocolKind::Cure);
    // The defining freshness claim of the paper: POCC GETs always return the freshest
    // received version, so they are never "old"; the pessimistic baseline returns old data
    // whenever stabilization lags replication.
    assert_eq!(pocc.server_metrics.old_gets, 0);
    assert!(
        cure.server_metrics.old_gets > 0,
        "Cure* should observe stale reads under this contended workload"
    );
    // And conversely, only POCC ever blocks.
    assert_eq!(cure.server_metrics.blocked_operations, 0);
}

#[test]
fn clock_skew_does_not_break_consistency() {
    // Strongly skewed clocks (5 ms >> the 500 µs default) slow POCC down but must never
    // produce a consistency violation — the paper's correctness argument is skew-free.
    let deployment = pocc::types::Config::builder()
        .num_replicas(3)
        .num_partitions(4)
        .max_clock_skew(Duration::from_millis(5))
        .build()
        .unwrap();
    for protocol in [ProtocolKind::Pocc, ProtocolKind::Cure] {
        let report = Simulation::new(
            SimConfig::builder()
                .deployment(deployment.clone())
                .protocol(protocol)
                .clients_per_partition(3)
                .keys_per_partition(200)
                .think_time(Duration::from_millis(5))
                .warmup(Duration::from_millis(100))
                .duration(Duration::from_millis(600))
                .drain(Duration::from_millis(600))
                .check_consistency(true)
                .seed(31)
                .build(),
        )
        .run();
        assert_clean(&report);
    }
}
