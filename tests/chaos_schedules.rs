//! Whole-system chaos tests: scripted and generated fault schedules under the exact
//! causal checker.
//!
//! Each test runs a full simulated deployment with a [`pocc::sim::ChaosSchedule`] —
//! partitions and heals, lag spikes, drop/duplication windows for idempotent periodic
//! traffic, and whole-DC restarts — while the exact checker validates every returned
//! value against the true causal history. Every schedule is fully over before the drain
//! starts, so the convergence assertion stays meaningful: whatever the chaos did, the
//! replicas must agree once traffic quiesces.
//!
//! The `chaos_*` scenarios of the benchmark registry reuse the same machinery (and the
//! digest corpus pins their exact behaviour); these tests keep the assertions explicit
//! and independent of the bench harness.

use pocc::sim::{ChaosGen, ChaosSchedule, ChaosStep, ProtocolKind, SimConfig, Simulation};
use pocc::types::ReplicaId;
use pocc::workload::WorkloadMix;
use std::time::Duration;

const WARMUP: Duration = Duration::from_millis(100);
const DURATION: Duration = Duration::from_millis(500);
const DRAIN: Duration = Duration::from_millis(500);

fn base(protocol: ProtocolKind, seed: u64) -> pocc::sim::SimConfigBuilder {
    SimConfig::builder()
        .protocol(protocol)
        .replicas(3)
        .partitions(2)
        .clients_per_partition(3)
        .keys_per_partition(100)
        .mix(WorkloadMix::GetPut { gets_per_put: 3 })
        .think_time(Duration::from_millis(5))
        .warmup(WARMUP)
        .duration(DURATION)
        .drain(DRAIN)
        .check_consistency(true)
        .seed(seed)
}

fn assert_clean(label: &str, report: &pocc::sim::SimReport) {
    assert!(
        report.operations_completed > 100,
        "{label}: the run must do real work: {}",
        report.operations_completed
    );
    assert_eq!(
        report.consistency_violations, 0,
        "{label}: causal violations under chaos"
    );
    assert!(report.converged, "{label}: replicas did not converge");
}

#[test]
fn scripted_mixed_schedule_is_checker_clean_on_every_protocol() {
    let schedule = ChaosSchedule::new()
        .step(ChaosStep::Partition {
            at: WARMUP + Duration::from_millis(50),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .step(ChaosStep::Heal {
            at: WARMUP + Duration::from_millis(200),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .step(ChaosStep::LagSpike {
            at: WARMUP + Duration::from_millis(150),
            until: WARMUP + Duration::from_millis(350),
            a: ReplicaId(0),
            b: ReplicaId(2),
            extra: Duration::from_millis(40),
        })
        .step(ChaosStep::DropWindow {
            at: WARMUP + Duration::from_millis(250),
            until: WARMUP + Duration::from_millis(400),
            a: ReplicaId(1),
            b: ReplicaId(2),
        })
        .step(ChaosStep::DupWindow {
            at: WARMUP + Duration::from_millis(400),
            until: WARMUP + DURATION,
            a: ReplicaId(0),
            b: ReplicaId(1),
        });
    assert!(schedule.ends_by(WARMUP + DURATION));
    for protocol in [
        ProtocolKind::Pocc,
        ProtocolKind::Cure,
        ProtocolKind::HaPocc,
        ProtocolKind::Adaptive,
    ] {
        let report = Simulation::new(base(protocol, 7).chaos(schedule.clone()).build()).run();
        assert_clean(&format!("{protocol:?}/scripted"), &report);
    }
}

#[test]
fn generated_storms_are_checker_clean_and_reproducible() {
    for seed in [1, 2, 3] {
        let schedule = ChaosGen::new(seed, 3).sample(WARMUP, WARMUP + DURATION, 5);
        assert!(
            schedule.ends_by(WARMUP + DURATION),
            "seed {seed}: generated schedules must end inside their window"
        );
        // The generator is deterministic: same seed, same schedule.
        assert_eq!(
            schedule,
            ChaosGen::new(seed, 3).sample(WARMUP, WARMUP + DURATION, 5),
            "seed {seed}"
        );
        for protocol in [ProtocolKind::Pocc, ProtocolKind::Cure] {
            let config = base(protocol, seed).chaos(schedule.clone()).build();
            let report = Simulation::new(config.clone()).run();
            assert_clean(&format!("{protocol:?}/storm{seed}"), &report);
            // Chaos runs replay byte-identically, so they stay regression-testable.
            let replay = Simulation::new(config).run();
            assert_eq!(
                report.operations_completed, replay.operations_completed,
                "seed {seed}: chaos replays must be deterministic"
            );
        }
    }
}

#[test]
fn whole_dc_restart_retains_state_and_recovers() {
    let schedule = ChaosSchedule::new().step(ChaosStep::Restart {
        at: WARMUP + Duration::from_millis(100),
        replica: ReplicaId(1),
        outage: Duration::from_millis(80),
    });
    for protocol in [ProtocolKind::HaPocc, ProtocolKind::Adaptive] {
        let report = Simulation::new(base(protocol, 13).chaos(schedule.clone()).build()).run();
        assert_clean(&format!("{protocol:?}/restart"), &report);
    }
}
