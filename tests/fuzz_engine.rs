//! Bounded fuzz sweeps plus pinned regressions for every bug the fuzzer has found.
//!
//! The sweep budget is deliberately small so `cargo test` stays fast; CI's `fuzz-smoke`
//! job and manual deep sweeps (`cargo run --release -p pocc-sim --bin fuzz_engine -- \
//! --seeds 10000 --protocol all`) provide the depth. Override the per-protocol seed
//! count with `POCC_FUZZ_SEEDS`.
//!
//! The regression cases reproduce from their seed alone (the harness replays
//! byte-identically), exactly as the shrinker printed them when the bug was live. Set
//! `POCC_FUZZ_TRACE=1` to narrate a replay step by step.

use pocc::sim::fuzz::{check_case, cross_protocol_check, run_fuzz_case, FuzzCase};
use pocc::sim::ProtocolKind;

fn sweep_seeds() -> u64 {
    std::env::var("POCC_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

#[test]
fn bounded_sweep_is_clean_for_every_protocol() {
    for protocol in [
        ProtocolKind::Pocc,
        ProtocolKind::Cure,
        ProtocolKind::HaPocc,
        ProtocolKind::Adaptive,
    ] {
        for seed in 0..sweep_seeds() {
            let case = FuzzCase {
                protocol,
                seed,
                ..FuzzCase::default()
            };
            if let Err(failure) = check_case(&case) {
                panic!("{failure}");
            }
        }
    }
}

#[test]
fn bounded_cross_protocol_sweep_converges_identically() {
    for seed in 0..sweep_seeds() {
        cross_protocol_check(seed, 200).unwrap_or_else(|err| panic!("seed {seed}: {err}"));
    }
}

/// Found by the fuzzer: POCC served a GET from a version with the same wall-clock
/// timestamp as a strictly newer one the client had already observed, because the
/// server's version vector could trail a locally stored update under coarse clocks.
/// Fixed by flooring the PUT-visibility heartbeat at the local vector entry.
#[test]
fn regression_pocc_seed_3_equal_timestamp_visibility() {
    let outcome = run_fuzz_case(&FuzzCase {
        protocol: ProtocolKind::Pocc,
        replicas: 3,
        partitions: 2,
        clients: 4,
        keys: 12,
        steps: 58,
        chaos: true,
        seed: 3,
    });
    assert!(outcome.is_clean(), "{:?}", outcome.failure_reason());
}

/// Found by the fuzzer: Cure*'s GSS-governed reads broke the session guarantees when a
/// client migrated its session to a replica whose GSS trailed the client's observed
/// dependencies. Fixed by shipping the client's full dependency vector on snapshot
/// reads and parking the GET until the GSS covers its remote entries.
#[test]
fn regression_cure_seed_10_snapshot_session_guarantees() {
    let outcome = run_fuzz_case(&FuzzCase {
        protocol: ProtocolKind::Cure,
        replicas: 3,
        partitions: 2,
        clients: 4,
        keys: 12,
        steps: 137,
        chaos: true,
        seed: 10,
    });
    assert!(outcome.is_clean(), "{:?}", outcome.failure_reason());
}

/// Found by the fuzzer: Cure*'s exchange-free GC collects under the participant's own
/// GSS, so a coordinator with a lagging GSS could assign a read-only transaction a
/// snapshot below versions a participant had already collected — the slice then served
/// a false "no version" for a key that existed. Fixed by refusing such slices against
/// the shard GC watermark and aborting the transaction ("snapshot too old") instead of
/// answering wrong.
#[test]
fn regression_cure_seed_187_gc_snapshot_race() {
    let outcome = run_fuzz_case(&FuzzCase {
        protocol: ProtocolKind::Cure,
        replicas: 3,
        partitions: 2,
        clients: 4,
        keys: 12,
        steps: 392,
        chaos: true,
        seed: 187,
    });
    assert!(outcome.is_clean(), "{:?}", outcome.failure_reason());
}
