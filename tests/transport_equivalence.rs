//! Differential suite: the pluggable transports against the deterministic serial model,
//! for all four protocols.
//!
//! The same seeded, scripted workload — single writer per key, so the final value of
//! every key is determined by the script alone, not by timestamp races — runs through
//!
//! * a hand-pumped serial cluster (the `SimNetwork` execution model: one state machine
//!   per server, messages delivered deterministically),
//! * a real [`Cluster`] on the **channel transport** (threads and in-process queues with
//!   emulated WAN delays), and
//! * a real [`Cluster`] on the **TCP transport** (real localhost sockets, length-prefixed
//!   codec frames, per-connection write coalescing).
//!
//! All three must agree on everything the protocols promise: per-key final values, store
//! convergence across replicas, order-insensitive metric totals and a clean exact causal
//! checker. Interleavings, timestamps and latencies are allowed to differ — that is the
//! point. The channel/TCP agreement in particular pins the socket path's framing, write
//! batching and flush ordering to the in-process semantics.

use pocc::clock::ManualClock;
use pocc::prelude::*;
use pocc::proto::{ClientReply, ClientRequest, ServerMessage, ServerOutput};
use pocc::protocol::Client;
use pocc::sim::ConsistencyChecker;
use pocc::storage::partition_for_key;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

const REPLICAS: usize = 2;
const PARTITIONS: usize = 2;
const CLIENTS: usize = 4;
const KEYS_PER_CLIENT: u64 = 12;
const OPS_PER_CLIENT: usize = 40;
const SEED: u64 = 0xd130_2b97_9af5_2857;

const PROTOCOLS: [RuntimeProtocol; 4] = [
    RuntimeProtocol::Pocc,
    RuntimeProtocol::Cure,
    RuntimeProtocol::HaPocc,
    RuntimeProtocol::Adaptive,
];

#[derive(Clone, Debug)]
enum Op {
    Put(Key, u64),
    Get(Key),
    RoTx(Vec<Key>),
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Keys owned (written) exclusively by `client`.
fn own_key(client: usize, r: u64) -> Key {
    Key(client as u64 * 1_000 + (r % KEYS_PER_CLIENT))
}

/// The per-client operation scripts: PUTs stay within the issuing client's key range,
/// GETs and RO-TXs range over everyone's keys so causality crosses clients.
fn scripts() -> Vec<Vec<Op>> {
    (0..CLIENTS)
        .map(|client| {
            let mut rng = SEED ^ (client as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            (0..OPS_PER_CLIENT)
                .map(|step| {
                    let roll = xorshift(&mut rng);
                    if step % 10 == 9 {
                        let keys = (0..3)
                            .map(|i| {
                                let owner = (xorshift(&mut rng) as usize + i) % CLIENTS;
                                own_key(owner, xorshift(&mut rng))
                            })
                            .collect();
                        Op::RoTx(keys)
                    } else if roll.is_multiple_of(3) {
                        let owner = xorshift(&mut rng) as usize % CLIENTS;
                        Op::Get(own_key(owner, xorshift(&mut rng)))
                    } else {
                        Op::Put(own_key(client, xorshift(&mut rng)), xorshift(&mut rng))
                    }
                })
                .collect()
        })
        .collect()
}

/// The final value of every written key, determined by the scripts alone.
fn expected_final_values(scripts: &[Vec<Op>]) -> HashMap<Key, Value> {
    let mut map = HashMap::new();
    for script in scripts {
        for op in script {
            if let Op::Put(key, value) = op {
                map.insert(*key, Value::from(*value));
            }
        }
    }
    map
}

fn config() -> Config {
    Config::builder()
        .num_replicas(REPLICAS)
        .num_partitions(PARTITIONS)
        .latency(LatencyMatrix::uniform(
            REPLICAS,
            Duration::from_micros(50),
            Duration::from_millis(2),
        ))
        .build()
        .unwrap()
}

fn uses_snapshot_reads(protocol: RuntimeProtocol) -> bool {
    matches!(protocol, RuntimeProtocol::Cure | RuntimeProtocol::Adaptive)
}

/// What every driver must agree on.
struct Outcome {
    final_values: HashMap<Key, Value>,
    puts_served: u64,
    rotx_served: u64,
    replicate_sent: u64,
    sessions_aborted: u64,
    violations: usize,
}

fn check_outcome(label: &str, outcome: &Outcome, scripts: &[Vec<Op>]) {
    let mut puts = 0u64;
    let mut txs = 0u64;
    for op in scripts.iter().flatten() {
        match op {
            Op::Put(..) => puts += 1,
            Op::RoTx(..) => txs += 1,
            Op::Get(..) => {}
        }
    }
    assert_eq!(outcome.violations, 0, "{label}: causal violations");
    assert_eq!(outcome.sessions_aborted, 0, "{label}: aborted sessions");
    assert_eq!(outcome.puts_served, puts, "{label}: puts served");
    assert_eq!(outcome.rotx_served, txs, "{label}: transactions served");
    assert_eq!(
        outcome.replicate_sent,
        puts * (REPLICAS as u64 - 1),
        "{label}: replication fan-out"
    );
    assert_eq!(
        &outcome.final_values,
        &expected_final_values(scripts),
        "{label}: converged store does not match the script"
    );
}

fn record(
    checker: &mut ConsistencyChecker,
    id: ClientId,
    replica: ReplicaId,
    op: &Op,
    reply: &ClientReply,
) {
    match (reply, op) {
        (ClientReply::Put { update_time }, Op::Put(key, _)) => {
            checker.record_write(id, *key, *update_time, replica);
        }
        (ClientReply::Get(resp), Op::Get(key)) => {
            let returned = resp
                .value
                .as_ref()
                .map(|_| (resp.update_time, resp.source_replica));
            checker.record_read(id, *key, returned);
        }
        (ClientReply::RoTx { items }, Op::RoTx(_)) => {
            let recorded: Vec<_> = items
                .iter()
                .map(|item| {
                    let returned = item
                        .response
                        .value
                        .as_ref()
                        .map(|_| (item.response.update_time, item.response.source_replica));
                    (item.key, returned)
                })
                .collect();
            checker.record_transaction(id, &recorded);
        }
        (reply, op) => panic!("mismatched reply {reply:?} for op {op:?}"),
    }
}

// ---------------------------------------------------------------------------
// Driver 1: the serial, deterministically pumped cluster (SimNetwork model).
// ---------------------------------------------------------------------------

struct SerialDriver {
    servers: HashMap<ServerId, Box<dyn InstrumentedServer>>,
    in_flight: VecDeque<(ServerId, ServerId, ServerMessage)>,
    replies: HashMap<ClientId, VecDeque<ClientReply>>,
    clock: ManualClock,
    now_us: u64,
}

impl SerialDriver {
    fn new(protocol: RuntimeProtocol, cfg: &Config) -> Self {
        let clock = ManualClock::new(Timestamp(10_000));
        let servers = cfg
            .servers()
            .map(|id| {
                let server: Box<dyn InstrumentedServer> = match protocol {
                    RuntimeProtocol::Pocc => {
                        Box::new(pocc::PoccServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::Cure => {
                        Box::new(pocc::CureServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::HaPocc => {
                        Box::new(pocc::HaPoccServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::Adaptive => {
                        Box::new(pocc::AdaptiveServer::new(id, cfg.clone(), clock.clone()))
                    }
                };
                (id, server)
            })
            .collect();
        SerialDriver {
            servers,
            in_flight: VecDeque::new(),
            replies: HashMap::new(),
            clock,
            now_us: 10_000,
        }
    }

    fn absorb(&mut self, from: ServerId, outputs: Vec<ServerOutput>) {
        for output in outputs {
            match output {
                ServerOutput::Reply { client, reply } => {
                    self.replies.entry(client).or_default().push_back(reply)
                }
                ServerOutput::Send { to, message } => self.in_flight.push_back((from, to, message)),
            }
        }
    }

    fn deliver_all(&mut self) {
        while let Some((from, to, message)) = self.in_flight.pop_front() {
            let outputs = self
                .servers
                .get_mut(&to)
                .unwrap()
                .handle_server_message(from, message);
            self.absorb(to, outputs);
        }
    }

    fn tick_all(&mut self) {
        self.now_us += 500;
        self.clock.set(Timestamp(self.now_us));
        let ids: Vec<ServerId> = self.servers.keys().copied().collect();
        for id in ids {
            let outputs = self.servers.get_mut(&id).unwrap().tick();
            self.absorb(id, outputs);
        }
    }

    fn submit(&mut self, client: ClientId, target: ServerId, request: ClientRequest) {
        self.now_us += 20;
        self.clock.set(Timestamp(self.now_us));
        let outputs = self
            .servers
            .get_mut(&target)
            .unwrap()
            .handle_client_request(client, request);
        self.absorb(target, outputs);
    }

    fn await_reply(&mut self, client: ClientId) -> ClientReply {
        for _ in 0..10_000 {
            if let Some(reply) = self.replies.get_mut(&client).and_then(|q| q.pop_front()) {
                return reply;
            }
            self.deliver_all();
            self.tick_all();
        }
        panic!("client {client:?} never received a reply");
    }
}

fn run_serial(protocol: RuntimeProtocol, scripts: &[Vec<Op>]) -> Outcome {
    let cfg = config();
    let mut driver = SerialDriver::new(protocol, &cfg);
    let mut checker = ConsistencyChecker::new();

    let mut sessions: Vec<Client> = (0..CLIENTS)
        .map(|i| {
            let id = ClientId(i as u64);
            let home = ServerId::new(ReplicaId((i % REPLICAS) as u16), 0u32);
            if uses_snapshot_reads(protocol) {
                Client::new_snapshot_reads(id, home, REPLICAS)
            } else {
                Client::new(id, home, REPLICAS)
            }
        })
        .collect();

    #[allow(clippy::needless_range_loop)] // `step` is the round-robin outer index
    for step in 0..OPS_PER_CLIENT {
        for (i, session) in sessions.iter_mut().enumerate() {
            let id = ClientId(i as u64);
            let replica = ReplicaId((i % REPLICAS) as u16);
            let op = &scripts[i][step];
            let (target, request) = match op {
                Op::Put(key, value) => (
                    ServerId::new(replica, partition_for_key(*key, PARTITIONS)),
                    session.put(*key, Value::from(*value)),
                ),
                Op::Get(key) => (
                    ServerId::new(replica, partition_for_key(*key, PARTITIONS)),
                    session.get(*key),
                ),
                Op::RoTx(keys) => (
                    ServerId::new(replica, partition_for_key(keys[0], PARTITIONS)),
                    session.ro_tx(keys.clone()),
                ),
            };
            driver.submit(id, target, request);
            let reply = driver.await_reply(id);
            session.process_reply(&reply).expect("no aborts expected");
            record(&mut checker, id, replica, op, &reply);
        }
    }

    for _ in 0..40 {
        driver.tick_all();
        driver.deliver_all();
    }
    for partition in 0..PARTITIONS {
        let per_replica: Vec<_> = driver
            .servers
            .iter()
            .filter(|(id, _)| id.partition.index() == partition)
            .map(|(_, s)| s.digest())
            .collect();
        assert!(
            per_replica.windows(2).all(|w| w[0] == w[1]),
            "serial {protocol:?}: partition {partition} replicas diverged"
        );
    }

    // Read the final values back through a fresh session at replica 0, pumping ticks
    // until stable-reads protocols let the newest writes become visible.
    let mut final_values = HashMap::new();
    let mut reader = Client::new(ClientId(9_999), ServerId::new(ReplicaId(0), 0u32), REPLICAS);
    for (key, wanted) in &expected_final_values(scripts) {
        let target = ServerId::new(ReplicaId(0), partition_for_key(*key, PARTITIONS));
        for attempt in 0..200 {
            let request = reader.get(*key);
            driver.submit(ClientId(9_999), target, request);
            let reply = driver.await_reply(ClientId(9_999));
            reader.process_reply(&reply).unwrap();
            let ClientReply::Get(resp) = reply else {
                panic!("unexpected reply to the read-back GET");
            };
            if resp.value.as_ref() == Some(wanted) {
                final_values.insert(*key, resp.value.unwrap());
                break;
            }
            assert!(
                attempt < 199,
                "serial {protocol:?}: {key} never reached its final value"
            );
            driver.tick_all();
            driver.deliver_all();
        }
    }

    let mut totals = MetricsTotals::default();
    for server in driver.servers.values() {
        totals.add(&server.metrics());
    }
    totals.into_outcome(final_values, checker.violations().len())
}

#[derive(Default)]
struct MetricsTotals {
    puts: u64,
    rotx: u64,
    replicate: u64,
    aborted: u64,
}

impl MetricsTotals {
    fn add(&mut self, m: &pocc::proto::MetricsSnapshot) {
        self.puts += m.puts_served;
        self.rotx += m.rotx_served;
        self.replicate += m.replicate_sent;
        self.aborted += m.sessions_aborted;
    }

    fn into_outcome(self, final_values: HashMap<Key, Value>, violations: usize) -> Outcome {
        Outcome {
            final_values,
            puts_served: self.puts,
            rotx_served: self.rotx,
            replicate_sent: self.replicate,
            sessions_aborted: self.aborted,
            violations,
        }
    }
}

// ---------------------------------------------------------------------------
// Drivers 2 and 3: the threaded cluster on a real transport backend.
// ---------------------------------------------------------------------------

fn run_cluster(
    protocol: RuntimeProtocol,
    scripts: &[Vec<Op>],
    transport: TransportKind,
) -> Outcome {
    let cluster = Cluster::builder()
        .config(config())
        .protocol(protocol)
        .transport(transport)
        .start();
    let mut checker = ConsistencyChecker::new();
    let mut clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|i| cluster.client(ReplicaId((i % REPLICAS) as u16)))
        .collect();

    #[allow(clippy::needless_range_loop)] // `step` is the round-robin outer index
    for step in 0..OPS_PER_CLIENT {
        for (i, client) in clients.iter_mut().enumerate() {
            let id = client.id();
            let replica = client.replica();
            let op = &scripts[i][step];
            match op {
                Op::Put(key, value) => {
                    let update_time = client.put(*key, Value::from(*value)).unwrap();
                    checker.record_write(id, *key, update_time, replica);
                }
                Op::Get(key) => {
                    let resp = client.get_versioned(*key).unwrap();
                    let returned = resp
                        .value
                        .as_ref()
                        .map(|_| (resp.update_time, resp.source_replica));
                    checker.record_read(id, *key, returned);
                }
                Op::RoTx(keys) => {
                    let items = client.ro_tx_versioned(keys.clone()).unwrap();
                    let recorded: Vec<_> = items
                        .iter()
                        .map(|item| {
                            let returned =
                                item.response.value.as_ref().map(|_| {
                                    (item.response.update_time, item.response.source_replica)
                                });
                            (item.key, returned)
                        })
                        .collect();
                    checker.record_transaction(id, &recorded);
                }
            }
        }
    }

    // Wait for replication to drain: every partition's replicas must reach identical
    // digests.
    let mut converged = false;
    for _ in 0..2_000 {
        let probes = cluster.probe_all();
        converged = (0..PARTITIONS).all(|partition| {
            let per_replica: Vec<_> = probes
                .iter()
                .filter(|(id, _)| id.partition.index() == partition)
                .map(|(_, p)| p.digest.clone())
                .collect();
            per_replica.windows(2).all(|w| w[0] == w[1])
        });
        if converged {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        converged,
        "{transport:?} {protocol:?}: replicas did not converge"
    );

    let mut reader = cluster.client(ReplicaId(0));
    let mut final_values = HashMap::new();
    for (key, wanted) in &expected_final_values(scripts) {
        for attempt in 0..500 {
            if reader.get(*key).unwrap().as_ref() == Some(wanted) {
                final_values.insert(*key, wanted.clone());
                break;
            }
            assert!(
                attempt < 499,
                "{transport:?} {protocol:?}: {key} never reached its final value"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let mut totals = MetricsTotals::default();
    for (_, probe) in cluster.probe_all() {
        totals.add(&probe.metrics);
    }
    cluster.shutdown();
    totals.into_outcome(final_values, checker.violations().len())
}

// ---------------------------------------------------------------------------
// The differential tests.
// ---------------------------------------------------------------------------

fn assert_agree(label: &str, a: &Outcome, b: &Outcome) {
    assert_eq!(
        a.final_values, b.final_values,
        "{label}: drivers disagree on final per-key values"
    );
    assert_eq!(
        a.puts_served, b.puts_served,
        "{label}: drivers disagree on puts served"
    );
    assert_eq!(
        a.rotx_served, b.rotx_served,
        "{label}: drivers disagree on transactions served"
    );
    assert_eq!(
        a.replicate_sent, b.replicate_sent,
        "{label}: drivers disagree on replication volume"
    );
}

#[test]
fn serial_channel_and_tcp_agree_for_every_protocol() {
    let scripts = scripts();
    for protocol in PROTOCOLS {
        let serial = run_serial(protocol, &scripts);
        check_outcome(&format!("serial {protocol:?}"), &serial, &scripts);

        let channel = run_cluster(protocol, &scripts, TransportKind::Channel);
        check_outcome(&format!("channel {protocol:?}"), &channel, &scripts);

        let tcp = run_cluster(protocol, &scripts, TransportKind::Tcp);
        check_outcome(&format!("tcp {protocol:?}"), &tcp, &scripts);

        assert_agree(&format!("{protocol:?} serial/channel"), &serial, &channel);
        assert_agree(&format!("{protocol:?} channel/tcp"), &channel, &tcp);
    }
}
