//! End-to-end tests of the threaded in-process cluster (`pocc-runtime`).
//!
//! These exercise the same protocol state machines as the simulator tests, but on real
//! threads and real (emulated-WAN) timing, through the synchronous client API that the
//! examples and downstream applications use.

use pocc::prelude::*;
use std::time::Duration;

fn start(config: Config, protocol: RuntimeProtocol) -> Cluster {
    Cluster::builder().config(config).protocol(protocol).start()
}

fn config(replicas: usize, partitions: usize, wan_ms: u64) -> Config {
    Config::builder()
        .num_replicas(replicas)
        .num_partitions(partitions)
        .latency(LatencyMatrix::uniform(
            replicas,
            Duration::from_micros(100),
            Duration::from_millis(wan_ms),
        ))
        .build()
        .unwrap()
}

/// Polls a closure until it returns `Some`, or panics after ~2 seconds.
fn eventually<T>(mut f: impl FnMut() -> Option<T>) -> T {
    for _ in 0..1_000 {
        if let Some(v) = f() {
            return v;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("condition not reached within the polling budget");
}

#[test]
fn writes_are_read_back_in_session() {
    let cluster = start(config(3, 4, 10), RuntimeProtocol::Pocc);
    let mut client = cluster.client(ReplicaId(1));
    for k in 0..20u64 {
        client.put(Key(k), Value::from(k)).unwrap();
    }
    for k in 0..20u64 {
        let v = client.get(Key(k)).unwrap().expect("own writes are visible");
        assert_eq!(v, Value::from(k));
    }
    cluster.shutdown();
}

#[test]
fn geo_replication_delivers_updates_to_every_data_center() {
    let cluster = start(config(3, 2, 5), RuntimeProtocol::Pocc);
    let mut writer = cluster.client(ReplicaId(0));
    writer.put(Key(1), Value::from("everywhere")).unwrap();
    for replica in 1..3u16 {
        let mut reader = cluster.client(ReplicaId(replica));
        let value = eventually(|| reader.get(Key(1)).unwrap());
        assert_eq!(value.as_slice(), b"everywhere");
    }
    cluster.shutdown();
}

#[test]
fn causal_order_is_preserved_across_data_centers() {
    // The photo/comment scenario: whenever the dependent item is visible remotely, its
    // dependency must be visible too, for many rounds and several interleavings.
    let cluster = start(config(2, 4, 8), RuntimeProtocol::Pocc);
    let mut alice = cluster.client(ReplicaId(0));
    let mut bob = cluster.client(ReplicaId(1));
    for round in 0..20u64 {
        let photo = Key(1_000 + round);
        let comment = Key(2_000 + round);
        alice.put(photo, Value::from("photo")).unwrap();
        alice.put(comment, Value::from("comment")).unwrap();

        // Wait until the comment becomes visible in DC1, then the photo must be there too.
        eventually(|| bob.get(comment).unwrap());
        let photo_value = bob.get(photo).unwrap();
        assert!(
            photo_value.is_some(),
            "round {round}: comment visible without its causally preceding photo"
        );
    }
    cluster.shutdown();
}

#[test]
fn read_dependencies_propagate_between_clients_of_the_same_dc() {
    let cluster = start(config(2, 4, 8), RuntimeProtocol::Pocc);
    let mut writer = cluster.client(ReplicaId(0));
    let mut relay = cluster.client(ReplicaId(1));
    let mut reader = cluster.client(ReplicaId(1));

    writer.put(Key(10), Value::from("base")).unwrap();
    // The relay in DC1 observes the replicated value and writes something that depends on
    // it; the reader then reads the relay's write followed by the base key.
    let base = eventually(|| relay.get(Key(10)).unwrap());
    assert_eq!(base.as_slice(), b"base");
    relay.put(Key(11), Value::from("derived")).unwrap();

    let derived = eventually(|| reader.get(Key(11)).unwrap());
    assert_eq!(derived.as_slice(), b"derived");
    let base_again = reader.get(Key(10)).unwrap();
    assert!(
        base_again.is_some(),
        "reading the derived item establishes a dependency on the base item"
    );
    cluster.shutdown();
}

#[test]
fn read_only_transactions_return_complete_snapshots() {
    let cluster = start(config(2, 4, 5), RuntimeProtocol::Pocc);
    let mut client = cluster.client(ReplicaId(0));
    let keys: Vec<Key> = (100..110u64).map(Key).collect();
    for (i, key) in keys.iter().enumerate() {
        client.put(*key, Value::from(i as u64)).unwrap();
    }
    // Let the heartbeat protocol advance the coordinator's version vector past the writes
    // performed at other partitions (the snapshot is bounded by it).
    std::thread::sleep(Duration::from_millis(15));
    let snapshot = client.ro_tx(keys.clone()).unwrap();
    assert_eq!(snapshot.len(), keys.len());
    assert!(snapshot.iter().all(|(_, v)| v.is_some()));
    cluster.shutdown();
}

#[test]
fn cure_cluster_eventually_exposes_remote_writes() {
    let cluster = start(config(3, 2, 5), RuntimeProtocol::Cure);
    let mut writer = cluster.client(ReplicaId(0));
    let mut reader = cluster.client(ReplicaId(2));
    writer.put(Key(5), Value::from("stable")).unwrap();
    // Cure* waits for the stabilization protocol before exposing the remote write, but it
    // must become visible eventually.
    let value = eventually(|| reader.get(Key(5)).unwrap());
    assert_eq!(value.as_slice(), b"stable");
    cluster.shutdown();
}

#[test]
fn ha_cluster_serves_all_operation_types() {
    let cluster = start(config(2, 2, 5), RuntimeProtocol::HaPocc);
    let mut client = cluster.client(ReplicaId(0));
    client.put(Key(1), Value::from("ha")).unwrap();
    assert_eq!(client.get(Key(1)).unwrap().unwrap().as_slice(), b"ha");
    std::thread::sleep(Duration::from_millis(10));
    let tx = client.ro_tx(vec![Key(1), Key(2)]).unwrap();
    assert_eq!(tx.len(), 2);
    cluster.shutdown();
}

#[test]
fn many_clients_in_parallel_do_not_interfere() {
    let cluster = start(config(2, 4, 3), RuntimeProtocol::Pocc);
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let mut client = cluster.client(ReplicaId((t % 2) as u16));
        handles.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                let key = Key(10_000 + t * 1_000 + i);
                client.put(key, Value::from(i)).unwrap();
                let v = client.get(key).unwrap().expect("read-your-writes");
                assert_eq!(v, Value::from(i));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }
    cluster.shutdown();
}
