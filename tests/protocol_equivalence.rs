//! Cross-protocol differential suite: the four engine-based servers are observationally
//! equivalent wherever the protocols promise the same outcome.
//!
//! Three layers of evidence:
//!
//! * A hand-pumped three-DC cluster driven with an identical write script through each of
//!   the four protocols: once traffic drains, every protocol must converge to
//!   byte-identical store digests and version vectors on every server — replication,
//!   heartbeats and batching are shared engine machinery, and visibility policies must
//!   never change *what state replicas build*, only what reads may see in the meantime.
//! * The same equivalence with replication batching enabled, pinning the policy-agnostic
//!   batcher flush ordering.
//! * Full simulations of all four protocols with the exact causal-consistency checker
//!   enabled: zero violations and full convergence under a real interleaved workload.

use pocc::adaptive::AdaptiveServer;
use pocc::clock::ManualClock;
use pocc::cure::CureServer;
use pocc::ha::HaPoccServer;
use pocc::proto::{ClientRequest, InstrumentedServer, ServerMessage, ServerOutput};
use pocc::protocol::PoccServer;
use pocc::sim::{ProtocolKind, SimConfig, Simulation};
use pocc::types::{ClientId, Config, DependencyVector, Key, ReplicaId, ServerId, Timestamp, Value};
use pocc::workload::WorkloadMix;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

const MS: u64 = 1_000;

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Pocc,
    ProtocolKind::Cure,
    ProtocolKind::HaPocc,
    ProtocolKind::Adaptive,
];

/// What a server ends up with once traffic drains: its store digest.
type ServerState = HashMap<ServerId, Vec<(Key, Timestamp, ReplicaId)>>;

fn build_server(
    protocol: ProtocolKind,
    id: ServerId,
    cfg: &Config,
    clock: &ManualClock,
) -> Box<dyn InstrumentedServer> {
    match protocol {
        ProtocolKind::Pocc => Box::new(PoccServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::Cure => Box::new(CureServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::HaPocc => Box::new(HaPoccServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::Adaptive => Box::new(AdaptiveServer::new(id, cfg.clone(), clock.clone())),
    }
}

/// Runs a small cluster of `protocol` servers to quiescence: a fixed write script spread
/// over the servers, then enough ticks to flush every batch and deliver every message.
/// Returns each server's store digest.
fn run_cluster(protocol: ProtocolKind, batching: bool) -> ServerState {
    let cfg = Config::builder()
        .num_replicas(3)
        .num_partitions(2)
        .storage_shards(4)
        .replication_batching(batching)
        .build()
        .unwrap();
    let clock = ManualClock::new(Timestamp(10 * MS));
    let mut servers: HashMap<ServerId, Box<dyn InstrumentedServer>> = cfg
        .servers()
        .map(|id| (id, build_server(protocol, id, &cfg, &clock)))
        .collect();

    let mut in_flight: VecDeque<(ServerId, ServerId, ServerMessage)> = VecDeque::new();
    let collect =
        |from: ServerId,
         outputs: Vec<ServerOutput>,
         in_flight: &mut VecDeque<(ServerId, ServerId, ServerMessage)>| {
            for output in outputs {
                if let ServerOutput::Send { to, message } = output {
                    in_flight.push_back((from, to, message));
                }
            }
        };

    // 24 writes, directed at the server owning each key, round-robin over the replicas.
    for written in 0..24u64 {
        let key = Key(written);
        let partition = pocc::storage::partition_for_key(key, cfg.num_partitions);
        let replica = ReplicaId((written % 3) as u16);
        let target = ServerId::new(replica, partition);
        clock.set(Timestamp((10 + written) * MS));
        let outputs = servers.get_mut(&target).unwrap().handle_client_request(
            ClientId(written),
            ClientRequest::Put {
                key,
                value: Value::from(written),
                dv: DependencyVector::zero(3),
            },
        );
        collect(target, outputs, &mut in_flight);
    }

    // Drain: alternate ticks (which flush batches, emit heartbeats and run the periodic
    // protocols) with message delivery until the cluster is quiescent.
    for round in 0..20u64 {
        clock.set(Timestamp((40 + round) * MS));
        let ids: Vec<ServerId> = servers.keys().copied().collect();
        for id in ids {
            let outputs = servers.get_mut(&id).unwrap().tick();
            collect(id, outputs, &mut in_flight);
        }
        while let Some((from, to, message)) = in_flight.pop_front() {
            let outputs = servers
                .get_mut(&to)
                .unwrap()
                .handle_server_message(from, message);
            collect(to, outputs, &mut in_flight);
        }
    }

    servers.iter().map(|(id, s)| (*id, s.digest())).collect()
}

#[test]
fn all_protocols_build_identical_replicated_state() {
    for batching in [false, true] {
        let reference = run_cluster(ProtocolKind::Pocc, batching);
        // Sanity: the script actually landed data and siblings converged.
        assert!(reference.values().any(|d| !d.is_empty()));
        for partition in 0..2u32 {
            let sample: Vec<_> = reference
                .iter()
                .filter(|(id, _)| id.partition.index() == partition as usize)
                .map(|(_, d)| d.clone())
                .collect();
            assert!(
                sample.windows(2).all(|w| w[0] == w[1]),
                "siblings of partition {partition} diverged (batching={batching})"
            );
        }
        for protocol in [
            ProtocolKind::Cure,
            ProtocolKind::HaPocc,
            ProtocolKind::Adaptive,
        ] {
            let state = run_cluster(protocol, batching);
            assert_eq!(state.len(), reference.len());
            for (id, digest) in &reference {
                assert_eq!(
                    digest, &state[id],
                    "{protocol} diverged from POCC at {id} (batching={batching})"
                );
            }
        }
    }
}

fn checked_sim(protocol: ProtocolKind, batching: bool) -> pocc::sim::SimReport {
    Simulation::new(
        SimConfig::builder()
            .protocol(protocol)
            .replicas(3)
            .partitions(2)
            .clients_per_partition(2)
            .keys_per_partition(50)
            .storage_shards(4)
            .replication_batching(batching)
            .mix(WorkloadMix::GetPut { gets_per_put: 2 })
            .think_time(Duration::from_millis(5))
            .warmup(Duration::from_millis(100))
            .duration(Duration::from_millis(600))
            .drain(Duration::from_millis(300))
            .check_consistency(true)
            .seed(19)
            .build(),
    )
    .run()
}

#[test]
fn every_protocol_is_causally_clean_and_convergent_under_the_checker() {
    for protocol in PROTOCOLS {
        for batching in [false, true] {
            let report = checked_sim(protocol, batching);
            assert!(
                report.operations_completed > 0,
                "{protocol} (batching={batching}): no operations"
            );
            assert_eq!(
                report.consistency_violations, 0,
                "{protocol} (batching={batching}): causal violations"
            );
            assert!(
                report.converged,
                "{protocol} (batching={batching}): replicas did not converge"
            );
        }
    }
}

#[test]
fn adaptive_staleness_sits_between_pocc_and_cure() {
    // Fixed seed, small keyspace (hot keys collide often): POCC never returns old data,
    // Cure* does; the adaptive fall-back engages on churny keys and stays causally clean.
    let pocc = checked_sim(ProtocolKind::Pocc, false);
    let adaptive = checked_sim(ProtocolKind::Adaptive, false);
    let cure = checked_sim(ProtocolKind::Cure, false);

    assert_eq!(pocc.server_metrics.stable_fallback_gets, 0);
    assert_eq!(cure.server_metrics.stable_fallback_gets, 0);
    assert!(
        adaptive.server_metrics.stable_fallback_gets > 0,
        "the per-key fall-back must engage under this workload"
    );
    assert_eq!(pocc.server_metrics.old_gets, 0, "POCC reads are never old");
    assert!(
        adaptive.server_metrics.old_gets <= cure.server_metrics.old_gets,
        "adaptive must not be staler than Cure* (adaptive {} vs cure {})",
        adaptive.server_metrics.old_gets,
        cure.server_metrics.old_gets
    );
}
