//! Behaviour under injected network partitions (the availability trade-off of §III-B).

use pocc::sim::{FaultEvent, ProtocolKind, SimConfig, Simulation};
use pocc::types::ReplicaId;
use pocc::workload::WorkloadMix;
use std::time::Duration;

fn partitioned_run(protocol: ProtocolKind, heal: bool) -> pocc::sim::SimReport {
    // A detection timeout well below the partition duration, so that plain POCC actually
    // reaches the "close the session" phase of the recovery procedure during the test.
    let deployment = pocc::types::Config::builder()
        .num_replicas(3)
        .num_partitions(3)
        .partition_detection_timeout(Duration::from_millis(400))
        .build()
        .unwrap();
    let mut builder = SimConfig::builder()
        .protocol(protocol)
        .deployment(deployment)
        .clients_per_partition(4)
        .keys_per_partition(200)
        .mix(WorkloadMix::GetPut { gets_per_put: 3 })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_secs(3))
        .drain(Duration::from_secs(1))
        .check_consistency(true)
        .seed(77)
        .fault(FaultEvent::Partition {
            at: Duration::from_millis(800),
            a: ReplicaId(0),
            b: ReplicaId(1),
        });
    if heal {
        builder = builder.fault(FaultEvent::Heal {
            at: Duration::from_millis(2_000),
            a: ReplicaId(0),
            b: ReplicaId(1),
        });
    }
    Simulation::new(builder.build()).run()
}

#[test]
fn pocc_stays_consistent_through_a_partition_and_heal() {
    let report = partitioned_run(ProtocolKind::Pocc, true);
    assert_eq!(report.consistency_violations, 0);
    // The lossless network re-delivers held traffic after the heal, so replicas converge.
    assert!(report.converged, "replicas must converge after the heal");
    assert!(report.operations_completed > 200);
}

#[test]
fn pocc_aborts_blocked_sessions_during_a_partition() {
    let report = partitioned_run(ProtocolKind::Pocc, true);
    // Some clients depended on updates stuck behind the partition; their requests blocked
    // past the detection timeout and their sessions were closed (§III-B phase 1).
    assert!(
        report.sessions_reinitialized > 0,
        "expected at least one session abort during the partition"
    );
    assert!(report.server_metrics.sessions_aborted > 0);
}

#[test]
fn ha_pocc_keeps_serving_without_blocking_anomalies_during_a_partition() {
    let pocc = partitioned_run(ProtocolKind::Pocc, true);
    let ha = partitioned_run(ProtocolKind::HaPocc, true);
    assert_eq!(ha.consistency_violations, 0);
    assert!(ha.converged);
    // The fall-back removes the long dependency stalls, so the worst-case latency during
    // the partition is far smaller than plain POCC's (which waits until the detection
    // timeout fires).
    assert!(
        ha.latency_all.max() < pocc.latency_all.max(),
        "HA-POCC worst-case latency {:?} should be below plain POCC's {:?}",
        ha.latency_all.max(),
        pocc.latency_all.max()
    );
}

#[test]
fn cure_is_unaffected_by_partitions_apart_from_staleness() {
    let report = partitioned_run(ProtocolKind::Cure, true);
    assert_eq!(report.consistency_violations, 0);
    assert!(report.converged);
    // The pessimistic protocol never blocks client operations, partition or not.
    assert_eq!(report.server_metrics.blocked_operations, 0);
    assert_eq!(report.sessions_reinitialized, 0);
}

#[test]
fn unhealed_partition_prevents_convergence_but_not_safety() {
    let report = partitioned_run(ProtocolKind::Pocc, false);
    assert_eq!(report.consistency_violations, 0);
    // Updates held on the partitioned link were never delivered, so replicas of the same
    // partition legitimately diverge (the "lost update" discussion of §III-B).
    assert!(
        !report.converged,
        "replicas cannot converge while the partition persists"
    );
    assert!(report.network.held_messages > 0);
}
