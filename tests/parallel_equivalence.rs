//! Differential suite: the threaded shard-parallel runtime against the deterministic
//! single-threaded drivers, for all four protocols.
//!
//! The same seeded, scripted workload — single writer per key, so the final value of
//! every key is determined by the script alone, not by timestamp races — runs through
//!
//! * a hand-pumped serial cluster (the simulator's execution model: one state machine per
//!   server, messages delivered deterministically), and
//! * a real [`Cluster`] with `worker_lanes = 4`, where every server dispatches operations
//!   to lane threads and pipelines its writes.
//!
//! Both drivers must agree on everything the protocols promise: per-key final values,
//! store convergence across replicas, order-insensitive metric totals (operations served,
//! replication message counts, zero aborts) and a clean exact causal-consistency checker.
//! Interleavings, timestamps and latencies are allowed to differ — that is the point.
//!
//! The suite runs two topologies: the base two-replica deployment, and a three-replica
//! deployment where every server's remote-apply volume is twice its local write volume —
//! the shape that exercises the threaded runtime's per-origin replication pipeline.

use pocc::clock::ManualClock;
use pocc::prelude::*;
use pocc::proto::{ClientReply, ClientRequest, ServerMessage, ServerOutput};
use pocc::protocol::Client;
use pocc::sim::ConsistencyChecker;
use pocc::storage::partition_for_key;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

const BASE_REPLICAS: usize = 2;
const MULTI_REPLICAS: usize = 3;
const PARTITIONS: usize = 2;
const CLIENTS: usize = 4;
const KEYS_PER_CLIENT: u64 = 16;
const OPS_PER_CLIENT: usize = 60;
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

const PROTOCOLS: [RuntimeProtocol; 4] = [
    RuntimeProtocol::Pocc,
    RuntimeProtocol::Cure,
    RuntimeProtocol::HaPocc,
    RuntimeProtocol::Adaptive,
];

#[derive(Clone, Debug)]
enum Op {
    Put(Key, u64),
    Get(Key),
    RoTx(Vec<Key>),
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Keys owned (written) exclusively by `client`.
fn own_key(client: usize, r: u64) -> Key {
    Key(client as u64 * 1_000 + (r % KEYS_PER_CLIENT))
}

/// The per-client operation scripts. Every PUT targets a key of the issuing client's own
/// range; GETs and RO-TXs range over the whole keyspace.
fn scripts() -> Vec<Vec<Op>> {
    (0..CLIENTS)
        .map(|client| {
            let mut rng = SEED ^ (client as u64 + 1).wrapping_mul(0xd130_2b97_9af5_2857);
            (0..OPS_PER_CLIENT)
                .map(|step| {
                    let roll = xorshift(&mut rng);
                    if step % 10 == 9 {
                        let keys = (0..3)
                            .map(|i| {
                                let owner = (xorshift(&mut rng) as usize + i) % CLIENTS;
                                own_key(owner, xorshift(&mut rng))
                            })
                            .collect();
                        Op::RoTx(keys)
                    } else if roll.is_multiple_of(3) {
                        let owner = xorshift(&mut rng) as usize % CLIENTS;
                        Op::Get(own_key(owner, xorshift(&mut rng)))
                    } else {
                        Op::Put(own_key(client, xorshift(&mut rng)), xorshift(&mut rng))
                    }
                })
                .collect()
        })
        .collect()
}

/// The final value of every written key, determined by the scripts alone.
fn expected_final_values(scripts: &[Vec<Op>]) -> HashMap<Key, Value> {
    let mut map = HashMap::new();
    for script in scripts {
        for op in script {
            if let Op::Put(key, value) = op {
                map.insert(*key, Value::from(*value));
            }
        }
    }
    map
}

fn op_counts(scripts: &[Vec<Op>]) -> (u64, u64, u64) {
    let mut puts = 0;
    let mut gets = 0;
    let mut txs = 0;
    for op in scripts.iter().flatten() {
        match op {
            Op::Put(..) => puts += 1,
            Op::Get(..) => gets += 1,
            Op::RoTx(..) => txs += 1,
        }
    }
    (puts, gets, txs)
}

fn config(replicas: usize) -> Config {
    Config::builder()
        .num_replicas(replicas)
        .num_partitions(PARTITIONS)
        .storage_shards(4)
        .latency(LatencyMatrix::uniform(
            replicas,
            Duration::from_micros(50),
            Duration::from_millis(2),
        ))
        .build()
        .unwrap()
}

fn uses_snapshot_reads(protocol: RuntimeProtocol) -> bool {
    matches!(protocol, RuntimeProtocol::Cure | RuntimeProtocol::Adaptive)
}

/// What both drivers must agree on.
struct Outcome {
    /// Final value of every script key, read back after the cluster drained.
    final_values: HashMap<Key, Value>,
    /// Summed metric counters across all servers.
    puts_served: u64,
    gets_served: u64,
    rotx_served: u64,
    replicate_sent: u64,
    sessions_aborted: u64,
    /// Violations found by the exact checker.
    violations: usize,
}

fn check_outcome(label: &str, outcome: &Outcome, scripts: &[Vec<Op>], replicas: usize) {
    let (puts, gets, txs) = op_counts(scripts);
    let expected = expected_final_values(scripts);
    assert_eq!(outcome.violations, 0, "{label}: causal violations");
    assert_eq!(outcome.sessions_aborted, 0, "{label}: aborted sessions");
    assert_eq!(outcome.puts_served, puts, "{label}: puts served");
    // Final read-back GETs are not part of the script, so served >= issued.
    assert!(
        outcome.gets_served >= gets,
        "{label}: gets served {} < issued {gets}",
        outcome.gets_served
    );
    assert_eq!(outcome.rotx_served, txs, "{label}: transactions served");
    assert_eq!(
        outcome.replicate_sent,
        puts * (replicas as u64 - 1),
        "{label}: replication fan-out"
    );
    assert_eq!(
        &outcome.final_values, &expected,
        "{label}: converged store does not match the script"
    );
}

// ---------------------------------------------------------------------------
// Driver 1: the serial, deterministically pumped cluster.
// ---------------------------------------------------------------------------

struct SerialDriver {
    servers: HashMap<ServerId, Box<dyn InstrumentedServer>>,
    in_flight: VecDeque<(ServerId, ServerId, ServerMessage)>,
    replies: HashMap<ClientId, VecDeque<ClientReply>>,
    clock: ManualClock,
    now_us: u64,
}

impl SerialDriver {
    fn new(protocol: RuntimeProtocol, cfg: &Config) -> Self {
        let clock = ManualClock::new(Timestamp(10_000));
        let servers = cfg
            .servers()
            .map(|id| {
                let server: Box<dyn InstrumentedServer> = match protocol {
                    RuntimeProtocol::Pocc => {
                        Box::new(pocc::PoccServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::Cure => {
                        Box::new(pocc::CureServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::HaPocc => {
                        Box::new(pocc::HaPoccServer::new(id, cfg.clone(), clock.clone()))
                    }
                    RuntimeProtocol::Adaptive => {
                        Box::new(pocc::AdaptiveServer::new(id, cfg.clone(), clock.clone()))
                    }
                };
                (id, server)
            })
            .collect();
        SerialDriver {
            servers,
            in_flight: VecDeque::new(),
            replies: HashMap::new(),
            clock,
            now_us: 10_000,
        }
    }

    fn absorb(&mut self, from: ServerId, outputs: Vec<ServerOutput>) {
        for output in outputs {
            match output {
                ServerOutput::Reply { client, reply } => {
                    self.replies.entry(client).or_default().push_back(reply)
                }
                ServerOutput::Send { to, message } => self.in_flight.push_back((from, to, message)),
            }
        }
    }

    fn deliver_all(&mut self) {
        while let Some((from, to, message)) = self.in_flight.pop_front() {
            let outputs = self
                .servers
                .get_mut(&to)
                .unwrap()
                .handle_server_message(from, message);
            self.absorb(to, outputs);
        }
    }

    fn tick_all(&mut self) {
        self.now_us += 500;
        self.clock.set(Timestamp(self.now_us));
        let ids: Vec<ServerId> = self.servers.keys().copied().collect();
        for id in ids {
            let outputs = self.servers.get_mut(&id).unwrap().tick();
            self.absorb(id, outputs);
        }
    }

    fn submit(&mut self, client: ClientId, target: ServerId, request: ClientRequest) {
        self.now_us += 20;
        self.clock.set(Timestamp(self.now_us));
        let outputs = self
            .servers
            .get_mut(&target)
            .unwrap()
            .handle_client_request(client, request);
        self.absorb(target, outputs);
    }

    /// Pumps ticks and deliveries until `client` has a reply (blocked operations wait for
    /// replication and heartbeats, both of which the pump drives).
    fn await_reply(&mut self, client: ClientId) -> ClientReply {
        for _ in 0..10_000 {
            if let Some(reply) = self.replies.get_mut(&client).and_then(|q| q.pop_front()) {
                return reply;
            }
            self.deliver_all();
            self.tick_all();
        }
        panic!("client {client:?} never received a reply");
    }
}

fn run_serial(protocol: RuntimeProtocol, scripts: &[Vec<Op>], replicas: usize) -> Outcome {
    let cfg = config(replicas);
    let mut driver = SerialDriver::new(protocol, &cfg);
    let mut checker = ConsistencyChecker::new();

    let mut sessions: Vec<Client> = (0..CLIENTS)
        .map(|i| {
            let id = ClientId(i as u64);
            let home = ServerId::new(ReplicaId((i % replicas) as u16), 0u32);
            if uses_snapshot_reads(protocol) {
                Client::new_snapshot_reads(id, home, replicas)
            } else {
                Client::new(id, home, replicas)
            }
        })
        .collect();

    // Interleave the scripts round-robin so cross-client causality actually develops.
    #[allow(clippy::needless_range_loop)] // `step` is the round-robin outer index
    for step in 0..OPS_PER_CLIENT {
        for (i, session) in sessions.iter_mut().enumerate() {
            let id = ClientId(i as u64);
            let replica = ReplicaId((i % replicas) as u16);
            let op = &scripts[i][step];
            let (target, request) = match op {
                Op::Put(key, value) => (
                    ServerId::new(replica, partition_for_key(*key, PARTITIONS)),
                    session.put(*key, Value::from(*value)),
                ),
                Op::Get(key) => (
                    ServerId::new(replica, partition_for_key(*key, PARTITIONS)),
                    session.get(*key),
                ),
                Op::RoTx(keys) => (
                    ServerId::new(replica, partition_for_key(keys[0], PARTITIONS)),
                    session.ro_tx(keys.clone()),
                ),
            };
            driver.submit(id, target, request);
            let reply = driver.await_reply(id);
            session.process_reply(&reply).expect("no aborts expected");
            match (&reply, op) {
                (ClientReply::Put { update_time }, Op::Put(key, _)) => {
                    checker.record_write(id, *key, *update_time, replica);
                }
                (ClientReply::Get(resp), Op::Get(key)) => {
                    let returned = resp
                        .value
                        .as_ref()
                        .map(|_| (resp.update_time, resp.source_replica));
                    checker.record_read(id, *key, returned);
                }
                (ClientReply::RoTx { items }, Op::RoTx(_)) => {
                    let recorded: Vec<_> = items
                        .iter()
                        .map(|item| {
                            let returned =
                                item.response.value.as_ref().map(|_| {
                                    (item.response.update_time, item.response.source_replica)
                                });
                            (item.key, returned)
                        })
                        .collect();
                    checker.record_transaction(id, &recorded);
                }
                (reply, op) => panic!("mismatched reply {reply:?} for op {op:?}"),
            }
        }
    }

    // Drain to quiescence, then verify convergence across replicas.
    for _ in 0..40 {
        driver.tick_all();
        driver.deliver_all();
    }
    let digests: HashMap<ServerId, _> = driver
        .servers
        .iter()
        .map(|(id, s)| (*id, s.digest()))
        .collect();
    for partition in 0..PARTITIONS {
        let per_replica: Vec<_> = digests
            .iter()
            .filter(|(id, _)| id.partition.index() == partition)
            .map(|(_, d)| d.clone())
            .collect();
        assert!(
            per_replica.windows(2).all(|w| w[0] == w[1]),
            "serial {protocol:?}: partition {partition} replicas diverged"
        );
    }

    // Read the final values back through a fresh session at replica 0. Stable-reads
    // protocols bound visibility by the GSS, which trails the newest writes — pump ticks
    // and retry until the script's final value becomes visible.
    let mut final_values = HashMap::new();
    let mut reader = Client::new(ClientId(9_999), ServerId::new(ReplicaId(0), 0u32), replicas);
    let expected = expected_final_values(scripts);
    for (key, wanted) in &expected {
        let target = ServerId::new(ReplicaId(0), partition_for_key(*key, PARTITIONS));
        for attempt in 0..200 {
            let request = reader.get(*key);
            driver.submit(ClientId(9_999), target, request);
            let reply = driver.await_reply(ClientId(9_999));
            reader.process_reply(&reply).unwrap();
            let ClientReply::Get(resp) = reply else {
                panic!("unexpected reply to the read-back GET");
            };
            if resp.value.as_ref() == Some(wanted) {
                final_values.insert(*key, resp.value.unwrap());
                break;
            }
            assert!(
                attempt < 199,
                "serial {protocol:?}: {key} never reached its final value"
            );
            driver.tick_all();
            driver.deliver_all();
        }
    }

    let mut totals = MetricsTotals::default();
    for server in driver.servers.values() {
        totals.add(&server.metrics());
    }
    Outcome {
        final_values,
        puts_served: totals.puts,
        gets_served: totals.gets,
        rotx_served: totals.rotx,
        replicate_sent: totals.replicate,
        sessions_aborted: totals.aborted,
        violations: checker.violations().len(),
    }
}

#[derive(Default)]
struct MetricsTotals {
    puts: u64,
    gets: u64,
    rotx: u64,
    replicate: u64,
    aborted: u64,
}

impl MetricsTotals {
    fn add(&mut self, m: &pocc::proto::MetricsSnapshot) {
        self.puts += m.puts_served;
        self.gets += m.gets_served;
        self.rotx += m.rotx_served;
        self.replicate += m.replicate_sent;
        self.aborted += m.sessions_aborted;
    }
}

// ---------------------------------------------------------------------------
// Driver 2: the threaded cluster with shard-parallel servers.
// ---------------------------------------------------------------------------

fn run_parallel(
    protocol: RuntimeProtocol,
    scripts: &[Vec<Op>],
    lanes: usize,
    replicas: usize,
) -> Outcome {
    let cluster = Cluster::builder()
        .config(config(replicas))
        .protocol(protocol)
        .worker_lanes(lanes)
        .start();
    let mut checker = ConsistencyChecker::new();
    let mut clients: Vec<ClusterClient> = (0..CLIENTS)
        .map(|i| cluster.client(ReplicaId((i % replicas) as u16)))
        .collect();

    #[allow(clippy::needless_range_loop)] // `step` is the round-robin outer index
    for step in 0..OPS_PER_CLIENT {
        for (i, client) in clients.iter_mut().enumerate() {
            let id = client.id();
            let replica = client.replica();
            match &scripts[i][step] {
                Op::Put(key, value) => {
                    let update_time = client.put(*key, Value::from(*value)).unwrap();
                    checker.record_write(id, *key, update_time, replica);
                }
                Op::Get(key) => {
                    let resp = client.get_versioned(*key).unwrap();
                    let returned = resp
                        .value
                        .as_ref()
                        .map(|_| (resp.update_time, resp.source_replica));
                    checker.record_read(id, *key, returned);
                }
                Op::RoTx(keys) => {
                    let items = client.ro_tx_versioned(keys.clone()).unwrap();
                    let recorded: Vec<_> = items
                        .iter()
                        .map(|item| {
                            let returned =
                                item.response.value.as_ref().map(|_| {
                                    (item.response.update_time, item.response.source_replica)
                                });
                            (item.key, returned)
                        })
                        .collect();
                    checker.record_transaction(id, &recorded);
                }
            }
        }
    }

    // Wait for replication to drain: every partition's replicas must reach identical
    // digests (probes drain each server's write pipeline first).
    let mut converged = false;
    for _ in 0..2_000 {
        let probes = cluster.probe_all();
        converged = (0..PARTITIONS).all(|partition| {
            let per_replica: Vec<_> = probes
                .iter()
                .filter(|(id, _)| id.partition.index() == partition)
                .map(|(_, p)| p.digest.clone())
                .collect();
            per_replica.windows(2).all(|w| w[0] == w[1])
        });
        if converged {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        converged,
        "parallel {protocol:?}: replicas did not converge"
    );

    // Read the final values back through a fresh session at replica 0, retrying while
    // the GSS of stable-reads protocols catches up with the newest writes.
    let mut reader = cluster.client(ReplicaId(0));
    let mut final_values = HashMap::new();
    let expected = expected_final_values(scripts);
    for (key, wanted) in &expected {
        for attempt in 0..500 {
            if reader.get(*key).unwrap().as_ref() == Some(wanted) {
                final_values.insert(*key, wanted.clone());
                break;
            }
            assert!(
                attempt < 499,
                "parallel {protocol:?}: {key} never reached its final value"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let mut totals = MetricsTotals::default();
    for (_, probe) in cluster.probe_all() {
        totals.add(&probe.metrics);
    }
    cluster.shutdown();
    Outcome {
        final_values,
        puts_served: totals.puts,
        gets_served: totals.gets,
        rotx_served: totals.rotx,
        replicate_sent: totals.replicate,
        sessions_aborted: totals.aborted,
        violations: checker.violations().len(),
    }
}

// ---------------------------------------------------------------------------
// The differential tests.
// ---------------------------------------------------------------------------

fn assert_drivers_agree(label: &str, serial: &Outcome, parallel: &Outcome) {
    assert_eq!(
        serial.final_values, parallel.final_values,
        "{label}: drivers disagree on final per-key values"
    );
    assert_eq!(
        serial.puts_served, parallel.puts_served,
        "{label}: drivers disagree on puts served"
    );
    assert_eq!(
        serial.rotx_served, parallel.rotx_served,
        "{label}: drivers disagree on transactions served"
    );
    assert_eq!(
        serial.replicate_sent, parallel.replicate_sent,
        "{label}: drivers disagree on replication volume"
    );
}

#[test]
fn serial_and_parallel_drivers_agree_for_every_protocol() {
    let scripts = scripts();
    for protocol in PROTOCOLS {
        let serial = run_serial(protocol, &scripts, BASE_REPLICAS);
        check_outcome(
            &format!("serial {protocol:?}"),
            &serial,
            &scripts,
            BASE_REPLICAS,
        );

        let parallel = run_parallel(protocol, &scripts, 4, BASE_REPLICAS);
        check_outcome(
            &format!("parallel {protocol:?}"),
            &parallel,
            &scripts,
            BASE_REPLICAS,
        );

        assert_drivers_agree(&format!("{protocol:?}"), &serial, &parallel);
    }
}

#[test]
fn parallel_runtime_is_clean_at_every_lane_count() {
    let scripts = scripts();
    for lanes in [1, 2, 4] {
        let outcome = run_parallel(RuntimeProtocol::Pocc, &scripts, lanes, BASE_REPLICAS);
        check_outcome(
            &format!("POCC lanes={lanes}"),
            &outcome,
            &scripts,
            BASE_REPLICAS,
        );
    }
}

/// The remote-apply pipeline's differential test: a three-replica topology, where every
/// server applies twice as many replicated versions as it writes locally, pinned against
/// the serial driver for all four protocols at every lane count.
#[test]
fn multi_replica_topology_matches_the_serial_driver() {
    let scripts = scripts();
    for protocol in PROTOCOLS {
        let serial = run_serial(protocol, &scripts, MULTI_REPLICAS);
        check_outcome(
            &format!("serial {protocol:?} x{MULTI_REPLICAS}"),
            &serial,
            &scripts,
            MULTI_REPLICAS,
        );

        for lanes in [1, 2, 4] {
            let label = format!("{protocol:?} x{MULTI_REPLICAS} lanes={lanes}");
            let parallel = run_parallel(protocol, &scripts, lanes, MULTI_REPLICAS);
            check_outcome(
                &format!("parallel {label}"),
                &parallel,
                &scripts,
                MULTI_REPLICAS,
            );
            assert_drivers_agree(&label, &serial, &parallel);
        }
    }
}
