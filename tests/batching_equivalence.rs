//! Batched replication is observationally equivalent to unbatched replication.
//!
//! Two flavours of evidence:
//!
//! * A hand-pumped three-DC POCC cluster driven with identical writes, batching on vs
//!   off: once traffic drains, both runs must produce byte-identical store digests and
//!   version vectors on every server. This is the strongest statement — batching only
//!   changes *when* messages travel, never what state they build.
//! * Full simulations (POCC and Cure\*) with the exact causal-consistency checker
//!   enabled and batching on: zero violations and full convergence, i.e. deferring
//!   replication by up to a tick does not break causality or convergence under a real
//!   interleaved workload.

use pocc::clock::ManualClock;
use pocc::proto::{ClientRequest, ProtocolServer, ServerIntrospect, ServerOutput};
use pocc::protocol::PoccServer;
use pocc::sim::{ProtocolKind, SimConfig, Simulation};
use pocc::types::{
    ClientId, Config, DependencyVector, Key, ReplicaId, ServerId, Timestamp, Value, VersionVector,
};
use pocc::workload::WorkloadMix;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

const MS: u64 = 1_000;

/// What a server ends up with once traffic drains: its store digest plus version vector.
type ServerState = (Vec<(Key, Timestamp, ReplicaId)>, VersionVector);

/// Runs a small cluster to quiescence: `writes` PUTs spread over the servers, then
/// enough ticks to flush every batch and deliver every message. Returns each server's
/// `(digest, version vector)`.
fn run_cluster(batching: bool) -> HashMap<ServerId, ServerState> {
    let cfg = Config::builder()
        .num_replicas(3)
        .num_partitions(2)
        .storage_shards(4)
        .replication_batching(batching)
        .build()
        .unwrap();
    let clock = ManualClock::new(Timestamp(10 * MS));
    let mut servers: HashMap<ServerId, PoccServer<ManualClock>> = cfg
        .servers()
        .map(|id| (id, PoccServer::new(id, cfg.clone(), clock.clone())))
        .collect();

    let mut in_flight: VecDeque<(ServerId, ServerId, pocc::proto::ServerMessage)> = VecDeque::new();
    let collect =
        |from: ServerId,
         outputs: Vec<ServerOutput>,
         in_flight: &mut VecDeque<(ServerId, ServerId, pocc::proto::ServerMessage)>| {
            for output in outputs {
                if let ServerOutput::Send { to, message } = output {
                    in_flight.push_back((from, to, message));
                }
            }
        };

    // 24 writes, directed at the server owning each key, round-robin over the replicas.
    let mut written = 0u64;
    let mut key = 0u64;
    while written < 24 {
        let partition = pocc::storage::partition_for_key(Key(key), cfg.num_partitions);
        let replica = ReplicaId((written % 3) as u16);
        let target = ServerId::new(replica, partition);
        clock.set(Timestamp((10 + written) * MS));
        let outputs = servers.get_mut(&target).unwrap().handle_client_request(
            ClientId(written),
            ClientRequest::Put {
                key: Key(key),
                value: Value::from(written),
                dv: DependencyVector::zero(3),
            },
        );
        collect(target, outputs, &mut in_flight);
        written += 1;
        key += 1;
    }

    // Drain: alternate ticks (which flush batches and emit heartbeats) with message
    // delivery until the cluster is quiescent.
    for round in 0..20u64 {
        clock.set(Timestamp((40 + round) * MS));
        let ids: Vec<ServerId> = servers.keys().copied().collect();
        for id in ids {
            let outputs = servers.get_mut(&id).unwrap().tick();
            collect(id, outputs, &mut in_flight);
        }
        while let Some((from, to, message)) = in_flight.pop_front() {
            let outputs = servers
                .get_mut(&to)
                .unwrap()
                .handle_server_message(from, message);
            collect(to, outputs, &mut in_flight);
        }
    }

    servers
        .into_iter()
        .map(|(id, s)| {
            let digest = s.digest();
            let vv = s.version_vector().clone();
            (id, (digest, vv))
        })
        .collect()
}

#[test]
fn batched_cluster_reaches_identical_state_as_unbatched() {
    let unbatched = run_cluster(false);
    let batched = run_cluster(true);
    assert_eq!(unbatched.len(), batched.len());
    for (id, (digest, vv)) in &unbatched {
        let (b_digest, b_vv) = &batched[id];
        assert_eq!(digest, b_digest, "store digests differ at {id}");
        assert_eq!(&vv, &b_vv, "version vectors differ at {id}");
        assert!(
            !digest.is_empty() || id.partition.index() > 1,
            "writes must have landed"
        );
    }
    // Sibling replicas converged (sanity that the pump actually replicated).
    let sample: Vec<_> = unbatched
        .iter()
        .filter(|(id, _)| id.partition.index() == 0)
        .map(|(_, (d, _))| d.clone())
        .collect();
    assert!(sample.windows(2).all(|w| w[0] == w[1]));
}

fn checked_sim(protocol: ProtocolKind, batching: bool) -> pocc::sim::SimReport {
    Simulation::new(
        SimConfig::builder()
            .protocol(protocol)
            .replicas(3)
            .partitions(2)
            .clients_per_partition(2)
            .keys_per_partition(200)
            .storage_shards(4)
            .replication_batching(batching)
            .mix(WorkloadMix::GetPut { gets_per_put: 3 })
            .think_time(Duration::from_millis(5))
            .warmup(Duration::from_millis(100))
            .duration(Duration::from_millis(600))
            .drain(Duration::from_millis(300))
            .check_consistency(true)
            .seed(7)
            .build(),
    )
    .run()
}

#[test]
fn batched_pocc_simulation_stays_causal_and_converges() {
    let report = checked_sim(ProtocolKind::Pocc, true);
    assert!(report.operations_completed > 0);
    assert_eq!(report.consistency_violations, 0);
    assert!(report.converged, "replicas must converge after the drain");
    assert!(
        report.server_metrics.batches_sent > 0,
        "batching must actually engage"
    );
}

#[test]
fn batched_cure_simulation_stays_causal_and_converges() {
    let report = checked_sim(ProtocolKind::Cure, true);
    assert!(report.operations_completed > 0);
    assert_eq!(report.consistency_violations, 0);
    assert!(report.converged);
    assert!(report.server_metrics.batches_sent > 0);
}

#[test]
fn batching_does_not_change_the_throughput_envelope() {
    // Same seed, same workload: batching may shift individual message timings but the
    // completed-operation count must stay in the same ballpark (closed-loop clients).
    let off = checked_sim(ProtocolKind::Pocc, false);
    let on = checked_sim(ProtocolKind::Pocc, true);
    assert_eq!(off.consistency_violations, 0);
    let ratio = on.operations_completed as f64 / off.operations_completed.max(1) as f64;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "batched/unbatched completed-op ratio {ratio:.3} out of range \
         ({} vs {})",
        on.operations_completed,
        off.operations_completed
    );
    // And it must actually reduce the number of envelopes on the wire relative to the
    // number of replicated writes.
    let m = &on.server_metrics;
    assert!(m.batches_sent > 0);
    assert!(m.batches_sent < m.replicate_sent);
}
