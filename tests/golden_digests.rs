//! Refactor-safety net: golden per-protocol simulation digests for fixed seeds.
//!
//! Each test runs one small, fully deterministic simulation and compares a
//! comprehensive fingerprint of the resulting [`SimReport`] — every protocol-level
//! counter, the network totals, the latency distribution shape and the end-of-run
//! store statistics — against a value generated before the protocol-engine
//! refactor. Any change to message ordering, metric accounting, parking, timers,
//! GC or replication shows up as a digest mismatch, which is exactly the point:
//! the engine-based servers must be observationally identical to the hand-rolled
//! ones they replaced.
//!
//! To regenerate after an *intentional* behaviour change, run
//!
//! ```text
//! cargo test -q --test golden_digests -- --ignored --nocapture
//! ```
//!
//! and paste the printed constants back into this file (explaining the change in
//! the commit message).

use pocc::sim::{FaultEvent, ProtocolKind, SimConfig, SimReport, Simulation};
use pocc::types::{Config, ReplicaId};
use pocc::workload::WorkloadMix;
use std::time::Duration;

/// A deterministic fingerprint of everything observable about a simulation run.
fn digest(r: &SimReport) -> String {
    let m = &r.server_metrics;
    format!(
        "ops={} gets={} puts={} rotx={} reinit={} viol={} conv={} \
         net_msgs={} net_wan={} net_bytes={} net_held={} \
         lat_n={} lat_mean_us={} lat_max_us={} \
         keys={} versions={} max_chain={} store_gc={} \
         m_gets={} m_puts={} m_rotx={} m_slices={} \
         blocked={} block_us={} clock_us={} \
         old_g={} unm_g={} fresher={} unm_sum={} old_tx={} unm_tx={} tx_items={} \
         repl_rx={} repl_tx={} hb_rx={} hb_tx={} stab={} batches={} gc_msgs={} gc_rm={} \
         aborted={} bytes={}",
        r.operations_completed,
        r.gets_completed,
        r.puts_completed,
        r.rotx_completed,
        r.sessions_reinitialized,
        r.consistency_violations,
        r.converged,
        r.network.messages_sent,
        r.network.wan_messages,
        r.network.bytes_sent,
        r.network.held_messages,
        r.latency_all.count(),
        r.latency_all.mean().as_micros(),
        r.latency_all.max().as_micros(),
        r.store.keys,
        r.store.versions,
        r.store.max_chain_len,
        r.store.gc_removed,
        m.gets_served,
        m.puts_served,
        m.rotx_served,
        m.slices_served,
        m.blocked_operations,
        m.total_block_time.as_micros(),
        m.clock_wait_time.as_micros(),
        m.old_gets,
        m.unmerged_gets,
        m.fresher_versions_sum,
        m.unmerged_versions_sum,
        m.old_tx_items,
        m.unmerged_tx_items,
        m.tx_items_returned,
        m.replicate_received,
        m.replicate_sent,
        m.heartbeats_received,
        m.heartbeats_sent,
        m.stabilization_messages,
        m.batches_sent,
        m.gc_messages,
        m.gc_versions_removed,
        m.sessions_aborted,
        m.bytes_sent,
    )
}

/// The shared GET/PUT configuration every single-protocol golden run uses.
fn get_put_config(protocol: ProtocolKind) -> SimConfig {
    SimConfig::builder()
        .protocol(protocol)
        .replicas(3)
        .partitions(2)
        .clients_per_partition(2)
        .keys_per_partition(100)
        .mix(WorkloadMix::GetPut { gets_per_put: 3 })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(400))
        .drain(Duration::from_millis(400))
        .check_consistency(true)
        .seed(11)
        .build()
}

fn pocc_getput() -> SimConfig {
    get_put_config(ProtocolKind::Pocc)
}

fn cure_getput() -> SimConfig {
    get_put_config(ProtocolKind::Cure)
}

fn ha_getput() -> SimConfig {
    get_put_config(ProtocolKind::HaPocc)
}

fn adaptive_getput() -> SimConfig {
    get_put_config(ProtocolKind::Adaptive)
}

fn pocc_batched() -> SimConfig {
    SimConfig::builder()
        .protocol(ProtocolKind::Pocc)
        .replicas(3)
        .partitions(2)
        .clients_per_partition(2)
        .keys_per_partition(100)
        .storage_shards(4)
        .replication_batching(true)
        .mix(WorkloadMix::GetPut { gets_per_put: 3 })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(400))
        .drain(Duration::from_millis(400))
        .check_consistency(true)
        .seed(11)
        .build()
}

fn pocc_txput() -> SimConfig {
    SimConfig::builder()
        .protocol(ProtocolKind::Pocc)
        .replicas(3)
        .partitions(4)
        .clients_per_partition(2)
        .keys_per_partition(100)
        .mix(WorkloadMix::TxPut {
            partitions_per_tx: 3,
        })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(400))
        .drain(Duration::from_millis(400))
        .check_consistency(true)
        .seed(3)
        .build()
}

fn cure_txput() -> SimConfig {
    SimConfig::builder()
        .protocol(ProtocolKind::Cure)
        .replicas(3)
        .partitions(4)
        .clients_per_partition(2)
        .keys_per_partition(100)
        .mix(WorkloadMix::TxPut {
            partitions_per_tx: 3,
        })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(400))
        .drain(Duration::from_millis(400))
        .check_consistency(true)
        .seed(3)
        .build()
}

/// HA-POCC through a WAN partition and heal: exercises the partition detector, the
/// pessimistic fall-back, session closing and the promotion back to optimistic mode.
fn ha_partition() -> SimConfig {
    let deployment = Config::builder()
        .num_replicas(3)
        .num_partitions(2)
        .partition_detection_timeout(Duration::from_millis(120))
        .ha_stabilization_interval(Duration::from_millis(20))
        .build()
        .unwrap();
    SimConfig::builder()
        .deployment(deployment)
        .protocol(ProtocolKind::HaPocc)
        .clients_per_partition(2)
        .keys_per_partition(100)
        .mix(WorkloadMix::GetPut { gets_per_put: 3 })
        .think_time(Duration::from_millis(5))
        .warmup(Duration::from_millis(100))
        .duration(Duration::from_millis(600))
        .drain(Duration::from_millis(500))
        .check_consistency(true)
        .fault(FaultEvent::Partition {
            at: Duration::from_millis(250),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .fault(FaultEvent::Heal {
            at: Duration::from_millis(500),
            a: ReplicaId(0),
            b: ReplicaId(1),
        })
        .seed(5)
        .build()
}

/// Every golden run: `(name, config builder, expected digest)`.
fn golden_runs() -> Vec<(&'static str, SimConfig, &'static str)> {
    vec![
        ("pocc_getput", pocc_getput(), GOLDEN_POCC_GETPUT),
        ("cure_getput", cure_getput(), GOLDEN_CURE_GETPUT),
        ("ha_getput", ha_getput(), GOLDEN_HA_GETPUT),
        ("adaptive_getput", adaptive_getput(), GOLDEN_ADAPTIVE_GETPUT),
        ("pocc_batched", pocc_batched(), GOLDEN_POCC_BATCHED),
        ("pocc_txput", pocc_txput(), GOLDEN_POCC_TXPUT),
        ("cure_txput", cure_txput(), GOLDEN_CURE_TXPUT),
        ("ha_partition", ha_partition(), GOLDEN_HA_PARTITION),
    ]
}

const GOLDEN_POCC_GETPUT: &str = "ops=905 gets=605 puts=300 rotx=0 reinit=0 viol=0 conv=true net_msgs=10719 net_wan=10670 net_bytes=128503 net_held=0 lat_n=905 lat_mean_us=289 lat_max_us=563 keys=357 versions=357 max_chain=1 store_gc=759 m_gets=607 m_puts=300 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=0 unm_g=0 fresher=0 unm_sum=0 old_tx=0 unm_tx=0 tx_items=0 repl_rx=677 repl_tx=600 hb_rx=8810 hb_tx=8880 stab=0 batches=0 gc_msgs=97 gc_rm=759 aborted=0 bytes=111745";
const GOLDEN_CURE_GETPUT: &str = "ops=905 gets=605 puts=300 rotx=0 reinit=0 viol=0 conv=true net_msgs=11745 net_wan=10674 net_bytes=154089 net_held=0 lat_n=905 lat_mean_us=290 lat_max_us=573 keys=357 versions=357 max_chain=1 store_gc=759 m_gets=607 m_puts=300 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=11 unm_g=27 fresher=11 unm_sum=33 old_tx=0 unm_tx=0 tx_items=0 repl_rx=676 repl_tx=600 hb_rx=8810 hb_tx=8888 stab=1914 batches=0 gc_msgs=0 gc_rm=759 aborted=0 bytes=134517";
const GOLDEN_HA_GETPUT: &str = "ops=905 gets=605 puts=300 rotx=0 reinit=0 viol=0 conv=true net_msgs=10727 net_wan=10672 net_bytes=128671 net_held=0 lat_n=905 lat_mean_us=289 lat_max_us=563 keys=357 versions=357 max_chain=1 store_gc=759 m_gets=607 m_puts=300 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=0 unm_g=0 fresher=0 unm_sum=0 old_tx=0 unm_tx=0 tx_items=0 repl_rx=677 repl_tx=600 hb_rx=8816 hb_tx=8882 stab=12 batches=0 gc_msgs=97 gc_rm=759 aborted=0 bytes=111907";
const GOLDEN_ADAPTIVE_GETPUT: &str = "ops=905 gets=605 puts=300 rotx=0 reinit=0 viol=0 conv=true net_msgs=11767 net_wan=10646 net_bytes=155087 net_held=0 lat_n=905 lat_mean_us=290 lat_max_us=563 keys=357 versions=357 max_chain=1 store_gc=759 m_gets=607 m_puts=300 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=0 unm_g=8 fresher=0 unm_sum=13 old_tx=0 unm_tx=0 tx_items=0 repl_rx=676 repl_tx=600 hb_rx=8786 hb_tx=8860 stab=1916 batches=0 gc_msgs=97 gc_rm=759 aborted=0 bytes=135515";
const GOLDEN_POCC_BATCHED: &str = "ops=905 gets=605 puts=300 rotx=0 reinit=0 viol=0 conv=true net_msgs=10612 net_wan=10564 net_bytes=128744 net_held=0 lat_n=905 lat_mean_us=289 lat_max_us=555 keys=357 versions=357 max_chain=1 store_gc=759 m_gets=607 m_puts=300 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=0 unm_g=0 fresher=0 unm_sum=0 old_tx=0 unm_tx=0 tx_items=0 repl_rx=679 repl_tx=600 hb_rx=8791 hb_tx=8868 stab=0 batches=64 gc_msgs=97 gc_rm=759 aborted=0 bytes=111957";
const GOLDEN_POCC_TXPUT: &str = "ops=1556 gets=0 puts=781 rotx=775 reinit=0 viol=0 conv=true net_msgs=25476 net_wan=21232 net_bytes=496756 net_held=0 lat_n=1556 lat_mean_us=1157 lat_max_us=4408 keys=804 versions=804 max_chain=1 store_gc=2121 m_gets=0 m_puts=781 m_rotx=778 m_slices=2332 blocked=1234 block_us=1019424 clock_us=0 old_g=0 unm_g=0 fresher=0 unm_sum=0 old_tx=31 unm_tx=31 tx_items=2332 repl_rx=1760 repl_tx=1562 hb_rx=17119 hb_tx=17316 stab=0 batches=0 gc_msgs=576 gc_rm=2121 aborted=0 bytes=414189";
const GOLDEN_CURE_TXPUT: &str = "ops=1651 gets=0 puts=830 rotx=821 reinit=0 viol=0 conv=true net_msgs=31898 net_wan=21312 net_bytes=666694 net_held=0 lat_n=1651 lat_mean_us=806 lat_max_us=3311 keys=834 versions=834 max_chain=1 store_gc=2253 m_gets=0 m_puts=830 m_rotx=825 m_slices=2475 blocked=547 block_us=224960 clock_us=0 old_g=0 unm_g=0 fresher=0 unm_sum=0 old_tx=82 unm_tx=212 tx_items=2475 repl_rx=1866 repl_tx=1660 hb_rx=17097 hb_tx=17266 stab=11484 batches=0 gc_msgs=0 gc_rm=2253 aborted=0 bytes=565636";
const GOLDEN_HA_PARTITION: &str = "ops=1342 gets=894 puts=448 rotx=0 reinit=16 viol=0 conv=true net_msgs=14630 net_wan=14210 net_bytes=182154 net_held=0 lat_n=1342 lat_mean_us=297 lat_max_us=1551 keys=399 versions=399 max_chain=1 store_gc=1164 m_gets=896 m_puts=449 m_rotx=0 m_slices=0 blocked=0 block_us=0 clock_us=0 old_g=19 unm_g=0 fresher=22 unm_sum=0 old_tx=0 unm_tx=0 tx_items=0 repl_rx=975 repl_tx=898 hb_rx=12054 hb_tx=12108 stab=660 batches=0 gc_msgs=132 gc_rm=1164 aborted=16 bytes=164340";

#[test]
fn pocc_getput_digest_matches_golden() {
    let report = Simulation::new(pocc_getput()).run();
    assert_eq!(digest(&report), GOLDEN_POCC_GETPUT);
}

#[test]
fn cure_getput_digest_matches_golden() {
    let report = Simulation::new(cure_getput()).run();
    assert_eq!(digest(&report), GOLDEN_CURE_GETPUT);
}

#[test]
fn ha_getput_digest_matches_golden() {
    let report = Simulation::new(ha_getput()).run();
    assert_eq!(digest(&report), GOLDEN_HA_GETPUT);
}

#[test]
fn adaptive_getput_digest_matches_golden() {
    let report = Simulation::new(adaptive_getput()).run();
    assert_eq!(digest(&report), GOLDEN_ADAPTIVE_GETPUT);
}

#[test]
fn pocc_batched_digest_matches_golden() {
    let report = Simulation::new(pocc_batched()).run();
    assert_eq!(digest(&report), GOLDEN_POCC_BATCHED);
}

#[test]
fn pocc_txput_digest_matches_golden() {
    let report = Simulation::new(pocc_txput()).run();
    assert_eq!(digest(&report), GOLDEN_POCC_TXPUT);
}

#[test]
fn cure_txput_digest_matches_golden() {
    let report = Simulation::new(cure_txput()).run();
    assert_eq!(digest(&report), GOLDEN_CURE_TXPUT);
}

#[test]
fn ha_partition_digest_matches_golden() {
    let report = Simulation::new(ha_partition()).run();
    assert_eq!(digest(&report), GOLDEN_HA_PARTITION);
}

/// Every golden run must be causally clean and convergent regardless of the digest,
/// so a regenerated golden can never silently bake in a violation.
#[test]
fn golden_runs_are_checker_clean_and_convergent() {
    for (name, config, _) in golden_runs() {
        let report = Simulation::new(config).run();
        assert_eq!(report.consistency_violations, 0, "{name}: violations");
        assert!(report.converged, "{name}: replicas did not converge");
        assert!(report.operations_completed > 0, "{name}: no operations");
    }
}

/// Regenerator: prints the constants to paste above.
#[test]
#[ignore = "regenerates the golden digests; run with --ignored --nocapture"]
fn print_current_digests() {
    for (name, config, _) in golden_runs() {
        let report = Simulation::new(config).run();
        println!(
            "const GOLDEN_{}: &str = \"{}\";",
            name.to_uppercase(),
            digest(&report)
        );
    }
}
