//! Adaptive-POCC — per-key optimism over the shared protocol engine.
//!
//! The paper frames POCC and Cure\* as two ends of a visibility spectrum: POCC always
//! returns the freshest version and accepts (rare) blocking when a client's dependencies
//! have not replicated yet; Cure\* never blocks but hides every remote version until the
//! stabilization protocol proves it stable everywhere. This crate occupies the middle
//! ground **per key**:
//!
//! * Keys with little or no *observed remote churn* — the vast majority under a skewed
//!   workload, including read-hot keys that are rarely written remotely — are served
//!   exactly like POCC: freshest version, optimistic, maximum freshness.
//! * Keys whose remote-update rate crosses `Config::adaptive_churn_threshold` within one
//!   `Config::adaptive_churn_window` are the ones whose optimistic reads would hand out
//!   unstable dependencies (and cause downstream blocking); their reads fall back to the
//!   snapshot `GSS ∨ RDV ∨ local`: the freshest version that is globally stable, part of
//!   the client's own causal history, or locally originated.
//!
//! The fall-back still honours the client's session (reads wait for the client's remote
//! dependencies exactly as POCC's do), so causal consistency is preserved — the exact
//! checker in `pocc-sim` runs clean over adaptive simulations. What changes is the
//! *metadata a client picks up*: a stable-bounded read returns remote versions only from
//! within the GSS or the client's existing causal history (never a *new* unstable remote
//! dependency), so sessions touching churny keys accumulate far fewer of the unstable
//! dependencies that make later optimistic reads block. (Locally originated versions
//! remain visible and may still carry dependencies beyond the GSS — that is what keeps
//! read-your-writes intact.) Churn scores halve every window, so a key that cools down
//! becomes optimistic again.
//!
//! Like the other three protocols, the whole variant is one [`VisibilityPolicy`] over
//! [`pocc_engine::ProtocolEngine`] — see the "Adding a protocol variant" how-to in
//! `ARCHITECTURE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pocc_clock::Clock;
use pocc_engine::{EngineCore, ProtocolEngine, ReadMode, VisibilityPolicy};
use pocc_proto::{ClientRequest, ServerOutput};
use pocc_storage::ShardedStore;
use pocc_types::{ClientId, Config, DependencyVector, Key, ServerId, Timestamp, VersionVector};
use std::collections::HashMap;

/// The adaptive visibility policy: POCC reads for calm keys, GSS-stable-bounded reads
/// for keys under remote churn. Writes, transactions and garbage collection follow POCC;
/// the stabilization protocol runs at Cure's cadence so the GSS the fall-back needs is
/// always fresh.
#[derive(Debug, Default)]
pub struct AdaptivePolicy {
    /// Per-key remote-churn score: remote updates observed in the current window plus
    /// the decayed carry-over from previous ones.
    churn: HashMap<Key, u32>,
    window_started: Timestamp,
}

impl AdaptivePolicy {
    /// Whether reads of `key` should fall back to stable-bounded visibility.
    fn is_churny(&self, config: &Config, key: Key) -> bool {
        self.churn
            .get(&key)
            .is_some_and(|score| *score >= config.adaptive_churn_threshold)
    }

    /// Halves every score once per *elapsed* window (ticks can be sparser than the churn
    /// window), dropping keys that cooled down to zero.
    fn decay(&mut self, now: Timestamp, window: std::time::Duration) {
        let elapsed = now.saturating_since(self.window_started);
        if elapsed < window {
            return;
        }
        self.window_started = now;
        let windows = elapsed.as_nanos() / window.as_nanos();
        if windows >= 32 {
            // A u32 is zero after 32 halvings (and a >=32-bit shift would overflow):
            // a gap that long just clears the map.
            self.churn.clear();
            return;
        }
        let windows = windows as u32;
        self.churn.retain(|_, score| {
            *score >>= windows;
            *score > 0
        });
    }
}

impl<C: Clock> VisibilityPolicy<C> for AdaptivePolicy {
    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => {
                let mode = if self.is_churny(&core.config, key) {
                    ReadMode::StableBounded
                } else {
                    ReadMode::Latest
                };
                // Both paths wait for the client's remote dependencies (the POCC wait
                // condition): the stable-bounded snapshot includes the RDV, so serving
                // before the dependencies are installed could return a version older
                // than one the client causally observed.
                if core.covers_remote_deps(&rdv) {
                    let out = match mode {
                        ReadMode::Latest => core.serve_get_latest(client, key),
                        ReadMode::Stable => core.serve_get_stable(client, key, &rdv),
                        ReadMode::StableBounded => core.serve_get_stable_bounded(client, key, &rdv),
                    };
                    outputs.push(out);
                } else {
                    core.park_get(client, key, rdv, mode);
                }
            }
            ClientRequest::Put { key, value, dv } => {
                // POCC's PUT, including the configurable dependency wait.
                if !core.config.put_waits_for_dependencies || core.covers_remote_deps(&dv) {
                    core.serve_put(client, key, value, dv, &mut outputs);
                } else {
                    core.park_put(client, key, value, dv);
                }
                core.unpark(&mut outputs);
            }
            ClientRequest::RoTx { keys, rdv } => {
                // POCC's transactional snapshot: `VV ∨ RDV`.
                let snapshot = core.vv.snapshot_with(&rdv);
                core.start_ro_tx(client, keys, snapshot, &mut outputs);
            }
        }
        outputs
    }

    fn on_replicate(&mut self, core: &mut EngineCore<C>, _from: ServerId, key: Key) {
        let _ = core;
        let score = self.churn.entry(key).or_default();
        *score = score.saturating_add(1);
    }

    fn on_stabilization_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vv: VersionVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        core.local_vvs.insert(from.partition, vv);
        core.recompute_gss(true);
        core.unpark(outputs);
    }

    fn on_gc_vector(&mut self, core: &mut EngineCore<C>, from: ServerId, vector: DependencyVector) {
        core.gc_contributions.insert(from.partition, vector);
    }

    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // The stabilization protocol at Cure's cadence, so the GSS behind the stable
        // fall-back is at most a few milliseconds behind.
        if now.saturating_since(core.last_stabilization) >= core.config.stabilization_interval {
            core.last_stabilization = now;
            core.stabilization_round(outputs);
        }
        // POCC's GC-vector exchange, also triggered early under storage pressure.
        if now.saturating_since(core.last_gc) >= core.config.gc_interval
            || core.gc_pressure_due(now)
        {
            core.last_gc = now;
            core.gc_exchange_round(outputs);
        }
        // POCC's partition timeouts.
        core.enforce_partition_timeouts(now, outputs);
        // Cool churn scores down once per window.
        self.decay(now, core.config.adaptive_churn_window);
    }
}

/// An Adaptive-POCC server `p^m_n`: the fourth protocol variant, proving the
/// engine/policy split pays for itself. Runs under the same simulator, threaded runtime
/// and benchmark harness as the paper's three systems.
pub struct AdaptiveServer<C> {
    engine: ProtocolEngine<C, AdaptivePolicy>,
}

impl<C: Clock> AdaptiveServer<C> {
    /// Creates an Adaptive server for `id` with the given deployment configuration and
    /// clock.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        AdaptiveServer {
            engine: ProtocolEngine::new(id, config, clock, AdaptivePolicy::default()),
        }
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.engine.core().vv
    }

    /// The server's current view of the Globally Stable Snapshot.
    pub fn gss(&self) -> &DependencyVector {
        &self.engine.core().gss
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &ShardedStore {
        &self.engine.core().store
    }

    /// Number of keys currently classified as churny (reads fall back to the stable
    /// snapshot).
    pub fn churny_keys(&self) -> usize {
        let config = &self.engine.core().config;
        self.engine
            .policy()
            .churn
            .values()
            .filter(|score| **score >= config.adaptive_churn_threshold)
            .count()
    }
}

pocc_engine::delegate_protocol_server!(AdaptiveServer);

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_clock::ManualClock;
    use pocc_proto::{expect_reply, ClientReply, ProtocolServer, ServerIntrospect, ServerMessage};
    use pocc_storage::partition_for_key;
    use pocc_types::{ReplicaId, Value, Version};
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config() -> Config {
        Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .adaptive_churn_threshold(2)
            .adaptive_churn_window(Duration::from_millis(50))
            .build()
            .unwrap()
    }

    fn server(clock: &ManualClock) -> AdaptiveServer<ManualClock> {
        AdaptiveServer::new(ServerId::new(0u16, 0u32), config(), clock.clone())
    }

    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    fn replicate(s: &mut AdaptiveServer<ManualClock>, key: Key, value: &str, ts: u64) {
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate {
                version: Version::new(
                    key,
                    Value::from(value),
                    ReplicaId(1),
                    Timestamp(ts),
                    dv(&[0, 0, 0]),
                ),
            },
        );
    }

    #[test]
    fn calm_keys_are_served_optimistically() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        // One remote update: below the threshold of 2, so the key stays optimistic and
        // the fresh (unstable-looking) remote version is returned, POCC-style.
        replicate(&mut s, key, "fresh", 9 * MS);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"fresh");
            }
        );
        assert_eq!(s.metrics().stable_fallback_gets, 0);
        assert_eq!(s.churny_keys(), 0);
    }

    #[test]
    fn churny_keys_fall_back_to_stable_bounded_reads() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        // Two remote updates cross the churn threshold; neither is GSS-stable yet.
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);
        assert_eq!(s.churny_keys(), 1);

        // A dependency-free client reads: the stable-bounded path hides both unstable
        // remote versions and reports "not found".
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert!(resp.value.is_none(), "unstable remote versions must be hidden");
            }
        );
        let m = s.metrics();
        assert_eq!(m.stable_fallback_gets, 1);
        assert_eq!(m.unmerged_gets, 1);
    }

    #[test]
    fn stable_fallback_still_honours_the_session_history() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);

        // A client that has already observed the second remote version (rdv covers it)
        // must keep seeing it — monotonic reads survive the fall-back.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 9 * MS, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"r2");
            }
        );
        assert_eq!(s.metrics().stable_fallback_gets, 1);
    }

    #[test]
    fn stable_fallback_parks_until_client_dependencies_arrive() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);

        // The client depends on a remote item this server has not received: even the
        // stable-bounded read waits (its snapshot includes the RDV, so serving early
        // could roll the client's view backwards).
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 20 * MS, 0]),
            },
        );
        assert!(outputs.is_empty(), "the read must park");
        assert_eq!(s.metrics().blocked_operations, 1);

        // The missing traffic arrives; the read unparks through the stable path and
        // returns the now-covered freshest remote version.
        let outputs = s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate {
                version: Version::new(
                    key,
                    Value::from("r3"),
                    ReplicaId(1),
                    Timestamp(20 * MS),
                    dv(&[0, 0, 0]),
                ),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"r3");
            }
        );
        assert_eq!(s.metrics().stable_fallback_gets, 1);
    }

    #[test]
    fn local_writes_stay_visible_on_churny_keys() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);
        // A local write on the churny key: the local VV entry is part of the stable
        // bound, so the client reads its own write back.
        clock.set(Timestamp(11 * MS));
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("mine"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"mine");
            }
        );
    }

    #[test]
    fn churn_scores_decay_once_the_key_cools_down() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);
        assert_eq!(s.churny_keys(), 1);

        // Two quiet windows later the score has halved twice (2 -> 1 -> 0): optimistic
        // again.
        clock.set(Timestamp(70 * MS));
        s.tick();
        assert_eq!(s.churny_keys(), 0, "score halves after one quiet window");
        clock.set(Timestamp(130 * MS));
        s.tick();
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"r2", "optimistic again");
            }
        );
        assert_eq!(s.metrics().stable_fallback_gets, 0);
    }

    #[test]
    fn a_score_exactly_at_the_threshold_counts_as_churny() {
        // The classification is `score >= adaptive_churn_threshold`: with the test
        // threshold of 2, the first remote update must stay optimistic and the second —
        // landing exactly on the boundary — must flip the key to stable-bounded reads.
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        assert_eq!(s.churny_keys(), 0, "one below the threshold is calm");
        replicate(&mut s, key, "r2", 9 * MS);
        assert_eq!(s.churny_keys(), 1, "exactly at the threshold is churny");
    }

    #[test]
    fn decay_fires_exactly_at_the_window_edge_and_not_before() {
        // The decay guard is `elapsed < window`, with the first window measured from
        // time zero: a tick one microsecond short of the 50 ms churn window must leave
        // the score untouched, a tick exactly at the edge must halve it.
        let clock = ManualClock::at_zero();
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 1);
        replicate(&mut s, key, "r2", 2);
        assert_eq!(s.churny_keys(), 1);

        clock.set(Timestamp(50 * MS - 1));
        s.tick();
        assert_eq!(s.churny_keys(), 1, "one tick short of the window: no decay");

        clock.set(Timestamp(50 * MS));
        s.tick();
        assert_eq!(
            s.churny_keys(),
            0,
            "exactly one window elapsed: score halves"
        );
    }

    #[test]
    fn a_cooled_key_restarts_scoring_from_zero() {
        // Decay drops a key once its score reaches zero; fresh churn afterwards must
        // climb from zero (one update: calm), not resume from a stale retained score
        // (which would make 1 + 1 cross the threshold again immediately).
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);
        assert_eq!(s.churny_keys(), 1);

        // Two quiet windows: 2 >> 2 == 0, the key is dropped from the score map.
        clock.set(Timestamp(110 * MS));
        s.tick();
        assert_eq!(s.churny_keys(), 0);

        replicate(&mut s, key, "r3", 105 * MS);
        assert_eq!(
            s.churny_keys(),
            0,
            "scoring restarted from zero, not from 1"
        );
        replicate(&mut s, key, "r4", 106 * MS);
        assert_eq!(
            s.churny_keys(),
            1,
            "two fresh updates cross the threshold again"
        );
    }

    #[test]
    fn decay_across_a_very_long_gap_clears_the_scores_without_overflow() {
        // More than 32 churn windows elapse between ticks (a stalled server thread, or a
        // clock starting far from zero): the shift-per-window decay must saturate into a
        // full clear instead of overflowing the u32 shift.
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);
        assert_eq!(s.churny_keys(), 1);

        // 50ms window * 40 elapsed windows = 2s gap.
        clock.set(Timestamp(2_010 * MS));
        s.tick();
        assert_eq!(s.churny_keys(), 0, "a long gap clears every score");
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(_))
        ));
        assert_eq!(s.metrics().stable_fallback_gets, 0, "optimistic again");
    }

    #[test]
    fn stabilization_advances_the_gss_and_unhides_stable_versions() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        replicate(&mut s, key, "r1", 8 * MS);
        replicate(&mut s, key, "r2", 9 * MS);

        // Heartbeats from both remote replicas + a tick advance this server's VV; a
        // single-partition DC computes the GSS from its own vector.
        for r in [1u16, 2] {
            s.handle_server_message(
                ServerId::new(r, 0u32),
                ServerMessage::Heartbeat {
                    clock: Timestamp(30 * MS),
                },
            );
        }
        clock.set(Timestamp(31 * MS));
        s.tick();

        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert_eq!(resp.value.unwrap().as_slice(), b"r2", "now stable, so visible");
            }
        );
        assert_eq!(s.metrics().stable_fallback_gets, 1);
        assert_eq!(s.metrics().old_gets, 0);
    }

    #[test]
    fn transactions_follow_pocc_semantics() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = server(&clock);
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("t"),
                dv: dv(&[0, 0, 0]),
            },
        );
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].response.value.as_ref().unwrap().as_slice(), b"t");
            }
        );
        assert_eq!(s.metrics().rotx_served, 1);
    }
}
