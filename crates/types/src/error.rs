//! The common error type of the POCC reproduction.

use crate::{ClientId, Key, PartitionId, ReplicaId, ServerId};
use std::fmt;

/// Convenience alias for results using the crate-wide [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the protocol, storage and runtime layers.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Error {
    /// The requested key does not exist on the partition that owns it.
    KeyNotFound {
        /// The missing key.
        key: Key,
    },
    /// A request was routed to a server that does not own the key's partition.
    WrongPartition {
        /// The key that was addressed.
        key: Key,
        /// The partition that actually owns the key.
        expected: PartitionId,
        /// The partition of the server that received the request.
        actual: PartitionId,
    },
    /// A message referenced a replica id outside the configured deployment.
    UnknownReplica {
        /// The offending replica id.
        replica: ReplicaId,
        /// The number of replicas in the deployment.
        num_replicas: usize,
    },
    /// A message referenced a partition id outside the configured deployment.
    UnknownPartition {
        /// The offending partition id.
        partition: PartitionId,
        /// The number of partitions in the deployment.
        num_partitions: usize,
    },
    /// A message or reply could not be decoded from its wire representation.
    Codec {
        /// Human-readable description of the decoding failure.
        reason: String,
    },
    /// The deployment configuration is invalid (e.g. zero replicas or partitions).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An operation was addressed to a server that is unreachable because of an injected
    /// or detected network partition.
    Partitioned {
        /// The unreachable server.
        server: ServerId,
    },
    /// A blocked request exceeded the configured partition-detection timeout; the session
    /// must be re-initialised (the availability recovery of §III-B).
    SessionAborted {
        /// The client whose session was closed.
        client: ClientId,
        /// Human-readable reason (which wait condition timed out).
        reason: String,
    },
    /// A client issued an operation on a closed or unknown session.
    UnknownSession {
        /// The unknown client id.
        client: ClientId,
    },
    /// The runtime failed to deliver a message because the destination thread terminated.
    ChannelClosed {
        /// Description of the endpoint whose channel closed.
        endpoint: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyNotFound { key } => write!(f, "key {key} not found"),
            Error::WrongPartition {
                key,
                expected,
                actual,
            } => write!(
                f,
                "key {key} belongs to partition {expected} but was addressed to {actual}"
            ),
            Error::UnknownReplica {
                replica,
                num_replicas,
            } => write!(
                f,
                "replica {replica} outside deployment of {num_replicas} replicas"
            ),
            Error::UnknownPartition {
                partition,
                num_partitions,
            } => write!(
                f,
                "partition {partition} outside deployment of {num_partitions} partitions"
            ),
            Error::Codec { reason } => write!(f, "codec error: {reason}"),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::Partitioned { server } => {
                write!(f, "server {server} unreachable due to a network partition")
            }
            Error::SessionAborted { client, reason } => {
                write!(f, "session of {client} aborted: {reason}")
            }
            Error::UnknownSession { client } => write!(f, "unknown session for {client}"),
            Error::ChannelClosed { endpoint } => write!(f, "channel to {endpoint} closed"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        let e = Error::KeyNotFound { key: Key(7) };
        assert!(e.to_string().contains("k7"));

        let e = Error::WrongPartition {
            key: Key(7),
            expected: PartitionId(3),
            actual: PartitionId(5),
        };
        assert!(e.to_string().contains("p3") && e.to_string().contains("p5"));

        let e = Error::SessionAborted {
            client: ClientId(9),
            reason: "partition suspected".into(),
        };
        assert!(e.to_string().contains("c9"));
        assert!(e.to_string().contains("partition suspected"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<Error>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnknownSession {
                client: ClientId(1)
            },
            Error::UnknownSession {
                client: ClientId(1)
            }
        );
        assert_ne!(
            Error::UnknownSession {
                client: ClientId(1)
            },
            Error::UnknownSession {
                client: ClientId(2)
            }
        );
    }
}
