//! Physical timestamps.
//!
//! POCC assigns every update a *physical clock timestamp* taken from the creating
//! server's loosely synchronised clock (§IV). Timestamps are the unit of all
//! dependency metadata: dependency-vector entries, version-vector entries and the
//! update time of every item version are all [`Timestamp`]s.
//!
//! The reproduction represents a timestamp as a number of **microseconds** since the
//! (simulated or real) epoch. Microsecond granularity matches the granularity used by
//! the original system and is fine enough that ties between distinct servers are broken
//! by the source-replica id as prescribed by the last-writer-wins rule of §IV-B.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A physical-clock timestamp, in microseconds since the epoch of the deployment.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp. Every dependency vector starts at this value, which encodes
    /// "no dependency on that data center".
    pub const ZERO: Timestamp = Timestamp(0);

    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Creates a timestamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Creates a timestamp from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Raw value in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (truncated) milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value as a [`Duration`] since the epoch.
    #[inline]
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }

    /// Returns the later of `self` and `other`.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating difference `self - other`, as a [`Duration`]. Returns zero when
    /// `other` is later than `self`.
    #[inline]
    pub fn saturating_since(self, other: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(other.0))
    }

    /// Adds one microsecond — the smallest possible advance. Used by the hybrid clock
    /// to enforce strict monotonicity of issued timestamps.
    #[inline]
    pub fn tick(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.as_micros() as u64))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        Duration::from_micros(self.0 - rhs.0)
    }
}

impl From<u64> for Timestamp {
    fn from(us: u64) -> Self {
        Timestamp(us)
    }
}

impl From<Duration> for Timestamp {
    fn from(d: Duration) -> Self {
        Timestamp(d.as_micros() as u64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_are_consistent() {
        let t = Timestamp::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!(t.as_millis(), 3);
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(t.as_duration(), Duration::from_millis(3));
    }

    #[test]
    fn max_and_min_pick_the_right_operand() {
        let a = Timestamp(5);
        let b = Timestamp(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn saturating_since_is_zero_for_earlier_lhs() {
        let a = Timestamp(5);
        let b = Timestamp(9);
        assert_eq!(b.saturating_since(a), Duration::from_micros(4));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn add_and_sub_round_trip() {
        let a = Timestamp(100);
        let b = a + Duration::from_micros(50);
        assert_eq!(b, Timestamp(150));
        assert_eq!(b - a, Duration::from_micros(50));
    }

    #[test]
    fn tick_strictly_increases() {
        let a = Timestamp(7);
        assert!(a.tick() > a);
        assert_eq!(a.tick(), Timestamp(8));
    }

    #[test]
    fn zero_is_identity_for_max() {
        let a = Timestamp(42);
        assert_eq!(a.max(Timestamp::ZERO), a);
        assert_eq!(Timestamp::ZERO.max(a), a);
    }

    proptest! {
        #[test]
        fn prop_max_is_commutative_and_idempotent(a in any::<u64>(), b in any::<u64>()) {
            let (a, b) = (Timestamp(a), Timestamp(b));
            prop_assert_eq!(a.max(b), b.max(a));
            prop_assert_eq!(a.max(a), a);
            prop_assert!(a.max(b) >= a && a.max(b) >= b);
        }

        #[test]
        fn prop_saturating_ops_never_panic(a in any::<u64>(), d in any::<u64>()) {
            let t = Timestamp(a);
            let dur = Duration::from_micros(d);
            let _ = t.saturating_add(dur);
            let _ = t.saturating_sub(dur);
        }

        #[test]
        fn prop_ordering_matches_raw(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(Timestamp(a) < Timestamp(b), a < b);
        }
    }
}
