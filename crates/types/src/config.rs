//! Deployment configuration.
//!
//! [`Config`] gathers every knob of a deployment of the reproduced system: topology
//! (number of data centers and partitions), protocol timers (heartbeat interval `∆`,
//! Cure's stabilization interval, garbage-collection interval), network latencies, clock
//! skew, and the workload-independent server parameters used by the simulator.
//!
//! The defaults mirror the experimental test-bed of §V-A of the paper: 3 data centers,
//! 32 partitions per data center, 1 ms heartbeat interval, 5 ms stabilization interval,
//! WAN latencies in the order of those between Oregon, Virginia and Ireland.

use crate::{Error, ReplicaId, Result};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Round-trip-free one-way latency matrix between data centers, plus the intra-DC latency.
///
/// Entry `[i][j]` is the one-way delay of a message sent from data center `i` to data
/// center `j`. The matrix does not have to be symmetric, although realistic deployments
/// usually are.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LatencyMatrix {
    /// One-way delay between servers in the same data center.
    pub intra_dc: Duration,
    /// One-way delays between data centers; `inter_dc[i][j]` is from DC `i` to DC `j`.
    pub inter_dc: Vec<Vec<Duration>>,
}

impl LatencyMatrix {
    /// A matrix with the same one-way delay between every pair of distinct data centers.
    pub fn uniform(num_replicas: usize, intra_dc: Duration, inter_dc: Duration) -> Self {
        let mut m = vec![vec![Duration::ZERO; num_replicas]; num_replicas];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    *cell = inter_dc;
                }
            }
        }
        LatencyMatrix {
            intra_dc,
            inter_dc: m,
        }
    }

    /// The latency matrix modelled after the paper's test-bed: Oregon (0), Virginia (1),
    /// Ireland (2), with one-way delays of roughly half the public round-trip times
    /// between those regions, and a 0.25 ms intra-DC delay.
    pub fn aws_three_dc() -> Self {
        let ms = Duration::from_millis;
        LatencyMatrix {
            intra_dc: Duration::from_micros(250),
            inter_dc: vec![
                // Oregon -> Oregon, Virginia, Ireland
                vec![Duration::ZERO, ms(36), ms(70)],
                // Virginia -> Oregon, Virginia, Ireland
                vec![ms(36), Duration::ZERO, ms(40)],
                // Ireland -> Oregon, Virginia, Ireland
                vec![ms(70), ms(40), Duration::ZERO],
            ],
        }
    }

    /// Number of data centers covered by the matrix.
    pub fn num_replicas(&self) -> usize {
        self.inter_dc.len()
    }

    /// One-way delay between two data centers (the intra-DC delay when they coincide).
    pub fn between(&self, from: ReplicaId, to: ReplicaId) -> Duration {
        if from == to {
            self.intra_dc
        } else {
            self.inter_dc[from.index()][to.index()]
        }
    }

    /// The largest inter-DC delay in the matrix. Useful for sizing quiescence periods in
    /// tests and for the partition detector's timeout heuristics.
    pub fn max_inter_dc(&self) -> Duration {
        self.inter_dc
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Validates that the matrix is square and covers `num_replicas` data centers.
    pub fn validate(&self, num_replicas: usize) -> Result<()> {
        if self.inter_dc.len() != num_replicas
            || self.inter_dc.iter().any(|row| row.len() != num_replicas)
        {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "latency matrix must be {num_replicas}x{num_replicas}, got {}x{:?}",
                    self.inter_dc.len(),
                    self.inter_dc.iter().map(|r| r.len()).collect::<Vec<_>>()
                ),
            });
        }
        Ok(())
    }
}

/// Static configuration of a deployment.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Config {
    /// Number of data centers `M`. The paper's evaluation uses 3.
    pub num_replicas: usize,
    /// Number of partitions `N` per data center. The paper's evaluation uses up to 32.
    pub num_partitions: usize,
    /// Heartbeat interval `∆` (Algorithm 2 line 19): a server that has not created a local
    /// update for this long broadcasts its clock to its sibling replicas. 1 ms in §V-A.
    pub heartbeat_interval: Duration,
    /// Interval of Cure's intra-DC stabilization protocol (GSS computation). 5 ms in §V-A.
    /// HA-POCC runs the same protocol but much less frequently
    /// (see [`Config::ha_stabilization_interval`]).
    pub stabilization_interval: Duration,
    /// Interval of the infrequent stabilization run by HA-POCC during normal operation.
    pub ha_stabilization_interval: Duration,
    /// Interval of the garbage-collection vector exchange (§IV-B).
    pub gc_interval: Duration,
    /// How long a POCC server lets a request block before suspecting a network partition
    /// and closing the client session (§III-B, phase 1 of the recovery procedure).
    pub partition_detection_timeout: Duration,
    /// Maximum absolute physical-clock offset of any server from true time, modelling NTP
    /// synchronisation error.
    pub max_clock_skew: Duration,
    /// One-way network latencies.
    pub latency: LatencyMatrix,
    /// CPU time a server spends handling a GET or PUT request (simulator only).
    pub op_service_time: Duration,
    /// Extra CPU time per version-chain element traversed when searching for a visible
    /// version (Cure\* pays this; POCC GETs do not traverse the chain).
    pub chain_traversal_cost: Duration,
    /// CPU time a server spends handling one replicated update or heartbeat.
    pub replication_service_time: Duration,
    /// Whether the PUT handler waits for the client's full dependency vector before
    /// applying the write (Algorithm 2 line 6). Optional for last-writer-wins but enabled
    /// in the paper's evaluation to model generic convergent conflict handling.
    pub put_waits_for_dependencies: bool,
    /// Number of key-hashed shards each server splits its partition's version storage
    /// into (intra-partition sharding; `1` reproduces the original unsharded store).
    pub storage_shards: usize,
    /// Number of worker lanes each server of the *threaded* runtime spreads its client
    /// load across (`1` reproduces the original serial server loop; the simulator
    /// ignores this field). Lanes own disjoint sets of storage shards, so values that
    /// divide `storage_shards` avoid cross-lane shard contention.
    pub worker_lanes: usize,
    /// Whether servers coalesce replication and garbage-collection traffic per
    /// destination into one batch message per tick, instead of sending one message per
    /// write. Off by default: batching trades up to one heartbeat interval of extra
    /// replication delay for far fewer messages on the inter-DC links.
    pub replication_batching: bool,
    /// Adaptive protocol only: number of remote updates a key must receive within one
    /// churn window before its reads fall back to GSS-stable-bounded visibility.
    pub adaptive_churn_threshold: u32,
    /// Adaptive protocol only: length of the sliding window over which per-key remote
    /// churn is counted (scores halve at every window boundary, so classification decays
    /// once a key cools down).
    pub adaptive_churn_window: Duration,
    /// Whether servers run garbage collection *early* — before the next `gc_interval`
    /// boundary — when a store shard's retained history exceeds the pressure bounds
    /// below. Off by default: interval-only GC reproduces the paper's §IV-B behaviour;
    /// pressure-adaptive GC bounds chain length and memory under write skew.
    pub gc_pressure: bool,
    /// Pressure bound on the longest version chain of any one store shard; exceeding it
    /// (with [`Config::gc_pressure`] on) triggers an early GC pass.
    pub gc_pressure_max_chain_len: usize,
    /// Pressure bound on the live version bytes retained by any one store shard;
    /// exceeding it (with [`Config::gc_pressure`] on) triggers an early GC pass.
    pub gc_pressure_max_live_bytes: usize,
    /// Minimum spacing between pressure-triggered GC passes, so a shard pinned above the
    /// bounds by not-yet-stable versions does not collect on every server tick.
    pub gc_pressure_backoff: Duration,
}

impl Config {
    /// Returns a builder pre-populated with the defaults of the paper's test-bed.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// A small configuration convenient for unit tests: 3 data centers, 4 partitions,
    /// sub-millisecond latencies.
    pub fn small_test() -> Config {
        Config::builder()
            .num_replicas(3)
            .num_partitions(4)
            .latency(LatencyMatrix::uniform(
                3,
                Duration::from_micros(100),
                Duration::from_millis(5),
            ))
            .build()
            .expect("small test config is valid")
    }

    /// The configuration of the paper's evaluation test-bed (§V-A): 3 data centers with
    /// AWS-like latencies and 32 partitions per data center.
    pub fn paper_testbed() -> Config {
        Config::builder()
            .num_replicas(3)
            .num_partitions(32)
            .latency(LatencyMatrix::aws_three_dc())
            .build()
            .expect("paper test-bed config is valid")
    }

    /// Iterator over all replica ids of the deployment.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.num_replicas).map(ReplicaId::from)
    }

    /// Iterator over all partition ids of the deployment.
    pub fn partitions(&self) -> impl Iterator<Item = crate::PartitionId> {
        (0..self.num_partitions).map(crate::PartitionId::from)
    }

    /// Iterator over every server id of the deployment.
    pub fn servers(&self) -> impl Iterator<Item = crate::ServerId> + '_ {
        self.replicas()
            .flat_map(move |r| self.partitions().map(move |p| crate::ServerId::new(r, p)))
    }

    /// Total number of servers (`M * N`).
    pub fn num_servers(&self) -> usize {
        self.num_replicas * self.num_partitions
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_replicas == 0 {
            return Err(Error::InvalidConfig {
                reason: "num_replicas must be at least 1".into(),
            });
        }
        if self.num_replicas > u16::MAX as usize {
            return Err(Error::InvalidConfig {
                reason: format!("num_replicas {} exceeds u16::MAX", self.num_replicas),
            });
        }
        if self.num_partitions == 0 {
            return Err(Error::InvalidConfig {
                reason: "num_partitions must be at least 1".into(),
            });
        }
        if self.heartbeat_interval.is_zero() {
            return Err(Error::InvalidConfig {
                reason: "heartbeat_interval must be positive".into(),
            });
        }
        if self.worker_lanes == 0 {
            return Err(Error::InvalidConfig {
                reason: "worker_lanes must be at least 1".into(),
            });
        }
        if self.storage_shards == 0 {
            return Err(Error::InvalidConfig {
                reason: "storage_shards must be at least 1".into(),
            });
        }
        if self.stabilization_interval.is_zero() {
            return Err(Error::InvalidConfig {
                reason: "stabilization_interval must be positive".into(),
            });
        }
        if self.adaptive_churn_window.is_zero() {
            return Err(Error::InvalidConfig {
                reason: "adaptive_churn_window must be positive".into(),
            });
        }
        if self.gc_pressure {
            if self.gc_pressure_max_chain_len == 0 {
                return Err(Error::InvalidConfig {
                    reason: "gc_pressure_max_chain_len must be at least 1".into(),
                });
            }
            if self.gc_pressure_max_live_bytes == 0 {
                return Err(Error::InvalidConfig {
                    reason: "gc_pressure_max_live_bytes must be positive".into(),
                });
            }
        }
        self.latency.validate(self.num_replicas)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::paper_testbed()
    }
}

/// Builder for [`Config`].
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    num_replicas: usize,
    num_partitions: usize,
    heartbeat_interval: Duration,
    stabilization_interval: Duration,
    ha_stabilization_interval: Duration,
    gc_interval: Duration,
    partition_detection_timeout: Duration,
    max_clock_skew: Duration,
    latency: Option<LatencyMatrix>,
    op_service_time: Duration,
    chain_traversal_cost: Duration,
    replication_service_time: Duration,
    put_waits_for_dependencies: bool,
    storage_shards: usize,
    worker_lanes: usize,
    replication_batching: bool,
    adaptive_churn_threshold: u32,
    adaptive_churn_window: Duration,
    gc_pressure: bool,
    gc_pressure_max_chain_len: usize,
    gc_pressure_max_live_bytes: usize,
    gc_pressure_backoff: Duration,
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder {
            num_replicas: 3,
            num_partitions: 32,
            heartbeat_interval: Duration::from_millis(1),
            stabilization_interval: Duration::from_millis(5),
            ha_stabilization_interval: Duration::from_millis(500),
            gc_interval: Duration::from_millis(100),
            partition_detection_timeout: Duration::from_secs(2),
            max_clock_skew: Duration::from_micros(500),
            latency: None,
            op_service_time: Duration::from_micros(40),
            chain_traversal_cost: Duration::from_micros(2),
            replication_service_time: Duration::from_micros(10),
            put_waits_for_dependencies: true,
            storage_shards: 8,
            worker_lanes: 1,
            replication_batching: false,
            adaptive_churn_threshold: 3,
            adaptive_churn_window: Duration::from_millis(20),
            gc_pressure: false,
            gc_pressure_max_chain_len: 64,
            gc_pressure_max_live_bytes: 4 << 20,
            gc_pressure_backoff: Duration::from_millis(10),
        }
    }
}

impl ConfigBuilder {
    /// Sets the number of data centers `M`.
    pub fn num_replicas(mut self, n: usize) -> Self {
        self.num_replicas = n;
        self
    }

    /// Sets the number of partitions `N`.
    pub fn num_partitions(mut self, n: usize) -> Self {
        self.num_partitions = n;
        self
    }

    /// Sets the heartbeat interval `∆`.
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Sets Cure's stabilization interval.
    pub fn stabilization_interval(mut self, d: Duration) -> Self {
        self.stabilization_interval = d;
        self
    }

    /// Sets HA-POCC's (infrequent) stabilization interval.
    pub fn ha_stabilization_interval(mut self, d: Duration) -> Self {
        self.ha_stabilization_interval = d;
        self
    }

    /// Sets the garbage-collection exchange interval.
    pub fn gc_interval(mut self, d: Duration) -> Self {
        self.gc_interval = d;
        self
    }

    /// Sets how long a blocked request may wait before the server suspects a partition.
    pub fn partition_detection_timeout(mut self, d: Duration) -> Self {
        self.partition_detection_timeout = d;
        self
    }

    /// Sets the maximum absolute clock offset from true time.
    pub fn max_clock_skew(mut self, d: Duration) -> Self {
        self.max_clock_skew = d;
        self
    }

    /// Sets the network latency matrix.
    pub fn latency(mut self, latency: LatencyMatrix) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Sets the CPU service time for a GET/PUT request.
    pub fn op_service_time(mut self, d: Duration) -> Self {
        self.op_service_time = d;
        self
    }

    /// Sets the per-version chain-traversal CPU cost.
    pub fn chain_traversal_cost(mut self, d: Duration) -> Self {
        self.chain_traversal_cost = d;
        self
    }

    /// Sets the CPU service time for a replicated update or heartbeat.
    pub fn replication_service_time(mut self, d: Duration) -> Self {
        self.replication_service_time = d;
        self
    }

    /// Enables or disables the PUT-side dependency wait (Algorithm 2 line 6).
    pub fn put_waits_for_dependencies(mut self, yes: bool) -> Self {
        self.put_waits_for_dependencies = yes;
        self
    }

    /// Sets the number of worker lanes per server of the threaded runtime.
    pub fn worker_lanes(mut self, n: usize) -> Self {
        self.worker_lanes = n;
        self
    }

    /// Sets the number of key-hashed shards per partition store (`1` = unsharded).
    pub fn storage_shards(mut self, n: usize) -> Self {
        self.storage_shards = n;
        self
    }

    /// Enables or disables per-destination batching of replication and GC traffic.
    pub fn replication_batching(mut self, yes: bool) -> Self {
        self.replication_batching = yes;
        self
    }

    /// Sets the remote-churn threshold above which the Adaptive protocol serves a key's
    /// reads from the stable snapshot instead of optimistically.
    pub fn adaptive_churn_threshold(mut self, n: u32) -> Self {
        self.adaptive_churn_threshold = n;
        self
    }

    /// Sets the sliding window over which the Adaptive protocol counts per-key remote
    /// churn.
    pub fn adaptive_churn_window(mut self, d: Duration) -> Self {
        self.adaptive_churn_window = d;
        self
    }

    /// Enables or disables pressure-adaptive garbage collection (early GC passes when a
    /// store shard exceeds the chain-length or live-bytes bounds).
    pub fn gc_pressure(mut self, yes: bool) -> Self {
        self.gc_pressure = yes;
        self
    }

    /// Sets the per-shard chain-length bound above which pressure-adaptive GC fires.
    pub fn gc_pressure_max_chain_len(mut self, n: usize) -> Self {
        self.gc_pressure_max_chain_len = n;
        self
    }

    /// Sets the per-shard live-bytes bound above which pressure-adaptive GC fires.
    pub fn gc_pressure_max_live_bytes(mut self, n: usize) -> Self {
        self.gc_pressure_max_live_bytes = n;
        self
    }

    /// Sets the minimum spacing between pressure-triggered GC passes.
    pub fn gc_pressure_backoff(mut self, d: Duration) -> Self {
        self.gc_pressure_backoff = d;
        self
    }

    /// Builds and validates the configuration.
    pub fn build(self) -> Result<Config> {
        let latency = self.latency.unwrap_or_else(|| {
            if self.num_replicas == 3 {
                LatencyMatrix::aws_three_dc()
            } else {
                LatencyMatrix::uniform(
                    self.num_replicas,
                    Duration::from_micros(250),
                    Duration::from_millis(50),
                )
            }
        });
        let config = Config {
            num_replicas: self.num_replicas,
            num_partitions: self.num_partitions,
            heartbeat_interval: self.heartbeat_interval,
            stabilization_interval: self.stabilization_interval,
            ha_stabilization_interval: self.ha_stabilization_interval,
            gc_interval: self.gc_interval,
            partition_detection_timeout: self.partition_detection_timeout,
            max_clock_skew: self.max_clock_skew,
            latency,
            op_service_time: self.op_service_time,
            chain_traversal_cost: self.chain_traversal_cost,
            replication_service_time: self.replication_service_time,
            put_waits_for_dependencies: self.put_waits_for_dependencies,
            storage_shards: self.storage_shards,
            worker_lanes: self.worker_lanes,
            replication_batching: self.replication_batching,
            adaptive_churn_threshold: self.adaptive_churn_threshold,
            adaptive_churn_window: self.adaptive_churn_window,
            gc_pressure: self.gc_pressure,
            gc_pressure_max_chain_len: self.gc_pressure_max_chain_len,
            gc_pressure_max_live_bytes: self.gc_pressure_max_live_bytes,
            gc_pressure_backoff: self.gc_pressure_backoff,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_testbed() {
        let c = Config::default();
        assert_eq!(c.num_replicas, 3);
        assert_eq!(c.num_partitions, 32);
        assert_eq!(c.heartbeat_interval, Duration::from_millis(1));
        assert_eq!(c.stabilization_interval, Duration::from_millis(5));
        assert!(c.put_waits_for_dependencies);
        c.validate().unwrap();
    }

    #[test]
    fn builder_overrides_fields() {
        let c = Config::builder()
            .num_replicas(5)
            .num_partitions(8)
            .heartbeat_interval(Duration::from_millis(2))
            .stabilization_interval(Duration::from_millis(10))
            .put_waits_for_dependencies(false)
            .build()
            .unwrap();
        assert_eq!(c.num_replicas, 5);
        assert_eq!(c.num_partitions, 8);
        assert_eq!(c.heartbeat_interval, Duration::from_millis(2));
        assert!(!c.put_waits_for_dependencies);
        // A uniform latency matrix is synthesised for non-3-DC deployments.
        assert_eq!(c.latency.num_replicas(), 5);
    }

    #[test]
    fn storage_and_batching_knobs_round_trip() {
        let c = Config::builder()
            .storage_shards(4)
            .replication_batching(true)
            .build()
            .unwrap();
        assert_eq!(c.storage_shards, 4);
        assert!(c.replication_batching);
        let d = Config::default();
        assert_eq!(d.storage_shards, 8);
        assert!(!d.replication_batching, "batching is opt-in");
    }

    #[test]
    fn gc_pressure_knobs_round_trip_and_validate() {
        let d = Config::default();
        assert!(!d.gc_pressure, "pressure-adaptive GC is opt-in");
        let c = Config::builder()
            .gc_pressure(true)
            .gc_pressure_max_chain_len(16)
            .gc_pressure_max_live_bytes(1 << 20)
            .gc_pressure_backoff(Duration::from_millis(2))
            .build()
            .unwrap();
        assert!(c.gc_pressure);
        assert_eq!(c.gc_pressure_max_chain_len, 16);
        assert_eq!(c.gc_pressure_max_live_bytes, 1 << 20);
        assert_eq!(c.gc_pressure_backoff, Duration::from_millis(2));
        // The bounds are only validated when the feature is on.
        assert!(Config::builder()
            .gc_pressure_max_chain_len(0)
            .build()
            .is_ok());
        assert!(Config::builder()
            .gc_pressure(true)
            .gc_pressure_max_chain_len(0)
            .build()
            .is_err());
        assert!(Config::builder()
            .gc_pressure(true)
            .gc_pressure_max_live_bytes(0)
            .build()
            .is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Config::builder().num_replicas(0).build().is_err());
        assert!(Config::builder().num_partitions(0).build().is_err());
        assert!(Config::builder().storage_shards(0).build().is_err());
        assert!(Config::builder().worker_lanes(0).build().is_err());
        assert!(Config::builder()
            .heartbeat_interval(Duration::ZERO)
            .build()
            .is_err());
        assert!(Config::builder()
            .stabilization_interval(Duration::ZERO)
            .build()
            .is_err());
        assert!(Config::builder()
            .num_replicas(2)
            .latency(LatencyMatrix::uniform(
                3,
                Duration::from_micros(1),
                Duration::from_millis(1)
            ))
            .build()
            .is_err());
    }

    #[test]
    fn latency_matrix_lookup() {
        let m = LatencyMatrix::aws_three_dc();
        assert_eq!(m.num_replicas(), 3);
        assert_eq!(m.between(ReplicaId(0), ReplicaId(0)), m.intra_dc);
        assert_eq!(
            m.between(ReplicaId(0), ReplicaId(2)),
            Duration::from_millis(70)
        );
        assert_eq!(m.max_inter_dc(), Duration::from_millis(70));
    }

    #[test]
    fn uniform_matrix_is_symmetric_with_zero_diagonal() {
        let m = LatencyMatrix::uniform(4, Duration::from_micros(1), Duration::from_millis(10));
        for i in 0..4u16 {
            for j in 0..4u16 {
                let d = m.between(ReplicaId(i), ReplicaId(j));
                if i == j {
                    assert_eq!(d, Duration::from_micros(1));
                } else {
                    assert_eq!(d, Duration::from_millis(10));
                    assert_eq!(d, m.between(ReplicaId(j), ReplicaId(i)));
                }
            }
        }
    }

    #[test]
    fn iterators_cover_the_deployment() {
        let c = Config::small_test();
        assert_eq!(c.replicas().count(), 3);
        assert_eq!(c.partitions().count(), 4);
        assert_eq!(c.servers().count(), 12);
        assert_eq!(c.num_servers(), 12);
    }
}
