//! Identifiers for the entities of a geo-replicated deployment.
//!
//! The paper's system model (§II-C) splits the data set into `N` partitions, each
//! replicated at `M` data centers. A *server* is one replica of one partition and is
//! therefore addressed by the pair `(replica, partition)` — the paper writes it `p^m_n`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data center (a *replica* in the paper's terminology).
///
/// The paper's evaluation uses `M = 3` data centers (Oregon, Virginia, Ireland); the
/// protocol supports any number. Replica ids are dense indices `0..M`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ReplicaId(pub u16);

impl ReplicaId {
    /// Returns the dense index of this replica, usable to index per-replica arrays
    /// such as [`crate::VersionVector`] entries.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for ReplicaId {
    fn from(v: u16) -> Self {
        ReplicaId(v)
    }
}

impl From<usize> for ReplicaId {
    fn from(v: usize) -> Self {
        ReplicaId(v as u16)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

/// Identifier of a data partition (a shard of the key space).
///
/// Every key is deterministically assigned to a single partition by a hash function
/// (see `pocc_storage::partition_for_key`). Partition ids are dense indices `0..N`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// Returns the dense index of this partition.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for PartitionId {
    fn from(v: u32) -> Self {
        PartitionId(v)
    }
}

impl From<usize> for PartitionId {
    fn from(v: usize) -> Self {
        PartitionId(v as u32)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a server: one replica of one partition (`p^m_n` in the paper,
/// where `m` is the data center and `n` the partition).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ServerId {
    /// The data center hosting this server.
    pub replica: ReplicaId,
    /// The partition this server is responsible for.
    pub partition: PartitionId,
}

impl ServerId {
    /// Creates a server id from a replica (data center) and a partition.
    pub fn new(replica: impl Into<ReplicaId>, partition: impl Into<PartitionId>) -> Self {
        ServerId {
            replica: replica.into(),
            partition: partition.into(),
        }
    }

    /// The server holding the same partition in another data center (a *sibling replica*).
    pub fn sibling(self, replica: impl Into<ReplicaId>) -> ServerId {
        ServerId {
            replica: replica.into(),
            partition: self.partition,
        }
    }

    /// The server holding another partition in the same data center (a *local peer*).
    pub fn local_peer(self, partition: impl Into<PartitionId>) -> ServerId {
        ServerId {
            replica: self.replica,
            partition: partition.into(),
        }
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.replica, self.partition)
    }
}

/// Identifier of a client session.
///
/// Clients connect to a node in their closest data center and issue operations in a
/// closed loop (§II-C). A client id is unique across the whole deployment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl ClientId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for ClientId {
    fn from(v: u64) -> Self {
        ClientId(v)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_index_round_trips() {
        let r = ReplicaId::from(7usize);
        assert_eq!(r.index(), 7);
        assert_eq!(ReplicaId::from(7u16), r);
    }

    #[test]
    fn partition_id_index_round_trips() {
        let p = PartitionId::from(31usize);
        assert_eq!(p.index(), 31);
        assert_eq!(PartitionId::from(31u32), p);
    }

    #[test]
    fn server_id_sibling_keeps_partition() {
        let s = ServerId::new(0u16, 5u32);
        let sib = s.sibling(2u16);
        assert_eq!(sib.partition, s.partition);
        assert_eq!(sib.replica, ReplicaId(2));
    }

    #[test]
    fn server_id_local_peer_keeps_replica() {
        let s = ServerId::new(1u16, 5u32);
        let peer = s.local_peer(9u32);
        assert_eq!(peer.replica, s.replica);
        assert_eq!(peer.partition, PartitionId(9));
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(ReplicaId(2).to_string(), "dc2");
        assert_eq!(PartitionId(14).to_string(), "p14");
        assert_eq!(ServerId::new(2u16, 14u32).to_string(), "dc2/p14");
        assert_eq!(ClientId(3).to_string(), "c3");
    }

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(ReplicaId(1) < ReplicaId(2));
        assert!(PartitionId(1) < PartitionId(10));
        assert!(ClientId(1) < ClientId(2));
    }

    #[test]
    fn server_id_orders_by_replica_then_partition() {
        let a = ServerId::new(0u16, 9u32);
        let b = ServerId::new(1u16, 0u32);
        assert!(a < b);
    }
}
