//! Version vectors and dependency vectors.
//!
//! POCC tracks causality at the granularity of the data center (§IV): every item and every
//! client carries a vector with one physical-timestamp entry per data center, and every
//! server maintains a *version vector* summarising the updates it has received from each
//! sibling replica.
//!
//! * [`DependencyVector`] — attached to item versions (`d.dv`) and to clients
//!   (`DV_c`, `RDV_c`). Entry `i` is the update time of the newest item *originated at
//!   data center `i`* that the carrier (item or client) potentially depends on.
//! * [`VersionVector`] — maintained by a server `p^m_n` (`VV^m_n`). Entry `m` is the highest
//!   update timestamp of any local update; entry `i ≠ m` means the server has received every
//!   update of its partition originated at data center `i` with timestamp up to that value
//!   (updates and heartbeats are delivered in timestamp order over FIFO channels).
//!
//! Both are thin wrappers over the same fixed-length vector of [`Timestamp`]s and share the
//! lattice operations (entry-wise max/min, partial-order comparison) through [`ClockVector`].

use crate::{ReplicaId, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// The result of comparing two clock vectors under the entry-wise partial order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VectorOrdering {
    /// Every entry is equal.
    Equal,
    /// Every entry of the left operand is `<=` the corresponding right entry, and at least
    /// one is strictly smaller.
    Less,
    /// Every entry of the left operand is `>=` the corresponding right entry, and at least
    /// one is strictly greater.
    Greater,
    /// Some entries are smaller and some are greater: the vectors are incomparable, which
    /// for dependency vectors means the underlying events are concurrent.
    Concurrent,
}

/// A fixed-length vector of physical timestamps, one entry per data center.
///
/// This is the shared representation behind [`VersionVector`] and [`DependencyVector`].
/// The length is fixed at construction time to the number of data centers `M` of the
/// deployment; all binary operations require both operands to have the same length and
/// panic otherwise (mixing vectors from differently-sized deployments is a programming
/// error, not a runtime condition).
///
/// # Memory layout
///
/// Deployments in the paper span 2–8 data centers, and a vector is attached to *every*
/// item version, wire message and client session — so vector copies sit on every hot
/// path. Up to [`ClockVector::INLINE_CAPACITY`] entries are therefore stored inline in
/// the struct itself: cloning such a vector is a plain memcpy with **zero** heap
/// allocations. Longer vectors spill to a heap `Vec` and behave like the naive
/// representation. Equality and hashing see only the logical entries, so an inline
/// vector and a (hypothetical) spilled one of equal contents compare equal.
#[derive(Clone, Serialize, Deserialize)]
pub struct ClockVector {
    /// Logical number of entries (the spare inline slots beyond `len` are dead space).
    len: u32,
    /// Entry storage when `len <= INLINE_CAPACITY`.
    inline: [Timestamp; ClockVector::INLINE_CAPACITY],
    /// Entry storage when `len > INLINE_CAPACITY` — holds *all* entries; the inline
    /// array is ignored.
    spill: Vec<Timestamp>,
}

impl ClockVector {
    /// Maximum number of entries stored inline (without a heap allocation). Covers the
    /// 2–8 data-center topologies of the paper's evaluation with room to spare.
    pub const INLINE_CAPACITY: usize = 8;

    const ZERO_INLINE: [Timestamp; Self::INLINE_CAPACITY] =
        [Timestamp::ZERO; Self::INLINE_CAPACITY];

    /// Creates a vector of `num_replicas` zero entries.
    pub fn zero(num_replicas: usize) -> Self {
        if num_replicas <= Self::INLINE_CAPACITY {
            ClockVector {
                len: num_replicas as u32,
                inline: Self::ZERO_INLINE,
                spill: Vec::new(),
            }
        } else {
            ClockVector {
                len: num_replicas as u32,
                inline: Self::ZERO_INLINE,
                spill: vec![Timestamp::ZERO; num_replicas],
            }
        }
    }

    /// Creates a vector from explicit entries.
    pub fn from_entries(entries: Vec<Timestamp>) -> Self {
        if entries.len() <= Self::INLINE_CAPACITY {
            Self::from_slice(&entries)
        } else {
            ClockVector {
                len: entries.len() as u32,
                inline: Self::ZERO_INLINE,
                spill: entries,
            }
        }
    }

    /// Creates a vector by copying a slice of entries. Allocation-free for slices of up
    /// to [`INLINE_CAPACITY`](Self::INLINE_CAPACITY) entries.
    pub fn from_slice(entries: &[Timestamp]) -> Self {
        if entries.len() <= Self::INLINE_CAPACITY {
            let mut inline = Self::ZERO_INLINE;
            inline[..entries.len()].copy_from_slice(entries);
            ClockVector {
                len: entries.len() as u32,
                inline,
                spill: Vec::new(),
            }
        } else {
            ClockVector {
                len: entries.len() as u32,
                inline: Self::ZERO_INLINE,
                spill: entries.to_vec(),
            }
        }
    }

    /// Builds a vector of `len` entries from a fallible producer, short-circuiting on the
    /// first error. Allocation-free for up to [`INLINE_CAPACITY`](Self::INLINE_CAPACITY)
    /// entries — this is the wire-decode constructor: the codec reads entries straight
    /// from the input buffer into the inline array without an intermediate `Vec`.
    pub fn try_from_fn<E>(
        len: usize,
        mut f: impl FnMut(usize) -> Result<Timestamp, E>,
    ) -> Result<Self, E> {
        if len <= Self::INLINE_CAPACITY {
            let mut inline = Self::ZERO_INLINE;
            for (i, slot) in inline[..len].iter_mut().enumerate() {
                *slot = f(i)?;
            }
            Ok(ClockVector {
                len: len as u32,
                inline,
                spill: Vec::new(),
            })
        } else {
            let mut spill = Vec::with_capacity(len);
            for i in 0..len {
                spill.push(f(i)?);
            }
            Ok(ClockVector {
                len: len as u32,
                inline: Self::ZERO_INLINE,
                spill,
            })
        }
    }

    /// The logical entries as a slice.
    #[inline]
    fn entries(&self) -> &[Timestamp] {
        let n = self.len as usize;
        if n <= Self::INLINE_CAPACITY {
            &self.inline[..n]
        } else {
            &self.spill
        }
    }

    /// The logical entries as a mutable slice.
    #[inline]
    fn entries_mut(&mut self) -> &mut [Timestamp] {
        let n = self.len as usize;
        if n <= Self::INLINE_CAPACITY {
            &mut self.inline[..n]
        } else {
            &mut self.spill
        }
    }

    /// Number of entries (the number of data centers `M`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector has no entries. A zero-length vector is only meaningful in
    /// degenerate single-process tests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns entry `i`.
    #[inline]
    pub fn get(&self, replica: ReplicaId) -> Timestamp {
        self.entries()[replica.index()]
    }

    /// Sets entry `i` to exactly `ts`.
    #[inline]
    pub fn set(&mut self, replica: ReplicaId, ts: Timestamp) {
        self.entries_mut()[replica.index()] = ts;
    }

    /// Advances entry `i` to `ts` if `ts` is larger (no-op otherwise).
    #[inline]
    pub fn advance(&mut self, replica: ReplicaId, ts: Timestamp) {
        let e = &mut self.entries_mut()[replica.index()];
        if ts > *e {
            *e = ts;
        }
    }

    /// Entry-wise maximum with `other`, in place. This is the lattice *join* used by
    /// clients to accumulate dependencies (Algorithm 1, lines 4–5) and by transaction
    /// coordinators to build the snapshot vector (Algorithm 2, line 32).
    pub fn join(&mut self, other: &ClockVector) {
        assert_eq!(
            self.len(),
            other.len(),
            "clock vectors from different deployments (len {} vs {})",
            self.len(),
            other.len()
        );
        for (a, b) in self.entries_mut().iter_mut().zip(other.entries()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Returns the entry-wise maximum of `self` and `other` without mutating either.
    pub fn joined(&self, other: &ClockVector) -> ClockVector {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Entry-wise minimum with `other`, in place. This is the lattice *meet* used by the
    /// garbage-collection protocol (aggregate minimum of snapshot vectors, §IV-B) and by
    /// Cure's stabilization protocol to compute the Globally Stable Snapshot.
    pub fn meet(&mut self, other: &ClockVector) {
        assert_eq!(
            self.len(),
            other.len(),
            "clock vectors from different deployments (len {} vs {})",
            self.len(),
            other.len()
        );
        for (a, b) in self.entries_mut().iter_mut().zip(other.entries()) {
            if *b < *a {
                *a = *b;
            }
        }
    }

    /// Returns the entry-wise minimum of `self` and `other` without mutating either.
    pub fn met(&self, other: &ClockVector) -> ClockVector {
        let mut out = self.clone();
        out.meet(other);
        out
    }

    /// Whether every entry of `self` is `>=` the corresponding entry of `other`.
    pub fn dominates(&self, other: &ClockVector) -> bool {
        assert_eq!(self.len(), other.len());
        self.entries()
            .iter()
            .zip(other.entries())
            .all(|(a, b)| a >= b)
    }

    /// Whether every entry of `self` except `skip` is `>=` the corresponding entry of
    /// `other`.
    ///
    /// This is the wait condition of Algorithm 2 lines 2 and 6: the local entry `m` is
    /// skipped because dependencies on locally-originated items are trivially satisfied.
    pub fn dominates_except(&self, other: &ClockVector, skip: ReplicaId) -> bool {
        assert_eq!(self.len(), other.len());
        self.entries()
            .iter()
            .zip(other.entries())
            .enumerate()
            .all(|(i, (a, b))| i == skip.index() || a >= b)
    }

    /// Compares two vectors under the entry-wise partial order.
    pub fn partial_cmp_vector(&self, other: &ClockVector) -> VectorOrdering {
        assert_eq!(self.len(), other.len());
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.entries().iter().zip(other.entries()) {
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => VectorOrdering::Equal,
            (true, false) => VectorOrdering::Less,
            (false, true) => VectorOrdering::Greater,
            (true, true) => VectorOrdering::Concurrent,
        }
    }

    /// The maximum entry of the vector. Used by the PUT handler (Algorithm 2 line 7),
    /// which waits until the local physical clock exceeds `max(DV_c)` so that the new
    /// item's update time is larger than any of its potential dependencies.
    pub fn max_entry(&self) -> Timestamp {
        self.entries()
            .iter()
            .copied()
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// The minimum entry of the vector.
    pub fn min_entry(&self) -> Timestamp {
        self.entries()
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Iterator over `(replica, timestamp)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, Timestamp)> + '_ {
        self.entries()
            .iter()
            .enumerate()
            .map(|(i, ts)| (ReplicaId::from(i), *ts))
    }

    /// The raw entries, indexed by replica.
    pub fn as_slice(&self) -> &[Timestamp] {
        self.entries()
    }

    /// Approximate wire size of the vector in bytes (8 bytes per entry). Used by the
    /// simulator's metadata-overhead accounting.
    pub fn wire_size(&self) -> usize {
        self.len() * 8
    }
}

impl PartialEq for ClockVector {
    fn eq(&self, other: &Self) -> bool {
        self.entries() == other.entries()
    }
}

impl Eq for ClockVector {}

impl std::hash::Hash for ClockVector {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.entries().hash(state);
    }
}

impl Index<ReplicaId> for ClockVector {
    type Output = Timestamp;

    fn index(&self, index: ReplicaId) -> &Timestamp {
        &self.entries()[index.index()]
    }
}

impl fmt::Debug for ClockVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", e.as_micros())?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for ClockVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! vector_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub struct $name(pub ClockVector);

        impl $name {
            /// Creates a vector of `num_replicas` zero entries.
            pub fn zero(num_replicas: usize) -> Self {
                $name(ClockVector::zero(num_replicas))
            }

            /// Creates a vector from explicit per-replica entries.
            pub fn from_entries(entries: Vec<Timestamp>) -> Self {
                $name(ClockVector::from_entries(entries))
            }

            /// Creates a vector by copying a slice of entries (allocation-free for up to
            /// [`ClockVector::INLINE_CAPACITY`] entries).
            pub fn from_slice(entries: &[Timestamp]) -> Self {
                $name(ClockVector::from_slice(entries))
            }

            /// Number of entries (the number of data centers `M`).
            #[inline]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the vector has no entries.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Returns entry `replica`.
            #[inline]
            pub fn get(&self, replica: ReplicaId) -> Timestamp {
                self.0.get(replica)
            }

            /// Sets entry `replica` to exactly `ts`.
            #[inline]
            pub fn set(&mut self, replica: ReplicaId, ts: Timestamp) {
                self.0.set(replica, ts)
            }

            /// Advances entry `replica` to `ts` if `ts` is larger.
            #[inline]
            pub fn advance(&mut self, replica: ReplicaId, ts: Timestamp) {
                self.0.advance(replica, ts)
            }

            /// Entry-wise maximum with `other`, in place.
            pub fn join(&mut self, other: &$name) {
                self.0.join(&other.0)
            }

            /// Returns the entry-wise maximum of `self` and `other`.
            pub fn joined(&self, other: &$name) -> $name {
                $name(self.0.joined(&other.0))
            }

            /// Entry-wise minimum with `other`, in place.
            pub fn meet(&mut self, other: &$name) {
                self.0.meet(&other.0)
            }

            /// Returns the entry-wise minimum of `self` and `other`.
            pub fn met(&self, other: &$name) -> $name {
                $name(self.0.met(&other.0))
            }

            /// Whether every entry of `self` is `>=` the corresponding entry of `other`.
            pub fn dominates(&self, other: &$name) -> bool {
                self.0.dominates(&other.0)
            }

            /// Compares under the entry-wise partial order.
            pub fn partial_cmp_vector(&self, other: &$name) -> VectorOrdering {
                self.0.partial_cmp_vector(&other.0)
            }

            /// The maximum entry.
            pub fn max_entry(&self) -> Timestamp {
                self.0.max_entry()
            }

            /// The minimum entry.
            pub fn min_entry(&self) -> Timestamp {
                self.0.min_entry()
            }

            /// Iterator over `(replica, timestamp)` pairs.
            pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, Timestamp)> + '_ {
                self.0.iter()
            }

            /// The raw entries, indexed by replica.
            pub fn as_slice(&self) -> &[Timestamp] {
                self.0.as_slice()
            }

            /// Approximate wire size in bytes.
            pub fn wire_size(&self) -> usize {
                self.0.wire_size()
            }

            /// Access to the underlying [`ClockVector`].
            pub fn as_clock_vector(&self) -> &ClockVector {
                &self.0
            }
        }

        impl Index<ReplicaId> for $name {
            type Output = Timestamp;

            fn index(&self, index: ReplicaId) -> &Timestamp {
                &self.0[index]
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{:?}", stringify!($name), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl From<ClockVector> for $name {
            fn from(v: ClockVector) -> Self {
                $name(v)
            }
        }
    };
}

vector_newtype!(
    /// A server-side version vector `VV^m_n` (§IV-A).
    ///
    /// Entry `m` (the server's own data center) is the highest update timestamp of any
    /// update originated at this server; entry `i ≠ m` means the server has received every
    /// update of its partition originated at data center `i` with timestamp `<=` that value.
    VersionVector
);

vector_newtype!(
    /// A dependency vector (§IV-A), attached to item versions (`d.dv`) and maintained by
    /// clients (`DV_c`, `RDV_c`).
    ///
    /// Entry `i` is the update time of the newest item originated at data center `i` that
    /// the carrier potentially depends on. Because dependencies are tracked at data-center
    /// granularity the vector encodes *potential* dependencies: it may be coarser than the
    /// true causal history, which can only cause spurious waiting, never a consistency
    /// violation.
    DependencyVector
);

impl VersionVector {
    /// The wait condition of Algorithm 2 line 2: every entry except the local one must have
    /// reached the client's read-dependency vector.
    pub fn covers_dependencies_except_local(
        &self,
        deps: &DependencyVector,
        local: ReplicaId,
    ) -> bool {
        self.0.dominates_except(&deps.0, local)
    }

    /// Whether this version vector covers the whole dependency vector (all entries).
    /// Used by the RO-TX slice wait condition (Algorithm 2 line 40) where the snapshot
    /// vector also constrains the local entry.
    pub fn covers(&self, deps: &DependencyVector) -> bool {
        self.0.dominates(&deps.0)
    }

    /// Builds the transaction snapshot vector `TV = max(VV, RDV)` (Algorithm 2 line 32).
    pub fn snapshot_with(&self, rdv: &DependencyVector) -> DependencyVector {
        DependencyVector(self.0.joined(&rdv.0))
    }
}

impl DependencyVector {
    /// Whether an item carrying this dependency vector is *visible* under snapshot `tv`,
    /// i.e. `self <= tv` entry-wise (Algorithm 2 line 43; Cure's visibility rule).
    pub fn visible_under(&self, tv: &DependencyVector) -> bool {
        tv.0.dominates(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(entries: &[u64]) -> ClockVector {
        ClockVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    #[test]
    fn zero_vector_has_zero_entries() {
        let v = ClockVector::zero(3);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(_, ts)| ts == Timestamp::ZERO));
        assert!(!v.is_empty());
        assert!(ClockVector::zero(0).is_empty());
    }

    #[test]
    fn join_takes_entrywise_max() {
        let a = cv(&[1, 5, 3]);
        let b = cv(&[2, 4, 3]);
        assert_eq!(a.joined(&b), cv(&[2, 5, 3]));
    }

    #[test]
    fn meet_takes_entrywise_min() {
        let a = cv(&[1, 5, 3]);
        let b = cv(&[2, 4, 3]);
        assert_eq!(a.met(&b), cv(&[1, 4, 3]));
    }

    #[test]
    fn dominates_is_reflexive_and_respects_entries() {
        let a = cv(&[2, 5, 3]);
        let b = cv(&[1, 5, 3]);
        assert!(a.dominates(&a));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn dominates_except_skips_the_local_entry() {
        // Local replica is 0: its entry may lag behind the dependency vector.
        let vv = cv(&[0, 10, 10]);
        let deps = cv(&[99, 10, 9]);
        assert!(vv.dominates_except(&deps, ReplicaId(0)));
        assert!(!vv.dominates_except(&deps, ReplicaId(1)));
        assert!(!vv.dominates(&deps));
    }

    #[test]
    fn partial_order_classification() {
        let a = cv(&[1, 2, 3]);
        let b = cv(&[1, 2, 3]);
        let c = cv(&[2, 2, 3]);
        let d = cv(&[0, 9, 3]);
        assert_eq!(a.partial_cmp_vector(&b), VectorOrdering::Equal);
        assert_eq!(a.partial_cmp_vector(&c), VectorOrdering::Less);
        assert_eq!(c.partial_cmp_vector(&a), VectorOrdering::Greater);
        assert_eq!(a.partial_cmp_vector(&d), VectorOrdering::Concurrent);
    }

    #[test]
    fn max_and_min_entry() {
        let a = cv(&[4, 9, 1]);
        assert_eq!(a.max_entry(), Timestamp(9));
        assert_eq!(a.min_entry(), Timestamp(1));
        assert_eq!(ClockVector::zero(0).max_entry(), Timestamp::ZERO);
    }

    #[test]
    fn advance_only_moves_forward() {
        let mut a = cv(&[4, 9, 1]);
        a.advance(ReplicaId(0), Timestamp(2));
        assert_eq!(a.get(ReplicaId(0)), Timestamp(4));
        a.advance(ReplicaId(0), Timestamp(7));
        assert_eq!(a.get(ReplicaId(0)), Timestamp(7));
    }

    #[test]
    #[should_panic(expected = "different deployments")]
    fn join_panics_on_length_mismatch() {
        let mut a = cv(&[1, 2]);
        a.join(&cv(&[1, 2, 3]));
    }

    #[test]
    fn version_vector_wait_condition_matches_paper() {
        // Server in DC 1 has VV = [10, 50, 20]; client read-depends on [15, 99, 20].
        // Entry 1 is local so it is skipped; entry 0 (15 > 10) is not covered -> must wait.
        let vv = VersionVector::from_entries(vec![Timestamp(10), Timestamp(50), Timestamp(20)]);
        let rdv = DependencyVector::from_entries(vec![Timestamp(15), Timestamp(99), Timestamp(20)]);
        assert!(!vv.covers_dependencies_except_local(&rdv, ReplicaId(1)));
        // Once the server receives the missing remote update, the condition passes.
        let vv2 = VersionVector::from_entries(vec![Timestamp(15), Timestamp(50), Timestamp(20)]);
        assert!(vv2.covers_dependencies_except_local(&rdv, ReplicaId(1)));
    }

    #[test]
    fn snapshot_vector_is_join_of_vv_and_rdv() {
        let vv = VersionVector::from_entries(vec![Timestamp(10), Timestamp(50), Timestamp(20)]);
        let rdv = DependencyVector::from_entries(vec![Timestamp(15), Timestamp(40), Timestamp(20)]);
        let tv = vv.snapshot_with(&rdv);
        assert_eq!(
            tv,
            DependencyVector::from_entries(vec![Timestamp(15), Timestamp(50), Timestamp(20)])
        );
    }

    #[test]
    fn visibility_under_snapshot() {
        let tv = DependencyVector::from_entries(vec![Timestamp(15), Timestamp(50), Timestamp(20)]);
        let dv_ok =
            DependencyVector::from_entries(vec![Timestamp(15), Timestamp(50), Timestamp(19)]);
        let dv_bad =
            DependencyVector::from_entries(vec![Timestamp(16), Timestamp(0), Timestamp(0)]);
        assert!(dv_ok.visible_under(&tv));
        assert!(!dv_bad.visible_under(&tv));
    }

    #[test]
    fn wire_size_is_linear_in_replicas() {
        assert_eq!(ClockVector::zero(3).wire_size(), 24);
        assert_eq!(DependencyVector::zero(5).wire_size(), 40);
    }

    #[test]
    fn spilled_vectors_behave_like_inline_ones() {
        // 12 entries > INLINE_CAPACITY: the spill path must be semantically identical.
        let n = ClockVector::INLINE_CAPACITY + 4;
        let a = ClockVector::from_entries((0..n as u64).map(Timestamp).collect());
        let b = ClockVector::from_slice(a.as_slice());
        assert_eq!(a, b);
        assert_eq!(a.len(), n);
        assert_eq!(a.get(ReplicaId(11)), Timestamp(11));
        assert_eq!(a.max_entry(), Timestamp(11));

        let mut j = ClockVector::zero(n);
        j.join(&a);
        assert_eq!(j, a);
        j.advance(ReplicaId(0), Timestamp(99));
        assert_eq!(j.get(ReplicaId(0)), Timestamp(99));
        assert!(j.dominates(&a));
    }

    #[test]
    fn from_slice_matches_from_entries() {
        for n in [0usize, 1, 3, 8, 9, 17] {
            let entries: Vec<Timestamp> = (0..n as u64).map(Timestamp).collect();
            let a = ClockVector::from_slice(&entries);
            let b = ClockVector::from_entries(entries);
            assert_eq!(a, b);
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn try_from_fn_builds_and_short_circuits() {
        let v = ClockVector::try_from_fn::<()>(3, |i| Ok(Timestamp(i as u64 * 10))).unwrap();
        assert_eq!(v, cv(&[0, 10, 20]));

        let mut calls = 0;
        let err = ClockVector::try_from_fn(10, |i| {
            calls += 1;
            if i == 2 {
                Err("boom")
            } else {
                Ok(Timestamp::ZERO)
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(calls, 3, "must stop at the first error");
    }

    #[test]
    fn equality_and_hash_see_only_logical_entries() {
        use std::collections::HashSet;
        let a = ClockVector::from_slice(&[Timestamp(1), Timestamp(2)]);
        let mut b = ClockVector::zero(2);
        b.set(ReplicaId(0), Timestamp(1));
        b.set(ReplicaId(1), Timestamp(2));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn debug_format_lists_entries() {
        let v = cv(&[1, 2]);
        assert_eq!(format!("{v:?}"), "[1, 2]");
        let dv = DependencyVector::from_entries(vec![Timestamp(1)]);
        assert!(format!("{dv:?}").starts_with("DependencyVector"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vector(len: usize) -> impl Strategy<Value = ClockVector> {
        proptest::collection::vec(0u64..1_000_000, len)
            .prop_map(|v| ClockVector::from_entries(v.into_iter().map(Timestamp).collect()))
    }

    proptest! {
        #[test]
        fn prop_join_is_least_upper_bound(a in arb_vector(4), b in arb_vector(4)) {
            let j = a.joined(&b);
            prop_assert!(j.dominates(&a));
            prop_assert!(j.dominates(&b));
            // Least: any other upper bound dominates the join.
            let ub = a.joined(&b).joined(&a);
            prop_assert!(ub.dominates(&j));
        }

        #[test]
        fn prop_join_commutative_associative_idempotent(
            a in arb_vector(3), b in arb_vector(3), c in arb_vector(3)
        ) {
            prop_assert_eq!(a.joined(&b), b.joined(&a));
            prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
            prop_assert_eq!(a.joined(&a), a.clone());
        }

        #[test]
        fn prop_meet_is_greatest_lower_bound(a in arb_vector(4), b in arb_vector(4)) {
            let m = a.met(&b);
            prop_assert!(a.dominates(&m));
            prop_assert!(b.dominates(&m));
        }

        #[test]
        fn prop_absorption_laws(a in arb_vector(3), b in arb_vector(3)) {
            prop_assert_eq!(a.joined(&a.met(&b)), a.clone());
            prop_assert_eq!(a.met(&a.joined(&b)), a.clone());
        }

        #[test]
        fn prop_partial_order_consistent_with_dominates(a in arb_vector(3), b in arb_vector(3)) {
            match a.partial_cmp_vector(&b) {
                VectorOrdering::Equal => {
                    prop_assert!(a.dominates(&b) && b.dominates(&a));
                }
                VectorOrdering::Less => {
                    prop_assert!(b.dominates(&a) && !a.dominates(&b));
                }
                VectorOrdering::Greater => {
                    prop_assert!(a.dominates(&b) && !b.dominates(&a));
                }
                VectorOrdering::Concurrent => {
                    prop_assert!(!a.dominates(&b) && !b.dominates(&a));
                }
            }
        }

        #[test]
        fn prop_dominates_except_weaker_than_dominates(
            a in arb_vector(3), b in arb_vector(3), skip in 0usize..3
        ) {
            if a.dominates(&b) {
                prop_assert!(a.dominates_except(&b, ReplicaId::from(skip)));
            }
        }
    }
}
