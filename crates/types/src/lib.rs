//! Core data types shared by every crate of the POCC reproduction.
//!
//! This crate defines the vocabulary of the system described in
//! *"Optimistic Causal Consistency for Geo-Replicated Key-Value Stores"*
//! (Spirovska, Didona, Zwaenepoel — ICDCS 2017):
//!
//! * identifiers for data centers ([`ReplicaId`]), partitions ([`PartitionId`]),
//!   servers ([`ServerId`]) and clients ([`ClientId`]),
//! * physical [`Timestamp`]s,
//! * the dependency metadata of the protocol: [`VersionVector`] (server side) and
//!   [`DependencyVector`] (item / client side),
//! * multi-versioned item versions ([`Version`]) carrying the tuple
//!   `⟨key, value, source-replica, update-time, dependency-vector⟩` from §IV-A of the paper,
//! * the shared [`Config`] describing a deployment (number of DCs, partitions, timing knobs),
//! * the common [`Error`] type.
//!
//! All types are plain data with no I/O; the protocol crates
//! (`pocc-protocol`, `pocc-cure`, `pocc-ha`) and the substrates
//! (`pocc-storage`, `pocc-net`, `pocc-sim`, `pocc-runtime`) build on top of them.
//!
//! # Example
//!
//! Dependency vectors are the protocol's causality metadata: entry `i` is the update
//! time of the newest item from data center `i` an observer may depend on.
//!
//! ```
//! use pocc_types::{Config, DependencyVector, Key, ReplicaId, Timestamp, Value, Version};
//!
//! // A deployment: 3 data centers, 8 partitions, 4 storage shards per partition.
//! let config = Config::builder()
//!     .num_replicas(3)
//!     .num_partitions(8)
//!     .storage_shards(4)
//!     .build()
//!     .unwrap();
//! assert_eq!(config.num_servers(), 24);
//!
//! // A version is the tuple <key, value, source replica, update time, deps> (§IV-A).
//! let deps = DependencyVector::from_entries(vec![Timestamp(5), Timestamp(0), Timestamp(0)]);
//! let version = Version::new(Key(1), Value::from("v"), ReplicaId(1), Timestamp(9), deps);
//!
//! // Visibility under a snapshot is an entry-wise vector comparison.
//! let snapshot = DependencyVector::from_entries(vec![Timestamp(7), Timestamp(9), Timestamp(0)]);
//! assert!(version.visible_under(&snapshot));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod item;
pub mod timestamp;
pub mod vector;

pub use config::{Config, ConfigBuilder, LatencyMatrix};
pub use error::{Error, Result};
pub use ids::{ClientId, PartitionId, ReplicaId, ServerId};
pub use item::{Key, Value, Version};
pub use timestamp::Timestamp;
pub use vector::{ClockVector, DependencyVector, VectorOrdering, VersionVector};
