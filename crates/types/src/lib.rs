//! Core data types shared by every crate of the POCC reproduction.
//!
//! This crate defines the vocabulary of the system described in
//! *"Optimistic Causal Consistency for Geo-Replicated Key-Value Stores"*
//! (Spirovska, Didona, Zwaenepoel — ICDCS 2017):
//!
//! * identifiers for data centers ([`ReplicaId`]), partitions ([`PartitionId`]),
//!   servers ([`ServerId`]) and clients ([`ClientId`]),
//! * physical [`Timestamp`]s,
//! * the dependency metadata of the protocol: [`VersionVector`] (server side) and
//!   [`DependencyVector`] (item / client side),
//! * multi-versioned item versions ([`Version`]) carrying the tuple
//!   `⟨key, value, source-replica, update-time, dependency-vector⟩` from §IV-A of the paper,
//! * the shared [`Config`] describing a deployment (number of DCs, partitions, timing knobs),
//! * the common [`Error`] type.
//!
//! All types are plain data with no I/O; the protocol crates
//! (`pocc-protocol`, `pocc-cure`, `pocc-ha`) and the substrates
//! (`pocc-storage`, `pocc-net`, `pocc-sim`, `pocc-runtime`) build on top of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod item;
pub mod timestamp;
pub mod vector;

pub use config::{Config, ConfigBuilder, LatencyMatrix};
pub use error::{Error, Result};
pub use ids::{ClientId, PartitionId, ReplicaId, ServerId};
pub use item::{Key, Value, Version};
pub use timestamp::Timestamp;
pub use vector::{DependencyVector, VectorOrdering, VersionVector};
