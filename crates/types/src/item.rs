//! Keys, values and multi-versioned item versions.
//!
//! An item version (§IV-A) is the tuple `⟨k, v, sr, ut, dv⟩`:
//! key, value, source replica, update time, dependency vector. Versions of the same key
//! are totally ordered by the last-writer-wins rule: highest update timestamp wins, ties
//! broken by the lowest source-replica id (§IV-B).

use crate::{DependencyVector, ReplicaId, Timestamp};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A key of the key-value store.
///
/// The evaluation of the paper uses small 8-byte keys; the reproduction represents a key
/// as a `u64` for compactness and cheap hashing, with a helper to render it as the 8-byte
/// string it stands for.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Key(pub u64);

impl Key {
    /// Creates a key from its numeric representation.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Key(raw)
    }

    /// The raw numeric representation.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The key as 8 big-endian bytes (the wire representation; 8-byte keys as in §V-A).
    #[inline]
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Parses a key from its 8-byte wire representation.
    #[inline]
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        Key(u64::from_be_bytes(bytes))
    }
}

impl From<u64> for Key {
    fn from(raw: u64) -> Self {
        Key(raw)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A value stored by the key-value store: an opaque byte string.
///
/// Values are reference-counted ([`Bytes`]) so that multi-version storage, replication
/// messages and client replies can share the same allocation.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(pub Bytes);

impl Value {
    /// An empty value.
    pub fn empty() -> Self {
        Value(Bytes::new())
    }

    /// Creates a value by copying the given bytes.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(data))
    }

    /// Length of the value in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value as a byte slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for Value {
    fn from(data: &[u8]) -> Self {
        Value::copy_from_slice(data)
    }
}

impl From<Vec<u8>> for Value {
    fn from(data: Vec<u8>) -> Self {
        Value(Bytes::from(data))
    }
}

impl From<&str> for Value {
    fn from(data: &str) -> Self {
        Value(Bytes::copy_from_slice(data.as_bytes()))
    }
}

impl From<u64> for Value {
    fn from(data: u64) -> Self {
        Value(Bytes::copy_from_slice(&data.to_be_bytes()))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Value({s:?})"),
            _ => write!(f, "Value({} bytes)", self.0.len()),
        }
    }
}

/// A version of an item: the tuple `⟨k, v, sr, ut, dv⟩` of §IV-A.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Version {
    /// The key this version belongs to.
    pub key: Key,
    /// The value written by the PUT that created this version.
    pub value: Value,
    /// The source replica: the data center where this version was created.
    pub source_replica: ReplicaId,
    /// The update time: the physical timestamp assigned by the creating server.
    pub update_time: Timestamp,
    /// The dependency vector: entry `i` is the update time of the newest item originated
    /// at data center `i` that this version potentially depends on.
    pub deps: DependencyVector,
}

impl Version {
    /// Creates a new version.
    pub fn new(
        key: Key,
        value: Value,
        source_replica: ReplicaId,
        update_time: Timestamp,
        deps: DependencyVector,
    ) -> Self {
        Version {
            key,
            value,
            source_replica,
            update_time,
            deps,
        }
    }

    /// Last-writer-wins ordering (§IV-B): higher update timestamp wins; ties are broken by
    /// the *lowest* source-replica id, i.e. the version from the lower replica is
    /// considered "later" and wins.
    ///
    /// Returns [`Ordering::Greater`] when `self` wins over `other`.
    pub fn lww_cmp(&self, other: &Version) -> Ordering {
        self.update_time
            .cmp(&other.update_time)
            // On a timestamp tie the lower source replica wins, so it must compare Greater:
            // reverse the natural ordering of the replica ids.
            .then_with(|| other.source_replica.cmp(&self.source_replica))
    }

    /// Whether `self` wins over `other` under the last-writer-wins rule.
    pub fn wins_over(&self, other: &Version) -> bool {
        self.lww_cmp(other) == Ordering::Greater
    }

    /// Whether this version is *visible* under snapshot vector `tv`
    /// (its dependency vector is entry-wise `<=` `tv`).
    pub fn visible_under(&self, tv: &DependencyVector) -> bool {
        self.deps.visible_under(tv)
    }

    /// Approximate wire size of the version in bytes: key + value + source replica +
    /// update time + dependency vector. Used for metadata-overhead accounting.
    pub fn wire_size(&self) -> usize {
        8 + self.value.len() + 2 + 8 + self.deps.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn version(ut: u64, sr: u16) -> Version {
        Version::new(
            Key(1),
            Value::from("x"),
            ReplicaId(sr),
            Timestamp(ut),
            DependencyVector::zero(3),
        )
    }

    #[test]
    fn key_byte_round_trip() {
        let k = Key(0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(Key::from_bytes(k.to_bytes()), k);
        assert_eq!(k.raw(), 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn value_constructors_agree() {
        assert_eq!(Value::from("ab").as_slice(), b"ab");
        assert_eq!(Value::from(vec![1u8, 2]).as_slice(), &[1, 2]);
        assert_eq!(Value::copy_from_slice(&[3, 4]).len(), 2);
        assert!(Value::empty().is_empty());
        assert_eq!(Value::from(258u64).as_slice(), &[0, 0, 0, 0, 0, 0, 1, 2]);
    }

    #[test]
    fn value_debug_shows_text_when_printable() {
        assert_eq!(format!("{:?}", Value::from("hi")), "Value(\"hi\")");
        assert_eq!(format!("{:?}", Value::from(vec![0u8, 1])), "Value(2 bytes)");
    }

    #[test]
    fn lww_prefers_higher_timestamp() {
        let old = version(10, 0);
        let new = version(20, 2);
        assert!(new.wins_over(&old));
        assert!(!old.wins_over(&new));
        assert_eq!(new.lww_cmp(&old), Ordering::Greater);
    }

    #[test]
    fn lww_breaks_ties_by_lowest_replica() {
        let a = version(10, 0);
        let b = version(10, 2);
        // Same timestamp: the version from the lower replica id wins.
        assert!(a.wins_over(&b));
        assert!(!b.wins_over(&a));
    }

    #[test]
    fn lww_is_antisymmetric_for_distinct_versions() {
        let a = version(10, 0);
        let b = version(11, 1);
        assert_eq!(a.lww_cmp(&b), b.lww_cmp(&a).reverse());
    }

    #[test]
    fn identical_versions_compare_equal() {
        let a = version(10, 1);
        let b = version(10, 1);
        assert_eq!(a.lww_cmp(&b), Ordering::Equal);
        assert!(!a.wins_over(&b));
    }

    #[test]
    fn visibility_follows_dependency_vector() {
        let mut v = version(10, 0);
        v.deps = DependencyVector::from_entries(vec![Timestamp(5), Timestamp(0), Timestamp(0)]);
        let tv_ok = DependencyVector::from_entries(vec![Timestamp(5), Timestamp(1), Timestamp(0)]);
        let tv_bad = DependencyVector::from_entries(vec![Timestamp(4), Timestamp(9), Timestamp(9)]);
        assert!(v.visible_under(&tv_ok));
        assert!(!v.visible_under(&tv_bad));
    }

    #[test]
    fn wire_size_accounts_for_all_fields() {
        let v = version(10, 0);
        // key(8) + value(1) + sr(2) + ut(8) + dv(3*8)
        assert_eq!(v.wire_size(), 8 + 1 + 2 + 8 + 24);
    }
}
