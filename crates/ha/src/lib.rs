//! HA-POCC — the highly available variant of POCC (§III-B and §IV-C of the paper).
//!
//! Plain POCC trades availability for data freshness: a request whose dependencies are
//! stuck behind a network partition blocks until the partition heals. The paper sketches a
//! recovery procedure (following Brewer's three-phase structure for breaching the CAP
//! boundaries) that the authors leave unevaluated; this crate implements it:
//!
//! 1. **Detect** — a server notices that requests have been blocked longer than the
//!    partition-detection timeout (plain POCC already aborts those sessions), or that a
//!    sibling replica has stopped sending replication traffic and heartbeats.
//! 2. **Degrade** — the server switches to *pessimistic mode*: reads return only versions
//!    covered by a Cure-style Globally Stable Snapshot (computed by a stabilization
//!    protocol that HA-POCC runs infrequently during normal operation precisely so that
//!    this fall-back is possible), writes no longer wait for their dependencies, and
//!    read-only transaction snapshots are bounded by the GSS instead of the version
//!    vector. No operation ever blocks in this mode, so availability is restored at the
//!    cost of staleness — exactly the trade-off a pessimistic protocol makes all the time.
//! 3. **Recover** — when replication traffic from every data center resumes, the server
//!    promotes itself back to optimistic mode.
//!
//! The module also provides [`HaSession`], a client-side helper that re-initialises the
//! session after a `SessionAborted` reply, mirroring the client side of the recovery
//! procedure (the re-initialised session loses its dependency history, which is the
//! data-visibility cost the paper discusses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod session;

pub use server::{HaPoccServer, HaPolicy, Mode};
pub use session::HaSession;
