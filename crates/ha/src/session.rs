//! Client-side session management for HA-POCC.

use pocc_proto::{ClientReply, ClientRequest, ProtocolClient};
use pocc_protocol::Client;
use pocc_types::{ClientId, Key, Result, ServerId, Value};

/// A client session that survives server-initiated aborts.
///
/// When a POCC server suspects a network partition it closes the sessions of blocked
/// clients (§III-B). The application-visible consequence is a [`ClientReply::SessionAborted`]
/// reply; the recovery procedure asks the client to re-initialise its session, losing the
/// dependency history accumulated so far (and therefore possibly no longer seeing versions
/// it previously read or wrote — an anomaly that is also possible under a plain pessimistic
/// protocol when a client fails over to another data center).
///
/// `HaSession` wraps [`Client`] and performs this re-initialisation automatically, counting
/// how often it happened so applications and benchmarks can report it.
#[derive(Clone, Debug)]
pub struct HaSession {
    client: Client,
    reinitializations: u64,
}

impl HaSession {
    /// Creates a session for `id` attached to `home` in a deployment of `num_replicas`
    /// data centers.
    pub fn new(id: ClientId, home: ServerId, num_replicas: usize) -> Self {
        HaSession {
            client: Client::new(id, home, num_replicas),
            reinitializations: 0,
        }
    }

    /// The wrapped protocol client.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// How many times the session has been re-initialised after a server-side abort.
    pub fn reinitializations(&self) -> u64 {
        self.reinitializations
    }

    /// Builds a GET request.
    pub fn get(&self, key: Key) -> ClientRequest {
        self.client.get(key)
    }

    /// Builds a PUT request.
    pub fn put(&self, key: Key, value: Value) -> ClientRequest {
        self.client.put(key, value)
    }

    /// Builds a RO-TX request.
    pub fn ro_tx(&self, keys: Vec<Key>) -> ClientRequest {
        self.client.ro_tx(keys)
    }

    /// The client id of this session.
    pub fn client_id(&self) -> ClientId {
        self.client.client_id()
    }

    /// Folds a reply into the session. Unlike [`Client::process_reply`], a
    /// `SessionAborted` reply is absorbed: the session is re-initialised and `Ok(())` is
    /// returned, with [`HaSession::reinitializations`] incremented.
    pub fn process_reply(&mut self, reply: &ClientReply) -> Result<()> {
        match self.client.process_reply(reply) {
            Ok(()) => Ok(()),
            Err(pocc_types::Error::SessionAborted { .. }) => {
                self.client.reinitialize();
                self.reinitializations += 1;
                Ok(())
            }
            Err(other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_proto::GetResponse;
    use pocc_types::{DependencyVector, ReplicaId, Timestamp};

    fn session() -> HaSession {
        HaSession::new(ClientId(1), ServerId::new(0u16, 0u32), 3)
    }

    #[test]
    fn normal_replies_are_delegated_to_the_client() {
        let mut s = session();
        let resp = GetResponse {
            value: Some(Value::from("v")),
            update_time: Timestamp(10),
            deps: DependencyVector::zero(3),
            source_replica: ReplicaId(1),
        };
        s.process_reply(&ClientReply::Get(resp)).unwrap();
        assert_eq!(
            s.client().dependency_vector().get(ReplicaId(1)),
            Timestamp(10)
        );
        assert_eq!(s.reinitializations(), 0);
    }

    #[test]
    fn aborts_reinitialize_the_session_and_drop_dependencies() {
        let mut s = session();
        s.process_reply(&ClientReply::Put {
            update_time: Timestamp(99),
        })
        .unwrap();
        assert_eq!(
            s.client().dependency_vector().get(ReplicaId(0)),
            Timestamp(99)
        );
        s.process_reply(&ClientReply::SessionAborted {
            reason: "partition".into(),
        })
        .unwrap();
        assert_eq!(s.reinitializations(), 1);
        assert_eq!(
            s.client().dependency_vector().get(ReplicaId(0)),
            Timestamp::ZERO
        );
        // The session keeps working after re-initialisation.
        let req = s.get(Key(1));
        assert!(matches!(req, ClientRequest::Get { .. }));
        assert_eq!(s.client_id(), ClientId(1));
    }

    #[test]
    fn request_builders_delegate() {
        let s = session();
        assert!(matches!(
            s.put(Key(1), Value::from("x")),
            ClientRequest::Put { .. }
        ));
        assert!(matches!(s.ro_tx(vec![Key(1)]), ClientRequest::RoTx { .. }));
    }
}
