//! The HA-POCC server as a visibility policy over the shared protocol engine: POCC plus
//! partition detection, pessimistic fall-back and recovery.

use pocc_clock::Clock;
use pocc_engine::{EngineCore, ProtocolEngine, VisibilityPolicy};
use pocc_proto::{
    ClientReply, ClientRequest, MetricsSnapshot, ServerMessage, ServerOutput, TxId, TxItem,
};
use pocc_protocol::PoccPolicy;
use pocc_storage::{partition_for_key, ShardedStore};
use pocc_types::{ClientId, Config, DependencyVector, Key, ServerId, Timestamp, VersionVector};
use std::collections::{HashMap, HashSet};

/// Transaction ids coordinated by the HA layer (pessimistic mode) live in a disjoint id
/// space from the ids used by the wrapped optimistic machinery, so that slice responses
/// can be routed to the right coordinator.
const HA_TX_BIT: u64 = 1 << 63;

/// The operating mode of an HA-POCC server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Normal operation: requests are served by the optimistic protocol (plain POCC).
    Optimistic,
    /// A network partition is suspected: reads are served pessimistically from the
    /// Globally Stable Snapshot, writes do not wait for dependencies, transactions are
    /// bounded by the GSS. No operation blocks in this mode.
    Pessimistic {
        /// When the server entered pessimistic mode (server clock).
        since: Timestamp,
    },
}

impl Mode {
    /// Whether the server is currently running the pessimistic fall-back protocol.
    pub fn is_pessimistic(&self) -> bool {
        matches!(self, Mode::Pessimistic { .. })
    }
}

/// State of a read-only transaction coordinated in pessimistic mode.
#[derive(Clone, Debug)]
struct HaTxState {
    client: ClientId,
    outstanding_slices: usize,
    items: Vec<TxItem>,
}

/// The highly available visibility policy (§III-B and §IV-C): the optimistic POCC policy
/// augmented with an infrequent stabilization protocol, a partition detector, a
/// pessimistic fall-back mode and automatic promotion back to optimistic operation.
#[derive(Debug)]
pub struct HaPolicy {
    /// The optimistic protocol served during normal operation.
    pocc: PoccPolicy,
    mode: Mode,
    mode_switches: u64,

    /// Partition detector state: the last time each remote replica's entry of the version
    /// vector advanced.
    last_remote_advance: Vec<Timestamp>,
    prev_vv: VersionVector,
    /// `sessions_aborted` at the last tick, to detect new aborts.
    aborted_seen: u64,

    /// Read-only transactions coordinated by the HA layer (pessimistic mode only).
    ha_txs: HashMap<TxId, HaTxState>,
    next_ha_tx: u64,
    /// Clients that issued requests while the server was optimistic. Their sessions are
    /// closed at their first request after a switch to pessimistic mode, because the
    /// pessimistic protocol cannot honour dependencies on unstable items they may have
    /// observed (§III-B: "it closes the session with c").
    optimistic_clients: HashSet<ClientId>,
    put_wait_configured: bool,
}

impl HaPolicy {
    /// Creates the policy in optimistic mode, with every timeout armed at `now`.
    pub fn new(config: &Config, now: Timestamp) -> Self {
        HaPolicy {
            pocc: PoccPolicy,
            mode: Mode::Optimistic,
            mode_switches: 0,
            last_remote_advance: vec![now; config.num_replicas],
            prev_vv: VersionVector::zero(config.num_replicas),
            aborted_seen: 0,
            ha_txs: HashMap::new(),
            next_ha_tx: 0,
            optimistic_clients: HashSet::new(),
            put_wait_configured: config.put_waits_for_dependencies,
        }
    }

    fn enter_pessimistic<C: Clock>(&mut self, core: &mut EngineCore<C>) {
        if self.mode.is_pessimistic() {
            return;
        }
        self.mode = Mode::Pessimistic {
            since: core.clock.now(),
        };
        self.mode_switches += 1;
        // Writes must not block during the partition.
        core.config.put_waits_for_dependencies = false;
    }

    fn enter_optimistic<C: Clock>(&mut self, core: &mut EngineCore<C>) {
        if !self.mode.is_pessimistic() {
            return;
        }
        self.mode = Mode::Optimistic;
        self.mode_switches += 1;
        core.config.put_waits_for_dependencies = self.put_wait_configured;
    }

    // -----------------------------------------------------------------------------------
    // Pessimistic operation handlers
    // -----------------------------------------------------------------------------------

    /// Whether a client carrying these dependencies can be served by the pessimistic
    /// protocol without violating its session history: every *remote* dependency must be
    /// covered by the Globally Stable Snapshot (dependencies on local items are always
    /// satisfiable, as in Cure).
    ///
    /// Clients that established dependencies on unstable items while the server was still
    /// optimistic fail this check; their session is closed, exactly as the recovery
    /// procedure of §III-B prescribes (the client re-initialises and continues
    /// pessimistically, possibly no longer seeing some versions it read before).
    fn serveable_pessimistically<C: Clock>(
        &self,
        core: &EngineCore<C>,
        deps: &DependencyVector,
    ) -> bool {
        let local = core.id.replica;
        deps.iter()
            .all(|(replica, ts)| replica == local || ts <= core.gss.get(replica))
    }

    /// Closes the session of a client whose optimistic-era dependencies cannot be served
    /// by the pessimistic fall-back.
    fn abort_session<C: Clock>(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
    ) -> ServerOutput {
        core.metrics.sessions_aborted += 1;
        ServerOutput::reply(
            client,
            ClientReply::SessionAborted {
                reason: "optimistic dependencies cannot be served during the partition; \
                         re-initialise the session"
                    .into(),
            },
        )
    }

    /// A pessimistic GET: the freshest version visible under the GSS (local versions are
    /// always visible, as in Cure). Never blocks.
    fn pessimistic_get<C: Clock>(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        key: Key,
    ) -> ServerOutput {
        let outcome = core.store.latest_stable(key, &core.gss, core.id.replica);
        core.metrics.gets_served += 1;
        if outcome.is_old() {
            core.metrics.old_gets += 1;
            core.metrics.fresher_versions_sum += outcome.stats.fresher_than_returned as u64;
        }
        let response = core.response_for(outcome.version.as_ref());
        ServerOutput::reply(client, ClientReply::Get(response))
    }

    /// A pessimistic read-only transaction: the snapshot is bounded by the GSS (plus the
    /// client's session history and the coordinator's local clock entry), so participant
    /// slices never wait for remote replication.
    ///
    /// This deliberately does *not* reuse [`EngineCore::start_ro_tx`]: pessimistic-mode
    /// transactions live in a disjoint tx-id space (`HA_TX_BIT`), must never be aborted
    /// by the partition-detection timeout (the partition is exactly when they run), and
    /// must not hold back the GC lower bound of the optimistic machinery.
    fn pessimistic_ro_tx<C: Clock>(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        keys: Vec<Key>,
        rdv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if keys.is_empty() {
            core.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                client,
                ClientReply::RoTx { items: Vec::new() },
            ));
            return;
        }
        let id = core.id;
        let mut snapshot = core.gss.joined(&rdv);
        snapshot.advance(id.replica, core.vv.get(id.replica));

        let mut by_partition: HashMap<pocc_types::PartitionId, Vec<Key>> = HashMap::new();
        for key in keys {
            by_partition
                .entry(partition_for_key(key, core.config.num_partitions))
                .or_default()
                .push(key);
        }

        let tx = TxId(HA_TX_BIT | self.next_ha_tx);
        self.next_ha_tx += 1;
        self.ha_txs.insert(
            tx,
            HaTxState {
                client,
                outstanding_slices: by_partition.len(),
                items: Vec::new(),
            },
        );

        // Deterministic fan-out order (HashMap iteration order is randomised per process).
        let mut groups: Vec<_> = by_partition.into_iter().collect();
        groups.sort_by_key(|(partition, _)| *partition);
        let mut local_keys = None;
        for (partition, keys) in groups {
            if partition == id.partition {
                local_keys = Some(keys);
            } else {
                core.metrics.bytes_sent += (keys.len() * 8 + snapshot.wire_size()) as u64;
                outputs.push(ServerOutput::send(
                    id.local_peer(partition),
                    ServerMessage::SliceRequest {
                        tx,
                        client,
                        keys,
                        snapshot: snapshot.clone(),
                    },
                ));
            }
        }
        if let Some(keys) = local_keys {
            match self.read_local_slice(core, &keys, &snapshot) {
                Some(items) => self.complete_ha_slice(&mut core.metrics, tx, items, outputs),
                None => self.abort_ha_tx(&mut core.metrics, tx, outputs),
            }
        }
    }

    /// Reads a slice of a pessimistic transaction against the local store. Returns `None`
    /// when garbage collection may have removed the version the snapshot needs for one of
    /// the keys (see [`EngineCore::read_slice`]) — the transaction must abort.
    fn read_local_slice<C: Clock>(
        &mut self,
        core: &mut EngineCore<C>,
        keys: &[Key],
        snapshot: &DependencyVector,
    ) -> Option<Vec<TxItem>> {
        let mut items = Vec::with_capacity(keys.len());
        for &key in keys {
            let outcome = core.store.latest_in_snapshot(key, snapshot);
            if outcome.version.is_none() && core.store.snapshot_may_predate_gc(key, snapshot) {
                return None;
            }
            core.metrics.tx_items_returned += 1;
            if outcome.is_old() {
                core.metrics.old_tx_items += 1;
            }
            let response = core.response_for(outcome.version.as_ref());
            items.push(TxItem { key, response });
        }
        Some(items)
    }

    /// Aborts a pessimistic-mode transaction whose snapshot preceded garbage collection
    /// on a participant, closing the client session. Late aborts are ignored.
    fn abort_ha_tx(
        &mut self,
        metrics: &mut MetricsSnapshot,
        tx: TxId,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if let Some(state) = self.ha_txs.remove(&tx) {
            metrics.sessions_aborted += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::SessionAborted {
                    reason: "transaction snapshot preceded garbage collection".into(),
                },
            ));
        }
    }

    fn complete_ha_slice(
        &mut self,
        metrics: &mut MetricsSnapshot,
        tx: TxId,
        items: Vec<TxItem>,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let finished = {
            let Some(state) = self.ha_txs.get_mut(&tx) else {
                return;
            };
            state.items.extend(items);
            state.outstanding_slices = state.outstanding_slices.saturating_sub(1);
            state.outstanding_slices == 0
        };
        if finished {
            let state = self.ha_txs.remove(&tx).expect("tx present");
            metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::RoTx { items: state.items },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Detection and recovery
    // -----------------------------------------------------------------------------------

    /// Updates the partition detector, possibly switching modes.
    fn detect_and_recover<C: Clock>(&mut self, core: &mut EngineCore<C>, now: Timestamp) {
        let vv = core.vv.clone();
        let local = core.id.replica;
        for (replica, ts) in vv.iter() {
            if replica != local && ts > self.prev_vv.get(replica) {
                self.last_remote_advance[replica.index()] = now;
            }
        }
        self.prev_vv = vv;

        // Detection signal 1: a blocked session was aborted (only the optimistic
        // machinery aborts sessions while the server is in optimistic mode).
        let aborted = core.metrics.sessions_aborted;
        let new_aborts = aborted > self.aborted_seen;
        self.aborted_seen = aborted;

        // Detection signal 2: a remote replica has been silent (no updates, no heartbeats)
        // for longer than the partition-detection timeout.
        let silent_replica = self
            .last_remote_advance
            .iter()
            .enumerate()
            .any(|(i, last)| {
                i != local.index()
                    && now.saturating_since(*last) >= core.config.partition_detection_timeout
            });

        match self.mode {
            Mode::Optimistic => {
                if new_aborts || silent_replica {
                    self.enter_pessimistic(core);
                }
            }
            Mode::Pessimistic { since } => {
                // Recovery: every remote replica has been heard from recently and the
                // server has spent at least one detection period in pessimistic mode (to
                // avoid flapping).
                let healthy_window = core.config.heartbeat_interval * 8;
                let all_healthy = self
                    .last_remote_advance
                    .iter()
                    .enumerate()
                    .all(|(i, last)| {
                        i == local.index() || now.saturating_since(*last) <= healthy_window
                    });
                let settled =
                    now.saturating_since(since) >= core.config.partition_detection_timeout;
                if all_healthy && settled && !silent_replica {
                    self.enter_optimistic(core);
                }
            }
        }
    }
}

impl<C: Clock> VisibilityPolicy<C> for HaPolicy {
    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        if !self.mode.is_pessimistic() {
            self.optimistic_clients.insert(client);
            return self.pocc.handle_client_request(core, client, request);
        }
        // First contact from a client whose session predates the fall-back: close it, so
        // the client re-initialises and continues with a dependency-free pessimistic
        // session (phase 2 of the recovery procedure).
        if self.optimistic_clients.remove(&client) {
            return vec![self.abort_session(core, client)];
        }
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => {
                let out = if self.serveable_pessimistically(core, &rdv) {
                    self.pessimistic_get(core, client, key)
                } else {
                    self.abort_session(core, client)
                };
                outputs.push(out);
            }
            ClientRequest::Put { .. } => {
                // Writes are applied by the optimistic machinery; the dependency wait is
                // disabled while in pessimistic mode so the PUT cannot block.
                outputs = self.pocc.handle_client_request(core, client, request);
            }
            ClientRequest::RoTx { keys, rdv } => {
                if self.serveable_pessimistically(core, &rdv) {
                    self.pessimistic_ro_tx(core, client, keys, rdv, &mut outputs);
                } else {
                    let out = self.abort_session(core, client);
                    outputs.push(out);
                }
            }
        }
        outputs
    }

    fn on_stabilization_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vv: VersionVector,
        _outputs: &mut Vec<ServerOutput>,
    ) {
        core.local_vvs.insert(from.partition, vv);
        core.recompute_gss(false);
    }

    fn on_gc_vector(&mut self, core: &mut EngineCore<C>, from: ServerId, vector: DependencyVector) {
        VisibilityPolicy::<C>::on_gc_vector(&mut self.pocc, core, from, vector);
    }

    fn claim_slice_response(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        items: Vec<TxItem>,
        outputs: &mut Vec<ServerOutput>,
    ) -> Option<Vec<TxItem>> {
        if tx.0 & HA_TX_BIT != 0 {
            self.complete_ha_slice(&mut core.metrics, tx, items, outputs);
            None
        } else {
            Some(items)
        }
    }

    fn claim_slice_abort(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        outputs: &mut Vec<ServerOutput>,
    ) -> bool {
        if tx.0 & HA_TX_BIT != 0 {
            self.abort_ha_tx(&mut core.metrics, tx, outputs);
            true
        } else {
            false
        }
    }

    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // The optimistic machinery's periodic work (GC exchange, partition timeouts).
        self.pocc.on_tick(core, now, outputs);

        // The infrequent stabilization protocol: this is what makes the pessimistic
        // fall-back possible at all, and because it runs orders of magnitude less often
        // than Cure's it costs almost nothing during normal operation (§IV-C).
        if now.saturating_since(core.last_stabilization) >= core.config.ha_stabilization_interval {
            core.last_stabilization = now;
            let vv = core.vv.clone();
            for i in 0..core.local_peers().len() {
                let peer = core.local_peers()[i];
                core.metrics.stabilization_messages += 1;
                core.metrics.bytes_sent += vv.wire_size() as u64;
                outputs.push(ServerOutput::send(
                    peer,
                    ServerMessage::StabilizationVector { vv: vv.clone() },
                ));
            }
            core.recompute_gss(false);
        }

        self.detect_and_recover(core, now);
    }
}

/// A POCC server augmented with the availability-recovery machinery of §III-B:
/// an infrequent stabilization protocol, a partition detector, a pessimistic fall-back
/// mode and automatic promotion back to optimistic operation.
pub struct HaPoccServer<C> {
    engine: ProtocolEngine<C, HaPolicy>,
}

impl<C: Clock> HaPoccServer<C> {
    /// Creates an HA-POCC server for `id`.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        let now = clock.now();
        let policy = HaPolicy::new(&config, now);
        HaPoccServer {
            engine: ProtocolEngine::new(id, config, clock, policy),
        }
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.engine.policy().mode
    }

    /// How many times the server switched between optimistic and pessimistic mode.
    pub fn mode_switches(&self) -> u64 {
        self.engine.policy().mode_switches
    }

    /// The server's current view of the Globally Stable Snapshot.
    pub fn gss(&self) -> &DependencyVector {
        &self.engine.core().gss
    }

    /// The server's current version vector.
    pub fn version_vector(&self) -> &VersionVector {
        &self.engine.core().vv
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &ShardedStore {
        &self.engine.core().store
    }

    /// Forces the server into pessimistic mode (used by tests and by operators who know a
    /// partition is coming, e.g. planned maintenance).
    pub fn force_pessimistic(&mut self) {
        let (core, policy) = self.engine.parts_mut();
        policy.enter_pessimistic(core);
    }

    /// Forces the server back into optimistic mode.
    pub fn force_optimistic(&mut self) {
        let (core, policy) = self.engine.parts_mut();
        policy.enter_optimistic(core);
    }
}

pocc_engine::delegate_protocol_server!(HaPoccServer);

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_clock::ManualClock;
    use pocc_proto::{expect_reply, ProtocolServer, ServerIntrospect};
    use pocc_types::{ReplicaId, Value, Version};
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config() -> Config {
        Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .partition_detection_timeout(Duration::from_millis(200))
            .ha_stabilization_interval(Duration::from_millis(50))
            .build()
            .unwrap()
    }

    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    #[test]
    fn optimistic_mode_delegates_to_the_inner_server() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        assert_eq!(s.mode(), Mode::Optimistic);
        let key = key_in(0, 1);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("x"),
                dv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { .. })
        ));
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(_))
        ));
        assert_eq!(s.metrics().gets_served, 1);
        assert_eq!(s.metrics().puts_served, 1);
    }

    #[test]
    fn silent_replica_triggers_pessimistic_mode_and_recovery_follows() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());

        // Replicas keep sending heartbeats: the server stays optimistic.
        for step in 1..=5u64 {
            clock.set(Timestamp((10 + step * 10) * MS));
            for r in [1u16, 2] {
                s.handle_server_message(
                    ServerId::new(r, 0u32),
                    ServerMessage::Heartbeat {
                        clock: Timestamp((10 + step * 10) * MS),
                    },
                );
            }
            s.tick();
            assert_eq!(s.mode(), Mode::Optimistic);
        }

        // Replica 2 goes silent for longer than the detection timeout.
        for step in 6..=10u64 {
            clock.set(Timestamp((10 + step * 10) * MS));
            s.handle_server_message(
                ServerId::new(1u16, 0u32),
                ServerMessage::Heartbeat {
                    clock: Timestamp((10 + step * 10) * MS),
                },
            );
            s.tick();
        }
        clock.set(Timestamp(400 * MS));
        s.tick();
        assert!(
            s.mode().is_pessimistic(),
            "silence must trigger the fall-back"
        );
        assert_eq!(s.mode_switches(), 1);

        // The partition heals: traffic from replica 2 resumes, and after the settle period
        // the server promotes itself back to optimistic mode.
        for step in 0..60u64 {
            let t = Timestamp((410 + step * 10) * MS);
            clock.set(t);
            for r in [1u16, 2] {
                s.handle_server_message(
                    ServerId::new(r, 0u32),
                    ServerMessage::Heartbeat { clock: t },
                );
            }
            s.tick();
        }
        assert_eq!(s.mode(), Mode::Optimistic);
        assert_eq!(s.mode_switches(), 2);
    }

    #[test]
    fn pessimistic_get_does_not_block_and_returns_stable_data() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        let key = key_in(0, 1);

        // An unstable remote version (its dependency on replica 2 never arrives).
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate {
                version: Version::new(
                    key,
                    Value::from("unstable"),
                    ReplicaId(1),
                    Timestamp(9 * MS),
                    dv(&[0, 0, 99 * MS]),
                ),
            },
        );
        s.force_pessimistic();

        // A client that depends on the missing item would block under plain POCC; the
        // pessimistic fall-back cannot honour that dependency either, so it closes the
        // session immediately instead of blocking.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 99 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::SessionAborted { .. })
        ));

        // The re-initialised (dependency-free) session is served immediately: the unstable
        // remote version is hidden and "not found" comes back — but nothing blocks.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert!(resp.value.is_none());
            }
        );
        assert_eq!(s.metrics().currently_blocked, 0);
        assert_eq!(s.metrics().sessions_aborted, 1);
    }

    #[test]
    fn pessimistic_put_does_not_wait_for_dependencies() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        s.force_pessimistic();
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[0, 0, 500 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { .. })
        ));
        assert_eq!(s.metrics().currently_blocked, 0);

        // Back in optimistic mode the configured wait applies again.
        s.force_optimistic();
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w2"),
                dv: dv(&[0, 900 * MS, 0]),
            },
        );
        assert!(outputs.is_empty(), "the optimistic PUT must park again");
    }

    #[test]
    fn pessimistic_transaction_completes_from_the_stable_snapshot() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("mine"),
                dv: dv(&[0, 0, 0]),
            },
        );
        s.force_pessimistic();
        // The writer's optimistic-era session is closed on first contact after the switch;
        // the client re-initialises (dropping its dependencies) and retries.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::SessionAborted { .. })
        ));
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                // The local write is stable (it has no dependencies), so the re-initialised
                // pessimistic session still sees it.
                assert_eq!(
                    items[0].response.value.as_ref().unwrap().as_slice(),
                    b"mine"
                );
            }
        );
        assert_eq!(s.metrics().rotx_served, 1);
    }

    #[test]
    fn infrequent_stabilization_messages_are_emitted() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(4)
            .ha_stabilization_interval(Duration::from_millis(50))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(100 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        let outputs = s.tick();
        let stab = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stab, 3);
        // Not again within the (long) HA stabilization interval.
        clock.set(Timestamp(120 * MS));
        let outputs = s.tick();
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                ))
                .count(),
            0
        );
    }

    #[test]
    fn stabilization_vectors_from_peers_advance_the_gss() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(2)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        s.tick(); // own VV[0] -> 10ms
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(8 * MS),
                    Timestamp(7 * MS),
                    Timestamp(6 * MS),
                ]),
            },
        );
        assert_eq!(s.gss(), &dv(&[8 * MS, 0, 0]));
    }
}
