//! The HA-POCC server: POCC plus partition detection, pessimistic fall-back and recovery.

use pocc_clock::Clock;
use pocc_proto::{
    ClientReply, ClientRequest, GetResponse, MetricsSnapshot, ProtocolServer, ServerMessage,
    ServerOutput, TxId, TxItem,
};
use pocc_protocol::PoccServer;
use pocc_storage::partition_for_key;
use pocc_types::{
    ClientId, Config, DependencyVector, Key, PartitionId, ReplicaId, ServerId, Timestamp,
    VersionVector,
};
use std::collections::HashMap;

/// Transaction ids coordinated by the HA layer (pessimistic mode) live in a disjoint id
/// space from the ids used by the wrapped optimistic server, so that slice responses can be
/// routed to the right coordinator.
const HA_TX_BIT: u64 = 1 << 63;

/// The operating mode of an HA-POCC server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Normal operation: requests are served by the optimistic protocol (plain POCC).
    Optimistic,
    /// A network partition is suspected: reads are served pessimistically from the
    /// Globally Stable Snapshot, writes do not wait for dependencies, transactions are
    /// bounded by the GSS. No operation blocks in this mode.
    Pessimistic {
        /// When the server entered pessimistic mode (server clock).
        since: Timestamp,
    },
}

impl Mode {
    /// Whether the server is currently running the pessimistic fall-back protocol.
    pub fn is_pessimistic(&self) -> bool {
        matches!(self, Mode::Pessimistic { .. })
    }
}

/// State of a read-only transaction coordinated in pessimistic mode.
#[derive(Clone, Debug)]
struct HaTxState {
    client: ClientId,
    outstanding_slices: usize,
    items: Vec<TxItem>,
}

/// A POCC server augmented with the availability-recovery machinery of §III-B:
/// an infrequent stabilization protocol, a partition detector, a pessimistic fall-back
/// mode and automatic promotion back to optimistic operation.
pub struct HaPoccServer<C> {
    inner: PoccServer<C>,
    clock: C,
    config: Config,
    mode: Mode,
    mode_switches: u64,

    /// The Globally Stable Snapshot maintained by the infrequent stabilization protocol.
    gss: DependencyVector,
    /// Latest version vector received from each local peer partition.
    local_vvs: HashMap<PartitionId, VersionVector>,
    last_stabilization: Timestamp,

    /// Partition detector state: the last time each remote replica's entry of the version
    /// vector advanced.
    last_remote_advance: Vec<Timestamp>,
    prev_vv: VersionVector,
    /// `sessions_aborted` of the inner server at the last tick, to detect new aborts.
    aborted_seen: u64,

    /// Read-only transactions coordinated by the HA layer (pessimistic mode only).
    ha_txs: HashMap<TxId, HaTxState>,
    next_ha_tx: u64,
    /// Clients that issued requests while the server was optimistic. Their sessions are
    /// closed at their first request after a switch to pessimistic mode, because the
    /// pessimistic protocol cannot honour dependencies on unstable items they may have
    /// observed (§III-B: "it closes the session with c").
    optimistic_clients: std::collections::HashSet<ClientId>,

    /// Counters for operations served directly by the HA layer (merged into the metrics
    /// snapshot returned by [`ProtocolServer::metrics`]).
    overlay: MetricsSnapshot,
    put_wait_configured: bool,
}

impl<C: Clock + Clone> HaPoccServer<C> {
    /// Creates an HA-POCC server for `id`.
    pub fn new(id: ServerId, config: Config, clock: C) -> Self {
        let m = config.num_replicas;
        let now = clock.now();
        let put_wait_configured = config.put_waits_for_dependencies;
        HaPoccServer {
            inner: PoccServer::new(id, config.clone(), clock.clone()),
            mode: Mode::Optimistic,
            mode_switches: 0,
            gss: DependencyVector::zero(m),
            local_vvs: HashMap::new(),
            last_stabilization: Timestamp::ZERO,
            last_remote_advance: vec![now; m],
            prev_vv: VersionVector::zero(m),
            aborted_seen: 0,
            ha_txs: HashMap::new(),
            next_ha_tx: 0,
            optimistic_clients: std::collections::HashSet::new(),
            overlay: MetricsSnapshot::default(),
            put_wait_configured,
            clock,
            config,
        }
    }

    /// The current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// How many times the server switched between optimistic and pessimistic mode.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// The server's current view of the Globally Stable Snapshot.
    pub fn gss(&self) -> &DependencyVector {
        &self.gss
    }

    /// Read access to the wrapped optimistic server.
    pub fn inner(&self) -> &PoccServer<C> {
        &self.inner
    }

    /// Forces the server into pessimistic mode (used by tests and by operators who know a
    /// partition is coming, e.g. planned maintenance).
    pub fn force_pessimistic(&mut self) {
        self.enter_pessimistic();
    }

    /// Forces the server back into optimistic mode.
    pub fn force_optimistic(&mut self) {
        self.enter_optimistic();
    }

    fn enter_pessimistic(&mut self) {
        if self.mode.is_pessimistic() {
            return;
        }
        self.mode = Mode::Pessimistic {
            since: self.clock.now(),
        };
        self.mode_switches += 1;
        // Writes must not block during the partition.
        self.inner.set_put_waits_for_dependencies(false);
    }

    fn enter_optimistic(&mut self) {
        if !self.mode.is_pessimistic() {
            return;
        }
        self.mode = Mode::Optimistic;
        self.mode_switches += 1;
        self.inner
            .set_put_waits_for_dependencies(self.put_wait_configured);
    }

    fn local_peers(&self) -> Vec<ServerId> {
        let id = self.inner.server_id();
        self.config
            .partitions()
            .filter(|p| *p != id.partition)
            .map(|p| id.local_peer(p))
            .collect()
    }

    /// Recomputes the GSS from the latest known version vectors of every local partition.
    fn recompute_gss(&mut self) {
        if self.local_vvs.len() < self.config.num_partitions.saturating_sub(1) {
            return;
        }
        let mut gss =
            DependencyVector::from_entries(self.inner.version_vector().as_slice().to_vec());
        for vv in self.local_vvs.values() {
            gss.meet(&DependencyVector::from_entries(vv.as_slice().to_vec()));
        }
        self.gss.join(&gss);
    }

    // -----------------------------------------------------------------------------------
    // Pessimistic operation handlers
    // -----------------------------------------------------------------------------------

    /// Whether a client carrying these dependencies can be served by the pessimistic
    /// protocol without violating its session history: every *remote* dependency must be
    /// covered by the Globally Stable Snapshot (dependencies on local items are always
    /// satisfiable, as in Cure).
    ///
    /// Clients that established dependencies on unstable items while the server was still
    /// optimistic fail this check; their session is closed, exactly as the recovery
    /// procedure of §III-B prescribes (the client re-initialises and continues
    /// pessimistically, possibly no longer seeing some versions it read before).
    fn serveable_pessimistically(&self, deps: &DependencyVector) -> bool {
        let local = self.inner.server_id().replica;
        deps.iter()
            .all(|(replica, ts)| replica == local || ts <= self.gss.get(replica))
    }

    /// Closes the session of a client whose optimistic-era dependencies cannot be served
    /// by the pessimistic fall-back.
    fn abort_session(&mut self, client: ClientId) -> ServerOutput {
        self.overlay.sessions_aborted += 1;
        ServerOutput::reply(
            client,
            ClientReply::SessionAborted {
                reason: "optimistic dependencies cannot be served during the partition; \
                         re-initialise the session"
                    .into(),
            },
        )
    }

    /// A pessimistic GET: the freshest version visible under the GSS (local versions are
    /// always visible, as in Cure). Never blocks.
    fn pessimistic_get(&mut self, client: ClientId, key: Key) -> ServerOutput {
        let id = self.inner.server_id();
        let outcome = self.inner.store().latest_stable(key, &self.gss, id.replica);
        self.overlay.gets_served += 1;
        if outcome.is_old() {
            self.overlay.old_gets += 1;
            self.overlay.fresher_versions_sum += outcome.stats.fresher_than_returned as u64;
        }
        let response = match outcome.version {
            Some(v) => GetResponse {
                value: Some(v.value.clone()),
                update_time: v.update_time,
                deps: v.deps.clone(),
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.config.num_replicas),
                source_replica: id.replica,
            },
        };
        ServerOutput::reply(client, ClientReply::Get(response))
    }

    /// A pessimistic read-only transaction: the snapshot is bounded by the GSS (plus the
    /// client's session history and the coordinator's local clock entry), so participant
    /// slices never wait for remote replication.
    fn pessimistic_ro_tx(
        &mut self,
        client: ClientId,
        keys: Vec<Key>,
        rdv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if keys.is_empty() {
            self.overlay.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                client,
                ClientReply::RoTx { items: Vec::new() },
            ));
            return;
        }
        let id = self.inner.server_id();
        let mut snapshot = self.gss.joined(&rdv);
        snapshot.advance(id.replica, self.inner.version_vector().get(id.replica));

        let mut by_partition: HashMap<PartitionId, Vec<Key>> = HashMap::new();
        for key in keys {
            by_partition
                .entry(partition_for_key(key, self.config.num_partitions))
                .or_default()
                .push(key);
        }

        let tx = TxId(HA_TX_BIT | self.next_ha_tx);
        self.next_ha_tx += 1;
        self.ha_txs.insert(
            tx,
            HaTxState {
                client,
                outstanding_slices: by_partition.len(),
                items: Vec::new(),
            },
        );

        // Deterministic fan-out order (HashMap iteration order is randomised per process).
        let mut groups: Vec<_> = by_partition.into_iter().collect();
        groups.sort_by_key(|(partition, _)| *partition);
        let mut local_keys = None;
        for (partition, keys) in groups {
            if partition == id.partition {
                local_keys = Some(keys);
            } else {
                self.overlay.bytes_sent += (keys.len() * 8 + snapshot.wire_size()) as u64;
                outputs.push(ServerOutput::send(
                    id.local_peer(partition),
                    ServerMessage::SliceRequest {
                        tx,
                        client,
                        keys,
                        snapshot: snapshot.clone(),
                    },
                ));
            }
        }
        if let Some(keys) = local_keys {
            let items = self.read_local_slice(&keys, &snapshot);
            self.complete_ha_slice(tx, items, outputs);
        }
    }

    /// Reads a slice of a pessimistic transaction against the local store.
    fn read_local_slice(&mut self, keys: &[Key], snapshot: &DependencyVector) -> Vec<TxItem> {
        let id = self.inner.server_id();
        let mut items = Vec::with_capacity(keys.len());
        for &key in keys {
            let outcome = self.inner.store().latest_in_snapshot(key, snapshot);
            self.overlay.tx_items_returned += 1;
            if outcome.is_old() {
                self.overlay.old_tx_items += 1;
            }
            let response = match outcome.version {
                Some(v) => GetResponse {
                    value: Some(v.value.clone()),
                    update_time: v.update_time,
                    deps: v.deps.clone(),
                    source_replica: v.source_replica,
                },
                None => GetResponse {
                    value: None,
                    update_time: Timestamp::ZERO,
                    deps: DependencyVector::zero(self.config.num_replicas),
                    source_replica: id.replica,
                },
            };
            items.push(TxItem { key, response });
        }
        items
    }

    fn complete_ha_slice(&mut self, tx: TxId, items: Vec<TxItem>, outputs: &mut Vec<ServerOutput>) {
        let finished = {
            let Some(state) = self.ha_txs.get_mut(&tx) else {
                return;
            };
            state.items.extend(items);
            state.outstanding_slices = state.outstanding_slices.saturating_sub(1);
            state.outstanding_slices == 0
        };
        if finished {
            let state = self.ha_txs.remove(&tx).expect("tx present");
            self.overlay.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::RoTx { items: state.items },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Detection and recovery
    // -----------------------------------------------------------------------------------

    /// Updates the partition detector, possibly switching modes.
    fn detect_and_recover(&mut self) {
        let now = self.clock.now();
        let vv = self.inner.version_vector().clone();
        let local = self.inner.server_id().replica;
        for (replica, ts) in vv.iter() {
            if replica != local && ts > self.prev_vv.get(replica) {
                self.last_remote_advance[replica.index()] = now;
            }
        }
        self.prev_vv = vv;

        // Detection signal 1: the optimistic server aborted a blocked session.
        let aborted = self.inner.metrics().sessions_aborted;
        let new_aborts = aborted > self.aborted_seen;
        self.aborted_seen = aborted;

        // Detection signal 2: a remote replica has been silent (no updates, no heartbeats)
        // for longer than the partition-detection timeout.
        let silent_replica = self
            .last_remote_advance
            .iter()
            .enumerate()
            .any(|(i, last)| {
                i != local.index()
                    && now.saturating_since(*last) >= self.config.partition_detection_timeout
            });

        match self.mode {
            Mode::Optimistic => {
                if new_aborts || silent_replica {
                    self.enter_pessimistic();
                }
            }
            Mode::Pessimistic { since } => {
                // Recovery: every remote replica has been heard from recently and the
                // server has spent at least one detection period in pessimistic mode (to
                // avoid flapping).
                let healthy_window = self.config.heartbeat_interval * 8;
                let all_healthy = self
                    .last_remote_advance
                    .iter()
                    .enumerate()
                    .all(|(i, last)| {
                        i == local.index() || now.saturating_since(*last) <= healthy_window
                    });
                let settled =
                    now.saturating_since(since) >= self.config.partition_detection_timeout;
                if all_healthy && settled && !silent_replica {
                    self.enter_optimistic();
                }
            }
        }
    }
}

impl<C: Clock + Clone> ProtocolServer for HaPoccServer<C> {
    fn server_id(&self) -> ServerId {
        self.inner.server_id()
    }

    fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        if !self.mode.is_pessimistic() {
            self.optimistic_clients.insert(client);
            return self.inner.handle_client_request(client, request);
        }
        // First contact from a client whose session predates the fall-back: close it, so
        // the client re-initialises and continues with a dependency-free pessimistic
        // session (phase 2 of the recovery procedure).
        if self.optimistic_clients.remove(&client) {
            return vec![self.abort_session(client)];
        }
        let mut outputs = Vec::new();
        match request {
            ClientRequest::Get { key, rdv } => {
                let out = if self.serveable_pessimistically(&rdv) {
                    self.pessimistic_get(client, key)
                } else {
                    self.abort_session(client)
                };
                outputs.push(out);
            }
            ClientRequest::Put { .. } => {
                // Writes are applied by the optimistic server; the dependency wait is
                // disabled while in pessimistic mode so the PUT cannot block.
                outputs = self.inner.handle_client_request(client, request);
            }
            ClientRequest::RoTx { keys, rdv } => {
                if self.serveable_pessimistically(&rdv) {
                    self.pessimistic_ro_tx(client, keys, rdv, &mut outputs);
                } else {
                    let out = self.abort_session(client);
                    outputs.push(out);
                }
            }
        }
        outputs
    }

    fn handle_server_message(
        &mut self,
        from: ServerId,
        message: ServerMessage,
    ) -> Vec<ServerOutput> {
        match message {
            ServerMessage::StabilizationVector { vv } => {
                self.overlay.stabilization_messages += 1;
                self.local_vvs.insert(from.partition, vv);
                self.recompute_gss();
                Vec::new()
            }
            ServerMessage::SliceResponse { tx, items } if tx.0 & HA_TX_BIT != 0 => {
                let mut outputs = Vec::new();
                self.complete_ha_slice(tx, items, &mut outputs);
                outputs
            }
            other => self.inner.handle_server_message(from, other),
        }
    }

    fn tick(&mut self) -> Vec<ServerOutput> {
        let mut outputs = self.inner.tick();
        let now = self.clock.now();

        // The infrequent stabilization protocol: this is what makes the pessimistic
        // fall-back possible at all, and because it runs orders of magnitude less often
        // than Cure's it costs almost nothing during normal operation (§IV-C).
        if now.saturating_since(self.last_stabilization) >= self.config.ha_stabilization_interval {
            self.last_stabilization = now;
            let vv = self.inner.version_vector().clone();
            for peer in self.local_peers() {
                self.overlay.stabilization_messages += 1;
                self.overlay.bytes_sent += vv.wire_size() as u64;
                outputs.push(ServerOutput::send(
                    peer,
                    ServerMessage::StabilizationVector { vv: vv.clone() },
                ));
            }
            self.recompute_gss();
        }

        self.detect_and_recover();
        outputs
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.inner.metrics();
        m.merge(&self.overlay);
        m
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.inner.digest()
    }

    fn store_stats(&self) -> pocc_storage::StoreStats {
        self.inner.store().stats()
    }

    fn shard_stats(&self) -> Vec<pocc_storage::ShardStats> {
        self.inner.store().shard_stats()
    }

    fn take_extra_work(&mut self) -> u64 {
        self.inner.take_extra_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_clock::ManualClock;
    use pocc_proto::expect_reply;
    use pocc_types::{Value, Version};
    use std::time::Duration;

    const MS: u64 = 1_000;

    fn config() -> Config {
        Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .partition_detection_timeout(Duration::from_millis(200))
            .ha_stabilization_interval(Duration::from_millis(50))
            .build()
            .unwrap()
    }

    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
    }

    fn extract_reply(outputs: &[ServerOutput], client: ClientId) -> Option<ClientReply> {
        outputs.iter().find_map(|o| match o {
            ServerOutput::Reply { client: c, reply } if *c == client => Some(reply.clone()),
            _ => None,
        })
    }

    #[test]
    fn optimistic_mode_delegates_to_the_inner_server() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        assert_eq!(s.mode(), Mode::Optimistic);
        let key = key_in(0, 1);
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("x"),
                dv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { .. })
        ));
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(_))
        ));
        assert_eq!(s.metrics().gets_served, 1);
        assert_eq!(s.metrics().puts_served, 1);
    }

    #[test]
    fn silent_replica_triggers_pessimistic_mode_and_recovery_follows() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());

        // Replicas keep sending heartbeats: the server stays optimistic.
        for step in 1..=5u64 {
            clock.set(Timestamp((10 + step * 10) * MS));
            for r in [1u16, 2] {
                s.handle_server_message(
                    ServerId::new(r, 0u32),
                    ServerMessage::Heartbeat {
                        clock: Timestamp((10 + step * 10) * MS),
                    },
                );
            }
            s.tick();
            assert_eq!(s.mode(), Mode::Optimistic);
        }

        // Replica 2 goes silent for longer than the detection timeout.
        for step in 6..=10u64 {
            clock.set(Timestamp((10 + step * 10) * MS));
            s.handle_server_message(
                ServerId::new(1u16, 0u32),
                ServerMessage::Heartbeat {
                    clock: Timestamp((10 + step * 10) * MS),
                },
            );
            s.tick();
        }
        clock.set(Timestamp(400 * MS));
        s.tick();
        assert!(
            s.mode().is_pessimistic(),
            "silence must trigger the fall-back"
        );
        assert_eq!(s.mode_switches(), 1);

        // The partition heals: traffic from replica 2 resumes, and after the settle period
        // the server promotes itself back to optimistic mode.
        for step in 0..60u64 {
            let t = Timestamp((410 + step * 10) * MS);
            clock.set(t);
            for r in [1u16, 2] {
                s.handle_server_message(
                    ServerId::new(r, 0u32),
                    ServerMessage::Heartbeat { clock: t },
                );
            }
            s.tick();
        }
        assert_eq!(s.mode(), Mode::Optimistic);
        assert_eq!(s.mode_switches(), 2);
    }

    #[test]
    fn pessimistic_get_does_not_block_and_returns_stable_data() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        let key = key_in(0, 1);

        // An unstable remote version (its dependency on replica 2 never arrives).
        s.handle_server_message(
            ServerId::new(1u16, 0u32),
            ServerMessage::Replicate {
                version: Version::new(
                    key,
                    Value::from("unstable"),
                    ReplicaId(1),
                    Timestamp(9 * MS),
                    dv(&[0, 0, 99 * MS]),
                ),
            },
        );
        s.force_pessimistic();

        // A client that depends on the missing item would block under plain POCC; the
        // pessimistic fall-back cannot honour that dependency either, so it closes the
        // session immediately instead of blocking.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 99 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::SessionAborted { .. })
        ));

        // The re-initialised (dependency-free) session is served immediately: the unstable
        // remote version is hidden and "not found" comes back — but nothing blocks.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Get {
                key,
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Get(resp)) => {
                assert!(resp.value.is_none());
            }
        );
        assert_eq!(s.metrics().currently_blocked, 0);
        assert_eq!(s.metrics().sessions_aborted, 1);
    }

    #[test]
    fn pessimistic_put_does_not_wait_for_dependencies() {
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), config(), clock.clone());
        s.force_pessimistic();
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w"),
                dv: dv(&[0, 0, 500 * MS]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::Put { .. })
        ));
        assert_eq!(s.metrics().currently_blocked, 0);

        // Back in optimistic mode the configured wait applies again.
        s.force_optimistic();
        let outputs = s.handle_client_request(
            ClientId(2),
            ClientRequest::Put {
                key: key_in(0, 1),
                value: Value::from("w2"),
                dv: dv(&[0, 900 * MS, 0]),
            },
        );
        assert!(outputs.is_empty(), "the optimistic PUT must park again");
    }

    #[test]
    fn pessimistic_transaction_completes_from_the_stable_snapshot() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(1)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        let key = key_in(0, 1);
        s.handle_client_request(
            ClientId(1),
            ClientRequest::Put {
                key,
                value: Value::from("mine"),
                dv: dv(&[0, 0, 0]),
            },
        );
        s.force_pessimistic();
        // The writer's optimistic-era session is closed on first contact after the switch;
        // the client re-initialises (dropping its dependencies) and retries.
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        assert!(matches!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::SessionAborted { .. })
        ));
        let outputs = s.handle_client_request(
            ClientId(1),
            ClientRequest::RoTx {
                keys: vec![key],
                rdv: dv(&[0, 0, 0]),
            },
        );
        expect_reply!(
            extract_reply(&outputs, ClientId(1)),
            Some(ClientReply::RoTx { items }) => {
                assert_eq!(items.len(), 1);
                // The local write is stable (it has no dependencies), so the re-initialised
                // pessimistic session still sees it.
                assert_eq!(
                    items[0].response.value.as_ref().unwrap().as_slice(),
                    b"mine"
                );
            }
        );
        assert_eq!(s.metrics().rotx_served, 1);
    }

    #[test]
    fn infrequent_stabilization_messages_are_emitted() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(4)
            .ha_stabilization_interval(Duration::from_millis(50))
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(100 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        let outputs = s.tick();
        let stab = outputs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stab, 3);
        // Not again within the (long) HA stabilization interval.
        clock.set(Timestamp(120 * MS));
        let outputs = s.tick();
        assert_eq!(
            outputs
                .iter()
                .filter(|o| matches!(
                    o,
                    ServerOutput::Send {
                        message: ServerMessage::StabilizationVector { .. },
                        ..
                    }
                ))
                .count(),
            0
        );
    }

    #[test]
    fn stabilization_vectors_from_peers_advance_the_gss() {
        let cfg = Config::builder()
            .num_replicas(3)
            .num_partitions(2)
            .build()
            .unwrap();
        let clock = ManualClock::new(Timestamp(10 * MS));
        let mut s = HaPoccServer::new(ServerId::new(0u16, 0u32), cfg, clock.clone());
        s.tick(); // own VV[0] -> 10ms
        s.handle_server_message(
            ServerId::new(0u16, 1u32),
            ServerMessage::StabilizationVector {
                vv: VersionVector::from_entries(vec![
                    Timestamp(8 * MS),
                    Timestamp(7 * MS),
                    Timestamp(6 * MS),
                ]),
            },
        );
        assert_eq!(s.gss(), &dv(&[8 * MS, 0, 0]));
    }
}
