//! Per-link latency model.

use pocc_types::{LatencyMatrix, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Computes the one-way delay of a message between two servers.
///
/// The base delay comes from the deployment's [`LatencyMatrix`] (intra-DC for servers in
/// the same data center, the WAN entry otherwise); an optional uniform jitter of up to
/// `jitter_fraction` of the base delay is added on top, drawn from a seeded RNG so runs
/// stay reproducible.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    matrix: LatencyMatrix,
    jitter_fraction: f64,
    rng: StdRng,
}

impl LatencyModel {
    /// Creates a latency model with no jitter.
    pub fn new(matrix: LatencyMatrix) -> Self {
        LatencyModel {
            matrix,
            jitter_fraction: 0.0,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Creates a latency model adding up to `jitter_fraction` (e.g. `0.1` for 10 %) of
    /// uniform random jitter to every delay.
    pub fn with_jitter(matrix: LatencyMatrix, jitter_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jitter_fraction),
            "jitter fraction must be within [0, 1]"
        );
        LatencyModel {
            matrix,
            jitter_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying latency matrix.
    pub fn matrix(&self) -> &LatencyMatrix {
        &self.matrix
    }

    /// The one-way delay for a message from `from` to `to`.
    pub fn delay(&mut self, from: ServerId, to: ServerId) -> Duration {
        let base = self.matrix.between(from.replica, to.replica);
        if self.jitter_fraction == 0.0 || base.is_zero() {
            return base;
        }
        let jitter_max = base.as_nanos() as f64 * self.jitter_fraction;
        let jitter = self.rng.gen_range(0.0..=jitter_max);
        base + Duration::from_nanos(jitter as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::ReplicaId;

    fn servers() -> (ServerId, ServerId, ServerId) {
        (
            ServerId::new(0u16, 0u32),
            ServerId::new(0u16, 1u32),
            ServerId::new(2u16, 0u32),
        )
    }

    #[test]
    fn no_jitter_returns_the_matrix_entries() {
        let (a, b, c) = servers();
        let matrix = LatencyMatrix::aws_three_dc();
        let mut model = LatencyModel::new(matrix.clone());
        assert_eq!(model.delay(a, b), matrix.intra_dc);
        assert_eq!(
            model.delay(a, c),
            matrix.between(ReplicaId(0), ReplicaId(2))
        );
    }

    #[test]
    fn jitter_stays_within_the_configured_fraction() {
        let (a, _, c) = servers();
        let matrix = LatencyMatrix::aws_three_dc();
        let base = matrix.between(ReplicaId(0), ReplicaId(2));
        let mut model = LatencyModel::with_jitter(matrix, 0.1, 7);
        for _ in 0..1_000 {
            let d = model.delay(a, c);
            assert!(d >= base);
            assert!(d <= base + base.mul_f64(0.11));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let (a, _, c) = servers();
        let matrix = LatencyMatrix::aws_three_dc();
        let mut m1 = LatencyModel::with_jitter(matrix.clone(), 0.2, 9);
        let mut m2 = LatencyModel::with_jitter(matrix, 0.2, 9);
        for _ in 0..100 {
            assert_eq!(m1.delay(a, c), m2.delay(a, c));
        }
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn out_of_range_jitter_is_rejected() {
        LatencyModel::with_jitter(LatencyMatrix::aws_three_dc(), 1.5, 0);
    }
}
