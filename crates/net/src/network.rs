//! The simulated network: FIFO lossless links with partition injection.

use crate::LatencyModel;
use pocc_proto::Envelope;
use pocc_types::{ReplicaId, ServerId, Timestamp};
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// Aggregate statistics of the simulated network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted for delivery.
    pub messages_sent: u64,
    /// Messages that crossed a data-center boundary.
    pub wan_messages: u64,
    /// Total bytes (wire-size estimate) accepted for delivery.
    pub bytes_sent: u64,
    /// Messages currently held because their link is partitioned.
    pub held_messages: u64,
}

/// The simulated network.
///
/// Responsibilities:
/// * compute a delivery timestamp for every message, honouring the latency model,
/// * guarantee per-link FIFO: a message never overtakes an earlier message on the same
///   `(from, to)` link, even when jitter would reorder them,
/// * hold (never drop) traffic between partitioned data-center pairs and release it in
///   order when the partition heals.
#[derive(Debug)]
pub struct SimNetwork {
    latency: LatencyModel,
    /// Last delivery time scheduled per directed link, to enforce FIFO.
    last_delivery: HashMap<(ServerId, ServerId), Timestamp>,
    /// Pairs of data centers currently partitioned from each other (stored with both
    /// orderings for O(1) lookup).
    partitions: std::collections::HashSet<(ReplicaId, ReplicaId)>,
    /// Messages held because their link is partitioned, per directed DC pair, in send
    /// order.
    held: HashMap<(ReplicaId, ReplicaId), VecDeque<Envelope>>,
    stats: NetworkStats,
}

impl SimNetwork {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNetwork {
            latency,
            last_delivery: HashMap::new(),
            partitions: std::collections::HashSet::new(),
            held: HashMap::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetworkStats {
        let mut s = self.stats;
        s.held_messages = self.held.values().map(|q| q.len() as u64).sum();
        s
    }

    /// Whether traffic between the two data centers is currently blocked.
    pub fn is_partitioned(&self, a: ReplicaId, b: ReplicaId) -> bool {
        self.partitions.contains(&(a, b))
    }

    /// Injects a network partition between data centers `a` and `b` (both directions).
    /// Intra-DC traffic and traffic to other data centers is unaffected.
    pub fn partition(&mut self, a: ReplicaId, b: ReplicaId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Accepts a message and returns its scheduled delivery, or `None` if the link is
    /// partitioned (the message is held, not dropped).
    pub fn send(&mut self, envelope: Envelope, now: Timestamp) -> Option<(Timestamp, Envelope)> {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += envelope.message.wire_size() as u64;
        if envelope.crosses_dc() {
            self.stats.wan_messages += 1;
        }
        let pair = (envelope.from.replica, envelope.to.replica);
        if self.partitions.contains(&pair) {
            self.held.entry(pair).or_default().push_back(envelope);
            return None;
        }
        Some(self.schedule(envelope, now))
    }

    /// Heals the partition between `a` and `b`, returning the held traffic with fresh
    /// delivery times (per-link FIFO order preserved).
    pub fn heal(
        &mut self,
        a: ReplicaId,
        b: ReplicaId,
        now: Timestamp,
    ) -> Vec<(Timestamp, Envelope)> {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
        let mut released = Vec::new();
        for pair in [(a, b), (b, a)] {
            if let Some(queue) = self.held.remove(&pair) {
                for envelope in queue {
                    released.push(self.schedule(envelope, now));
                }
            }
        }
        released
    }

    /// Computes the delivery time for a message on a healthy link.
    fn schedule(&mut self, envelope: Envelope, now: Timestamp) -> (Timestamp, Envelope) {
        let delay = self.latency.delay(envelope.from, envelope.to);
        let mut at = now + delay;
        let link = (envelope.from, envelope.to);
        if let Some(last) = self.last_delivery.get(&link) {
            if at <= *last {
                at = *last + Duration::from_nanos(1_000);
            }
        }
        self.last_delivery.insert(link, at);
        (at, envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_proto::ServerMessage;
    use pocc_types::LatencyMatrix;

    fn network(jitter: f64) -> SimNetwork {
        let model = if jitter == 0.0 {
            LatencyModel::new(LatencyMatrix::aws_three_dc())
        } else {
            LatencyModel::with_jitter(LatencyMatrix::aws_three_dc(), jitter, 3)
        };
        SimNetwork::new(model)
    }

    fn envelope(from_dc: u16, to_dc: u16, clock: u64) -> Envelope {
        Envelope::new(
            ServerId::new(from_dc, 0u32),
            ServerId::new(to_dc, 0u32),
            Timestamp(clock),
            ServerMessage::Heartbeat {
                clock: Timestamp(clock),
            },
        )
    }

    #[test]
    fn delivery_time_reflects_the_latency_matrix() {
        let mut net = network(0.0);
        let (at, _) = net.send(envelope(0, 2, 1), Timestamp::ZERO).unwrap();
        assert_eq!(at, Timestamp::from_millis(70));
        let (at, _) = net.send(envelope(0, 0, 1), Timestamp::ZERO).unwrap();
        assert_eq!(at, Timestamp(250));
    }

    #[test]
    fn fifo_is_preserved_even_with_jitter() {
        let mut net = network(0.5);
        let mut last = Timestamp::ZERO;
        for i in 0..200u64 {
            let (at, _) = net.send(envelope(0, 1, i), Timestamp(i)).unwrap();
            assert!(at > last, "message {i} delivered at {at} before {last}");
            last = at;
        }
    }

    #[test]
    fn partitioned_links_hold_traffic_and_heal_releases_it_in_order() {
        let mut net = network(0.0);
        net.partition(ReplicaId(0), ReplicaId(1));
        assert!(net.is_partitioned(ReplicaId(0), ReplicaId(1)));
        assert!(net.is_partitioned(ReplicaId(1), ReplicaId(0)));

        for i in 0..5u64 {
            assert!(net.send(envelope(0, 1, i), Timestamp(i)).is_none());
        }
        // Other links keep working.
        assert!(net.send(envelope(0, 2, 9), Timestamp(9)).is_some());
        assert_eq!(net.stats().held_messages, 5);

        let released = net.heal(ReplicaId(0), ReplicaId(1), Timestamp::from_millis(500));
        assert_eq!(released.len(), 5);
        // Released messages keep their original order and deliver after the heal time.
        let mut last = Timestamp::ZERO;
        for (i, (at, env)) in released.iter().enumerate() {
            assert!(*at >= Timestamp::from_millis(500));
            assert!(*at > last);
            last = *at;
            match env.message {
                ServerMessage::Heartbeat { clock } => assert_eq!(clock, Timestamp(i as u64)),
                _ => unreachable!(),
            }
        }
        assert_eq!(net.stats().held_messages, 0);
        assert!(!net.is_partitioned(ReplicaId(0), ReplicaId(1)));
    }

    #[test]
    fn stats_count_wan_and_bytes() {
        let mut net = network(0.0);
        net.send(envelope(0, 1, 1), Timestamp::ZERO);
        net.send(envelope(0, 0, 2), Timestamp::ZERO);
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.wan_messages, 1);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn healing_an_unpartitioned_pair_is_a_noop() {
        let mut net = network(0.0);
        assert!(net
            .heal(ReplicaId(0), ReplicaId(1), Timestamp::ZERO)
            .is_empty());
    }
}
