//! The simulated network: FIFO lossless links with partition injection and optional
//! chaos windows (lag spikes, drop windows, duplication windows).

use crate::LatencyModel;
use pocc_proto::{Envelope, ServerMessage};
use pocc_types::{ReplicaId, ServerId, Timestamp};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

/// Aggregate statistics of the simulated network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages accepted for delivery.
    pub messages_sent: u64,
    /// Messages that crossed a data-center boundary.
    pub wan_messages: u64,
    /// Total bytes (wire-size estimate) accepted for delivery.
    pub bytes_sent: u64,
    /// Messages currently held because their link is partitioned.
    pub held_messages: u64,
    /// Idempotent periodic messages dropped inside an active drop window.
    pub dropped_messages: u64,
    /// Extra deliveries produced by an active duplication window.
    pub duplicated_messages: u64,
}

/// The simulated network.
///
/// Responsibilities:
/// * compute a delivery timestamp for every message, honouring the latency model,
/// * guarantee per-link FIFO: a message never overtakes an earlier message on the same
///   `(from, to)` link, even when jitter would reorder them,
/// * hold (never drop) traffic between partitioned data-center pairs and release it in
///   order when the partition heals,
/// * apply chaos windows per data-center pair: lag spikes (extra one-way delay), drop
///   windows and duplication windows.
///
/// Drop and duplication windows only affect *idempotent periodic* traffic (heartbeats,
/// stabilization vectors, GC vectors): the protocols assume reliable FIFO channels with
/// no retransmission, so losing a `Replicate` or slice message would wedge clients or
/// permanently diverge replicas — that failure mode is modelled by partitions (which
/// hold traffic) instead. Periodic messages, by contrast, are superseded by the next
/// round, so dropping or duplicating them probes real degraded-network behaviour while
/// convergence stays provable.
#[derive(Debug)]
pub struct SimNetwork {
    latency: LatencyModel,
    /// Last delivery time scheduled per directed link, to enforce FIFO.
    last_delivery: HashMap<(ServerId, ServerId), Timestamp>,
    /// Pairs of data centers currently partitioned from each other (stored with both
    /// orderings for O(1) lookup).
    partitions: HashSet<(ReplicaId, ReplicaId)>,
    /// Messages held because their link is partitioned, per directed DC pair, in send
    /// order.
    held: HashMap<(ReplicaId, ReplicaId), VecDeque<Envelope>>,
    /// Extra one-way delay per directed DC pair (lag spikes).
    extra_delay: HashMap<(ReplicaId, ReplicaId), Duration>,
    /// DC pairs currently dropping idempotent periodic messages.
    dropping: HashSet<(ReplicaId, ReplicaId)>,
    /// DC pairs currently duplicating idempotent periodic messages.
    duplicating: HashSet<(ReplicaId, ReplicaId)>,
    stats: NetworkStats,
}

impl SimNetwork {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        SimNetwork {
            latency,
            last_delivery: HashMap::new(),
            partitions: HashSet::new(),
            held: HashMap::new(),
            extra_delay: HashMap::new(),
            dropping: HashSet::new(),
            duplicating: HashSet::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetworkStats {
        let mut s = self.stats;
        s.held_messages = self.held.values().map(|q| q.len() as u64).sum();
        s
    }

    /// Whether traffic between the two data centers is currently blocked.
    pub fn is_partitioned(&self, a: ReplicaId, b: ReplicaId) -> bool {
        self.partitions.contains(&(a, b))
    }

    /// Injects a network partition between data centers `a` and `b` (both directions).
    /// Intra-DC traffic and traffic to other data centers is unaffected.
    pub fn partition(&mut self, a: ReplicaId, b: ReplicaId) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Adds `extra` one-way delay to every message between `a` and `b` (both directions)
    /// until [`SimNetwork::clear_lag`] is called.
    pub fn set_lag(&mut self, a: ReplicaId, b: ReplicaId, extra: Duration) {
        self.extra_delay.insert((a, b), extra);
        self.extra_delay.insert((b, a), extra);
    }

    /// Removes the lag spike between `a` and `b`.
    pub fn clear_lag(&mut self, a: ReplicaId, b: ReplicaId) {
        self.extra_delay.remove(&(a, b));
        self.extra_delay.remove(&(b, a));
    }

    /// Starts dropping idempotent periodic messages between `a` and `b` (both
    /// directions). Non-droppable traffic is unaffected.
    pub fn set_drop(&mut self, a: ReplicaId, b: ReplicaId) {
        self.dropping.insert((a, b));
        self.dropping.insert((b, a));
    }

    /// Ends the drop window between `a` and `b`.
    pub fn clear_drop(&mut self, a: ReplicaId, b: ReplicaId) {
        self.dropping.remove(&(a, b));
        self.dropping.remove(&(b, a));
    }

    /// Starts duplicating idempotent periodic messages between `a` and `b` (both
    /// directions): each such message is delivered twice, the duplicate strictly after
    /// the original (per-link FIFO is preserved).
    pub fn set_duplicate(&mut self, a: ReplicaId, b: ReplicaId) {
        self.duplicating.insert((a, b));
        self.duplicating.insert((b, a));
    }

    /// Ends the duplication window between `a` and `b`.
    pub fn clear_duplicate(&mut self, a: ReplicaId, b: ReplicaId) {
        self.duplicating.remove(&(a, b));
        self.duplicating.remove(&(b, a));
    }

    /// Whether a message kind may be dropped or duplicated by a chaos window: only
    /// idempotent periodic traffic that the next protocol round supersedes. Replication
    /// and transaction traffic rides reliable FIFO channels with no retransmission, so
    /// the network never drops or duplicates it.
    fn is_expendable(message: &ServerMessage) -> bool {
        matches!(
            message,
            ServerMessage::Heartbeat { .. }
                | ServerMessage::StabilizationVector { .. }
                | ServerMessage::GcVector { .. }
        )
    }

    /// Accepts a message and returns its scheduled deliveries: empty if the link is
    /// partitioned (held, not dropped) or an active drop window consumed the message,
    /// one entry on a healthy link, two inside a duplication window.
    pub fn send(&mut self, envelope: Envelope, now: Timestamp) -> Vec<(Timestamp, Envelope)> {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += envelope.message.wire_size() as u64;
        if envelope.crosses_dc() {
            self.stats.wan_messages += 1;
        }
        let pair = (envelope.from.replica, envelope.to.replica);
        if self.partitions.contains(&pair) {
            self.held.entry(pair).or_default().push_back(envelope);
            return Vec::new();
        }
        if self.dropping.contains(&pair) && Self::is_expendable(&envelope.message) {
            self.stats.dropped_messages += 1;
            return Vec::new();
        }
        let duplicate = (self.duplicating.contains(&pair)
            && Self::is_expendable(&envelope.message))
        .then(|| envelope.clone());
        let mut deliveries = vec![self.schedule(envelope, now)];
        if let Some(copy) = duplicate {
            self.stats.duplicated_messages += 1;
            self.stats.bytes_sent += copy.message.wire_size() as u64;
            if copy.crosses_dc() {
                self.stats.wan_messages += 1;
            }
            // Scheduled after the original: the FIFO bump in `schedule` guarantees it.
            deliveries.push(self.schedule(copy, now));
        }
        deliveries
    }

    /// Heals the partition between `a` and `b`, returning the held traffic with fresh
    /// delivery times (per-link FIFO order preserved).
    pub fn heal(
        &mut self,
        a: ReplicaId,
        b: ReplicaId,
        now: Timestamp,
    ) -> Vec<(Timestamp, Envelope)> {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
        let mut released = Vec::new();
        for pair in [(a, b), (b, a)] {
            if let Some(queue) = self.held.remove(&pair) {
                for envelope in queue {
                    released.push(self.schedule(envelope, now));
                }
            }
        }
        released
    }

    /// Computes the delivery time for a message on a healthy link.
    fn schedule(&mut self, envelope: Envelope, now: Timestamp) -> (Timestamp, Envelope) {
        let mut delay = self.latency.delay(envelope.from, envelope.to);
        if let Some(extra) = self
            .extra_delay
            .get(&(envelope.from.replica, envelope.to.replica))
        {
            delay += *extra;
        }
        let mut at = now + delay;
        let link = (envelope.from, envelope.to);
        if let Some(last) = self.last_delivery.get(&link) {
            if at <= *last {
                at = *last + Duration::from_nanos(1_000);
            }
        }
        self.last_delivery.insert(link, at);
        (at, envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_proto::ServerMessage;
    use pocc_types::{DependencyVector, Key, LatencyMatrix, Value, Version};

    fn network(jitter: f64) -> SimNetwork {
        let model = if jitter == 0.0 {
            LatencyModel::new(LatencyMatrix::aws_three_dc())
        } else {
            LatencyModel::with_jitter(LatencyMatrix::aws_three_dc(), jitter, 3)
        };
        SimNetwork::new(model)
    }

    fn envelope(from_dc: u16, to_dc: u16, clock: u64) -> Envelope {
        Envelope::new(
            ServerId::new(from_dc, 0u32),
            ServerId::new(to_dc, 0u32),
            Timestamp(clock),
            ServerMessage::Heartbeat {
                clock: Timestamp(clock),
            },
        )
    }

    fn replicate_envelope(from_dc: u16, to_dc: u16, ts: u64) -> Envelope {
        Envelope::new(
            ServerId::new(from_dc, 0u32),
            ServerId::new(to_dc, 0u32),
            Timestamp(ts),
            ServerMessage::Replicate {
                version: Version::new(
                    Key(1),
                    Value::from(ts),
                    ReplicaId(from_dc),
                    Timestamp(ts),
                    DependencyVector::zero(3),
                ),
            },
        )
    }

    fn single(deliveries: Vec<(Timestamp, Envelope)>) -> (Timestamp, Envelope) {
        assert_eq!(deliveries.len(), 1, "expected exactly one delivery");
        deliveries.into_iter().next().unwrap()
    }

    #[test]
    fn delivery_time_reflects_the_latency_matrix() {
        let mut net = network(0.0);
        let (at, _) = single(net.send(envelope(0, 2, 1), Timestamp::ZERO));
        assert_eq!(at, Timestamp::from_millis(70));
        let (at, _) = single(net.send(envelope(0, 0, 1), Timestamp::ZERO));
        assert_eq!(at, Timestamp(250));
    }

    #[test]
    fn fifo_is_preserved_even_with_jitter() {
        let mut net = network(0.5);
        let mut last = Timestamp::ZERO;
        for i in 0..200u64 {
            let (at, _) = single(net.send(envelope(0, 1, i), Timestamp(i)));
            assert!(at > last, "message {i} delivered at {at} before {last}");
            last = at;
        }
    }

    #[test]
    fn partitioned_links_hold_traffic_and_heal_releases_it_in_order() {
        let mut net = network(0.0);
        net.partition(ReplicaId(0), ReplicaId(1));
        assert!(net.is_partitioned(ReplicaId(0), ReplicaId(1)));
        assert!(net.is_partitioned(ReplicaId(1), ReplicaId(0)));

        for i in 0..5u64 {
            assert!(net.send(envelope(0, 1, i), Timestamp(i)).is_empty());
        }
        // Other links keep working.
        assert!(!net.send(envelope(0, 2, 9), Timestamp(9)).is_empty());
        assert_eq!(net.stats().held_messages, 5);

        let released = net.heal(ReplicaId(0), ReplicaId(1), Timestamp::from_millis(500));
        assert_eq!(released.len(), 5);
        // Released messages keep their original order and deliver after the heal time.
        let mut last = Timestamp::ZERO;
        for (i, (at, env)) in released.iter().enumerate() {
            assert!(*at >= Timestamp::from_millis(500));
            assert!(*at > last);
            last = *at;
            match env.message {
                ServerMessage::Heartbeat { clock } => assert_eq!(clock, Timestamp(i as u64)),
                _ => unreachable!(),
            }
        }
        assert_eq!(net.stats().held_messages, 0);
        assert!(!net.is_partitioned(ReplicaId(0), ReplicaId(1)));
    }

    #[test]
    fn stats_count_wan_and_bytes() {
        let mut net = network(0.0);
        net.send(envelope(0, 1, 1), Timestamp::ZERO);
        net.send(envelope(0, 0, 2), Timestamp::ZERO);
        let stats = net.stats();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.wan_messages, 1);
        assert!(stats.bytes_sent > 0);
    }

    #[test]
    fn healing_an_unpartitioned_pair_is_a_noop() {
        let mut net = network(0.0);
        assert!(net
            .heal(ReplicaId(0), ReplicaId(1), Timestamp::ZERO)
            .is_empty());
    }

    #[test]
    fn lag_spikes_add_delay_and_clear_cleanly() {
        let mut net = network(0.0);
        net.set_lag(ReplicaId(0), ReplicaId(2), Duration::from_millis(30));
        let (at, _) = single(net.send(envelope(0, 2, 1), Timestamp::ZERO));
        assert_eq!(at, Timestamp::from_millis(100), "70ms base + 30ms spike");
        // The reverse direction lags too.
        let (at, _) = single(net.send(envelope(2, 0, 1), Timestamp::ZERO));
        assert_eq!(at, Timestamp::from_millis(100));
        // Other pairs are unaffected.
        let (at, _) = single(net.send(envelope(0, 1, 1), Timestamp::ZERO));
        assert_eq!(at, Timestamp::from_millis(36));

        net.clear_lag(ReplicaId(0), ReplicaId(2));
        let (at, _) = net
            .send(envelope(0, 2, 2), Timestamp::from_millis(200))
            .pop()
            .unwrap();
        assert_eq!(at, Timestamp::from_millis(270));
    }

    #[test]
    fn drop_windows_consume_only_expendable_messages() {
        let mut net = network(0.0);
        net.set_drop(ReplicaId(0), ReplicaId(1));
        assert!(net.send(envelope(0, 1, 1), Timestamp::ZERO).is_empty());
        assert!(net.send(envelope(1, 0, 1), Timestamp::ZERO).is_empty());
        // Replication traffic is never dropped.
        assert_eq!(
            net.send(replicate_envelope(0, 1, 5), Timestamp::ZERO).len(),
            1
        );
        // Other pairs are unaffected.
        assert_eq!(net.send(envelope(0, 2, 1), Timestamp::ZERO).len(), 1);
        assert_eq!(net.stats().dropped_messages, 2);

        net.clear_drop(ReplicaId(0), ReplicaId(1));
        assert_eq!(net.send(envelope(0, 1, 2), Timestamp::ZERO).len(), 1);
    }

    #[test]
    fn duplication_windows_deliver_expendable_messages_twice_in_order() {
        let mut net = network(0.0);
        net.set_duplicate(ReplicaId(0), ReplicaId(1));
        let deliveries = net.send(envelope(0, 1, 1), Timestamp::ZERO);
        assert_eq!(deliveries.len(), 2);
        assert!(
            deliveries[0].0 < deliveries[1].0,
            "the duplicate arrives strictly after the original"
        );
        // Replication traffic is never duplicated.
        assert_eq!(
            net.send(replicate_envelope(0, 1, 5), Timestamp::ZERO).len(),
            1
        );
        assert_eq!(net.stats().duplicated_messages, 1);

        net.clear_duplicate(ReplicaId(0), ReplicaId(1));
        assert_eq!(net.send(envelope(0, 1, 2), Timestamp::ZERO).len(), 1);
    }

    #[test]
    fn partition_takes_precedence_over_drop_and_duplication() {
        let mut net = network(0.0);
        net.partition(ReplicaId(0), ReplicaId(1));
        net.set_drop(ReplicaId(0), ReplicaId(1));
        net.set_duplicate(ReplicaId(0), ReplicaId(1));
        assert!(net.send(envelope(0, 1, 1), Timestamp::ZERO).is_empty());
        // Held, not dropped: the heal releases it.
        assert_eq!(net.stats().held_messages, 1);
        assert_eq!(net.stats().dropped_messages, 0);
    }
}
