//! Pluggable transports: how a cluster's nodes and clients actually exchange messages.
//!
//! The protocol state machines are sans-IO; a [`Transport`] is the piece that moves their
//! inputs and outputs between nodes. The discrete-event simulator drives the machines
//! directly (no transport at all); the threaded runtime plugs in one of two real
//! backends:
//!
//! * [`ChannelTransport`] — in-process channels between threads, no syscalls, with the
//!   same configurable inter-DC delay injection as the simulator's latency model. This is
//!   the reference backend: the differential suite pins it store-equivalent to
//!   `SimNetwork` runs.
//! * [`TcpTransport`] — real sockets on localhost with length-prefixed frames over the
//!   `pocc-proto` wire codec, per-connection write coalescing and buffer-reusing reads.
//!
//! Inbound traffic is pushed into an [`EventSink`] the runtime provides (it forwards to
//! the per-server thread inboxes); outbound traffic goes through the trait methods.
//! Clients talk to a transport through a [`ClientPort`], which hides whether a request
//! crosses a channel or a socket.

mod channel;
pub mod frame;
mod tcp;

pub use channel::ChannelTransport;
pub use tcp::TcpTransport;

use pocc_proto::{ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Result, ServerId};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// The transport backends a cluster can run on, i.e. the `--transport` registry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// In-process channels between threads (no syscalls, emulated WAN delays).
    Channel,
    /// TCP sockets on localhost (real syscalls, real kernel network stack).
    Tcp,
}

impl TransportKind {
    /// Every available backend, for registry listings.
    pub fn all() -> &'static [TransportKind] {
        &[TransportKind::Channel, TransportKind::Tcp]
    }

    /// The backend's registry name.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses a registry name.
    pub fn parse(s: &str) -> Option<TransportKind> {
        TransportKind::all()
            .iter()
            .copied()
            .find(|kind| kind.name() == s)
    }
}

/// An inbound event a transport delivers to a node.
#[derive(Debug)]
pub enum TransportEvent {
    /// A request from a client session.
    Client {
        /// The issuing client.
        client: ClientId,
        /// The request.
        request: ClientRequest,
    },
    /// A message from another server.
    Peer {
        /// The sending server.
        from: ServerId,
        /// The message.
        message: ServerMessage,
    },
}

/// Where a transport delivers inbound traffic: called as `(to, event)` for every event
/// addressed to node `to`. The runtime points this at the per-server thread inboxes.
pub type EventSink = Arc<dyn Fn(ServerId, TransportEvent) + Send + Sync>;

/// A message-moving backend connecting the nodes of one cluster (and its clients).
///
/// Outbound sends may buffer: [`Transport::send_server`] is allowed to coalesce traffic
/// per destination until [`Transport::flush`] (the TCP backend stages frames into one
/// per-connection scratch and writes them with a single syscall). Buffering MUST preserve
/// per-link send order — the protocols assume lossless FIFO channels — and `reply` must
/// not overtake earlier replies to the same client. The runtime flushes after every
/// processed inbox batch and every tick, so nothing is deferred longer than a tick.
pub trait Transport: Send + Sync {
    /// Sends (or stages) a server-to-server message from `from` to `to`.
    fn send_server(&self, from: ServerId, to: ServerId, message: ServerMessage);

    /// Delivers a reply from server `from` to a client session, dropping it silently if
    /// the session is gone (the client may have timed out and disconnected).
    fn reply(&self, from: ServerId, client: ClientId, reply: ClientReply);

    /// Writes out everything staged by `from` since the last flush.
    fn flush(&self, from: ServerId);

    /// Opens a client port for `client`. The id must be unique across the cluster.
    fn client_port(&self, client: ClientId) -> Box<dyn ClientPort>;

    /// The socket address of `server`, when the backend has one (TCP only) — this is what
    /// external load generators connect to.
    fn addr(&self, server: ServerId) -> Option<SocketAddr>;

    /// Tears the backend down: stops helper threads and closes sockets. Idempotent.
    fn shutdown(&self);
}

/// A client session's connection(s) into the cluster.
///
/// Requests to the same server are delivered in submission order; replies arrive on a
/// single merged stream in the order servers sent them.
pub trait ClientPort: Send {
    /// Sends `request` to server `to` on behalf of this port's client.
    fn submit(&mut self, to: ServerId, request: ClientRequest) -> Result<()>;

    /// Waits up to `timeout` for the next reply addressed to this port's client.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<ClientReply>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_registry_round_trips() {
        for kind in TransportKind::all() {
            assert_eq!(TransportKind::parse(kind.name()), Some(*kind));
        }
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }
}
