//! The TCP socket transport.
//!
//! Every server binds a listener on `127.0.0.1:0`; peers and clients announce themselves
//! with a hello frame and then exchange length-prefixed codec frames (see
//! [`crate::transport::frame`]). The design goals are the ones that make a socket path
//! fast rather than merely present:
//!
//! * **Write coalescing** — server-to-server sends stage frames into one per-connection
//!   [`FrameWriter`] scratch (encoding in place via the codec's `encode_*_into`, zero
//!   steady-state allocations) and the runtime's flush writes the whole backlog with a
//!   single `write` syscall. Replication batches produced by the engine's
//!   `MessageBatcher` travel as one `Batch` frame, so fan-out batching survives the wire.
//! * **Read-side buffer reuse** — every reader thread owns one fixed chunk buffer and one
//!   [`FrameDecoder`] whose backing storage is recycled across reads; complete frames are
//!   handed to the zero-copy decoder.
//! * **FIFO links** — each ordered pair of servers uses one dedicated outbound
//!   connection, so per-link send order (which the protocols rely on) is preserved by TCP
//!   itself. No artificial latency is injected: this backend measures the real stack.
//!
//! Threads: one acceptor per server, one reader per accepted connection, one reader per
//! client-port connection. All of them poll a shared `running` flag with short read
//! timeouts, so shutdown converges in tens of milliseconds without any signaling channel.

use crate::transport::frame::{
    decode_hello_client, decode_hello_server, FrameDecoder, FrameWriter, HELLO_CLIENT,
    HELLO_SERVER, REPLY, REQUEST, SERVER_MSG,
};
use crate::transport::{ClientPort, EventSink, Transport, TransportEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use pocc_proto::{codec, ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Config, Error, Result, ServerId};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Size of the per-reader receive chunk.
const READ_CHUNK: usize = 64 * 1024;

/// Staged bytes beyond which a peer connection flushes early instead of waiting for the
/// runtime's end-of-batch flush, bounding the scratch buffer's high-water mark.
const FLUSH_THRESHOLD: usize = 256 * 1024;

/// How often blocked readers wake up to check the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// A connection's write half plus its staging scratch.
struct ConnWriter {
    stream: TcpStream,
    scratch: FrameWriter,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream,
            scratch: FrameWriter::new(),
        }
    }

    /// Writes everything staged with one `write_all`, retaining the scratch allocation.
    fn flush(&mut self) -> std::io::Result<()> {
        if !self.scratch.is_empty() {
            self.stream.write_all(self.scratch.bytes())?;
            self.scratch.clear();
        }
        Ok(())
    }
}

/// The per-server state of the transport.
struct NodeState {
    /// Lazily dialed outbound connections to sibling/peer servers, one per destination,
    /// each with its own reused encode scratch (the per-destination `BytesMut`).
    peers: Mutex<HashMap<ServerId, ConnWriter>>,
    /// Write halves of accepted client connections, registered at hello time.
    clients: RwLock<HashMap<ClientId, Arc<Mutex<ConnWriter>>>>,
}

/// The TCP socket backend. See the module docs.
pub struct TcpTransport {
    addrs: HashMap<ServerId, SocketAddr>,
    nodes: HashMap<ServerId, Arc<NodeState>>,
    running: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds one listener per server of `config` and starts the acceptor threads.
    /// Inbound requests and peer messages are pushed into `sink`.
    pub fn start(config: &Config, sink: EventSink) -> std::io::Result<Arc<TcpTransport>> {
        let running = Arc::new(AtomicBool::new(true));
        let mut addrs = HashMap::new();
        let mut nodes = HashMap::new();
        let mut listeners = Vec::new();
        for id in config.servers() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(id, listener.local_addr()?);
            nodes.insert(
                id,
                Arc::new(NodeState {
                    peers: Mutex::new(HashMap::new()),
                    clients: RwLock::new(HashMap::new()),
                }),
            );
            listeners.push((id, listener));
        }
        let mut threads = Vec::new();
        for (id, listener) in listeners {
            listener.set_nonblocking(true)?;
            let node = Arc::clone(&nodes[&id]);
            let accept_sink = Arc::clone(&sink);
            let accept_running = Arc::clone(&running);
            let handle = std::thread::Builder::new()
                .name(format!("pocc-accept-{id}"))
                .spawn(move || acceptor(id, listener, node, accept_sink, accept_running))
                .expect("spawning an acceptor thread succeeds");
            threads.push(handle);
        }
        Ok(Arc::new(TcpTransport {
            addrs,
            nodes,
            running,
            threads: Mutex::new(threads),
        }))
    }
}

impl Transport for TcpTransport {
    fn send_server(&self, from: ServerId, to: ServerId, message: ServerMessage) {
        let node = &self.nodes[&from];
        let mut peers = node.peers.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = peers.entry(to) {
            // Lazily dial the dedicated outbound link; the hello frame travels at the
            // head of the first flush.
            match TcpStream::connect(self.addrs[&to]) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let mut conn = ConnWriter::new(stream);
                    if conn.scratch.stage_hello_server(from).is_ok() {
                        slot.insert(conn);
                    }
                }
                Err(_) => return, // destination gone (shutdown races); drop the message
            }
        }
        let Some(conn) = peers.get_mut(&to) else {
            return;
        };
        if conn.scratch.stage_server_message(&message).is_err() {
            return;
        }
        if conn.scratch.len() >= FLUSH_THRESHOLD && conn.flush().is_err() {
            peers.remove(&to);
        }
    }

    fn reply(&self, from: ServerId, client: ClientId, reply: ClientReply) {
        let writer = self.nodes[&from].clients.read().get(&client).cloned();
        if let Some(writer) = writer {
            // Replies flush immediately: the client is blocked waiting on this message.
            let mut conn = writer.lock();
            if conn.scratch.stage_reply(&reply).is_ok() && conn.flush().is_err() {
                self.nodes[&from].clients.write().remove(&client);
            }
        }
    }

    fn flush(&self, from: ServerId) {
        let mut peers = self.nodes[&from].peers.lock();
        peers.retain(|_, conn| conn.flush().is_ok());
    }

    fn client_port(&self, client: ClientId) -> Box<dyn ClientPort> {
        let (tx, rx) = unbounded();
        Box::new(TcpClientPort {
            client,
            addrs: self.addrs.clone(),
            conns: HashMap::new(),
            replies_tx: tx,
            replies_rx: rx,
        })
    }

    fn addr(&self, server: ServerId) -> Option<SocketAddr> {
        self.addrs.get(&server).copied()
    }

    fn shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            for node in self.nodes.values() {
                for (_, conn) in node.peers.lock().drain() {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
                for (_, conn) in node.clients.write().drain() {
                    let _ = conn.lock().stream.shutdown(Shutdown::Both);
                }
            }
            for handle in self.threads.lock().drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections for one server and spawns a reader thread per connection.
fn acceptor(
    id: ServerId,
    listener: TcpListener,
    node: Arc<NodeState>,
    sink: EventSink,
    running: Arc<AtomicBool>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while running.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let conn_node = Arc::clone(&node);
                let conn_sink = Arc::clone(&sink);
                let conn_running = Arc::clone(&running);
                let handle = std::thread::Builder::new()
                    .name(format!("pocc-conn-{id}"))
                    .spawn(move || {
                        connection_reader(id, stream, conn_node, conn_sink, conn_running)
                    })
                    .expect("spawning a connection reader succeeds");
                readers.push(handle);
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    for handle in readers {
        let _ = handle.join();
    }
}

/// Which kind of endpoint a connection's hello announced.
enum Role {
    Client(ClientId),
    Peer(ServerId),
}

/// Reads one accepted connection: hello first, then requests (client connections) or
/// server messages (peer connections), pushed into the sink in arrival order. The chunk
/// buffer and frame decoder are allocated once and reused for the connection's lifetime.
fn connection_reader(
    node_id: ServerId,
    mut stream: TcpStream,
    node: Arc<NodeState>,
    sink: EventSink,
    running: Arc<AtomicBool>,
) {
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut decoder = FrameDecoder::new();
    let mut role: Option<Role> = None;
    'conn: while running.load(Ordering::Relaxed) {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => decoder.extend(&chunk[..n]),
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        }
        loop {
            let (kind, payload) = match decoder.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => break 'conn, // corrupt stream: drop the connection
            };
            let delivered = match &role {
                None => match kind {
                    HELLO_CLIENT => decode_hello_client(&payload).ok().and_then(|client| {
                        let writer = stream.try_clone().ok()?;
                        node.clients
                            .write()
                            .insert(client, Arc::new(Mutex::new(ConnWriter::new(writer))));
                        role = Some(Role::Client(client));
                        Some(())
                    }),
                    HELLO_SERVER => decode_hello_server(&payload).ok().map(|from| {
                        role = Some(Role::Peer(from));
                    }),
                    _ => None,
                },
                Some(Role::Client(client)) if kind == REQUEST => {
                    codec::decode_request(payload).ok().map(|request| {
                        sink(
                            node_id,
                            TransportEvent::Client {
                                client: *client,
                                request,
                            },
                        );
                    })
                }
                Some(Role::Peer(from)) if kind == SERVER_MSG => {
                    codec::decode_server_message(payload).ok().map(|message| {
                        sink(
                            node_id,
                            TransportEvent::Peer {
                                from: *from,
                                message,
                            },
                        );
                    })
                }
                Some(_) => None,
            };
            if delivered.is_none() {
                break 'conn; // protocol violation: drop the connection
            }
        }
    }
    if let Some(Role::Client(client)) = role {
        node.clients.write().remove(&client);
    }
}

/// One connection of a [`TcpClientPort`]: the write half plus its reader thread's handle.
struct PortConn {
    writer: ConnWriter,
    reader: Option<JoinHandle<()>>,
}

/// A client's sockets into the cluster: one lazily dialed connection per server the
/// session talks to, each with a reader thread funneling replies into one merged channel.
struct TcpClientPort {
    client: ClientId,
    addrs: HashMap<ServerId, SocketAddr>,
    conns: HashMap<ServerId, PortConn>,
    replies_tx: Sender<ClientReply>,
    replies_rx: Receiver<ClientReply>,
}

impl TcpClientPort {
    fn connect(&mut self, to: ServerId) -> Result<()> {
        let addr = self.addrs.get(&to).ok_or_else(|| Error::ChannelClosed {
            endpoint: format!("unknown server {to}"),
        })?;
        let stream = TcpStream::connect(addr).map_err(|err| Error::ChannelClosed {
            endpoint: format!("connect to {to}: {err}"),
        })?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(|err| Error::ChannelClosed {
            endpoint: format!("clone stream to {to}: {err}"),
        })?;
        let tx = self.replies_tx.clone();
        let reader = std::thread::Builder::new()
            .name(format!("pocc-client-{}", self.client))
            .spawn(move || port_reader(read_half, tx))
            .expect("spawning a client reader succeeds");
        let mut writer = ConnWriter::new(stream);
        writer.scratch.stage_hello_client(self.client)?;
        self.conns.insert(
            to,
            PortConn {
                writer,
                reader: Some(reader),
            },
        );
        Ok(())
    }
}

impl ClientPort for TcpClientPort {
    fn submit(&mut self, to: ServerId, request: ClientRequest) -> Result<()> {
        if !self.conns.contains_key(&to) {
            self.connect(to)?;
        }
        let flushed = {
            let conn = self.conns.get_mut(&to).expect("just connected");
            conn.writer.scratch.stage_request(&request)?;
            conn.writer.flush()
        };
        flushed.map_err(|err| {
            self.conns.remove(&to);
            Error::ChannelClosed {
                endpoint: format!("send to {to}: {err}"),
            }
        })
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ClientReply> {
        self.replies_rx
            .recv_timeout(timeout)
            .map_err(|_| Error::ChannelClosed {
                endpoint: format!("reply stream of {}", self.client),
            })
    }
}

impl Drop for TcpClientPort {
    fn drop(&mut self) {
        for (_, mut conn) in self.conns.drain() {
            // Shutting the socket down unblocks the reader thread (clones share it).
            let _ = conn.writer.stream.shutdown(Shutdown::Both);
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Reads replies off one client connection into the port's merged reply channel.
/// Exits when the socket closes (port drop, server shutdown) or the port is gone.
fn port_reader(mut stream: TcpStream, tx: Sender<ClientReply>) {
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut decoder = FrameDecoder::new();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => decoder.extend(&chunk[..n]),
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => return,
        }
        loop {
            match decoder.next_frame() {
                Ok(Some((REPLY, payload))) => match codec::decode_reply(payload) {
                    Ok(reply) => {
                        if tx.send(reply).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                },
                Ok(Some(_)) => return, // protocol violation
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{DependencyVector, Key, LatencyMatrix, Timestamp};

    fn config() -> Config {
        Config::builder()
            .num_replicas(2)
            .num_partitions(1)
            .latency(LatencyMatrix::uniform(
                2,
                Duration::from_micros(10),
                Duration::from_millis(1),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn requests_replies_and_peer_messages_cross_real_sockets() {
        let (tx, rx) = unbounded();
        let sink: EventSink = Arc::new(move |to, event| {
            let _ = tx.send((to, event));
        });
        let t = TcpTransport::start(&config(), sink).unwrap();
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(1u16, 0u32);
        assert!(t.addr(a).is_some());

        // Client request in, reply out.
        let mut port = t.client_port(ClientId(5));
        port.submit(
            a,
            ClientRequest::Get {
                key: Key(3),
                rdv: DependencyVector::zero(2),
            },
        )
        .unwrap();
        let (to, event) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(to, a);
        assert!(matches!(
            event,
            TransportEvent::Client {
                client: ClientId(5),
                ..
            }
        ));
        t.reply(
            a,
            ClientId(5),
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        assert!(matches!(
            port.recv_timeout(Duration::from_secs(5)).unwrap(),
            ClientReply::Put { .. }
        ));

        // Peer messages stage until the flush, then arrive in order.
        for ts in 1..=3u64 {
            t.send_server(
                a,
                b,
                ServerMessage::Heartbeat {
                    clock: Timestamp(ts),
                },
            );
        }
        t.flush(a);
        for ts in 1..=3u64 {
            let (to, event) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(to, b);
            match event {
                TransportEvent::Peer { from, message } => {
                    assert_eq!(from, a);
                    assert_eq!(
                        message,
                        ServerMessage::Heartbeat {
                            clock: Timestamp(ts)
                        }
                    );
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(port);
        t.shutdown();
    }
}
