//! The in-process channel transport.
//!
//! Moves messages between node threads without any syscalls: client requests and replies
//! cross `crossbeam` channels, and server-to-server traffic either goes straight into the
//! destination's sink (intra-DC) or through a delay thread that emulates the configured
//! wide-area latency (inter-DC), exactly like the simulator's latency model. Per-link
//! FIFO order is preserved because the delay per DC pair is constant, so deadlines on a
//! link are non-decreasing.
//!
//! This is the reference backend: it runs the same node logic as the TCP transport with
//! no wire in between, which is what lets the differential suite separate protocol bugs
//! from transport bugs.

use crate::transport::{ClientPort, EventSink, Transport, TransportEvent};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use pocc_proto::{ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Config, Error, Result, ServerId};
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A message waiting in the delay thread for its delivery deadline.
struct Delayed {
    deliver_at: Instant,
    from: ServerId,
    to: ServerId,
    message: ServerMessage,
}

/// Below this one-way delay a message is delivered inline instead of being priced
/// through the delay thread: the channel hop itself already costs on that order.
const DIRECT_DELIVERY: Duration = Duration::from_micros(500);

/// The in-process channel backend. See the module docs.
pub struct ChannelTransport {
    config: Config,
    sink: EventSink,
    clients: Arc<RwLock<HashMap<ClientId, Sender<ClientReply>>>>,
    delays: Sender<Delayed>,
    delay_thread: Mutex<Option<JoinHandle<()>>>,
    running: Arc<AtomicBool>,
}

impl ChannelTransport {
    /// Starts the backend: spawns the delay thread and returns the shared handle.
    pub fn start(config: Config, sink: EventSink) -> Arc<ChannelTransport> {
        let (tx, rx) = unbounded();
        let running = Arc::new(AtomicBool::new(true));
        let thread_sink = Arc::clone(&sink);
        let thread_running = Arc::clone(&running);
        let handle = std::thread::Builder::new()
            .name("pocc-net-delay".into())
            .spawn(move || delay_thread(thread_sink, rx, thread_running))
            .expect("spawning the delay thread succeeds");
        Arc::new(ChannelTransport {
            config,
            sink,
            clients: Arc::new(RwLock::new(HashMap::new())),
            delays: tx,
            delay_thread: Mutex::new(Some(handle)),
            running,
        })
    }
}

impl Transport for ChannelTransport {
    fn send_server(&self, from: ServerId, to: ServerId, message: ServerMessage) {
        let delay = self.config.latency.between(from.replica, to.replica);
        if delay <= DIRECT_DELIVERY {
            (self.sink)(to, TransportEvent::Peer { from, message });
        } else {
            let _ = self.delays.send(Delayed {
                deliver_at: Instant::now() + delay,
                from,
                to,
                message,
            });
        }
    }

    fn reply(&self, _from: ServerId, client: ClientId, reply: ClientReply) {
        if let Some(tx) = self.clients.read().get(&client) {
            let _ = tx.send(reply);
        }
    }

    fn flush(&self, _from: ServerId) {
        // Channel sends are never staged; there is nothing to flush.
    }

    fn client_port(&self, client: ClientId) -> Box<dyn ClientPort> {
        let (tx, rx) = unbounded();
        self.clients.write().insert(client, tx);
        Box::new(ChannelClientPort {
            client,
            sink: Arc::clone(&self.sink),
            replies: rx,
            clients: Arc::clone(&self.clients),
        })
    }

    fn addr(&self, _server: ServerId) -> Option<SocketAddr> {
        None
    }

    fn shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            // The delay thread notices `running` flip on its next timeout tick.
            if let Some(handle) = self.delay_thread.lock().take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's view of the channel backend: requests go straight into the destination
/// node's sink (clients are collocated with their data center, so no delay applies) and
/// replies arrive on a private channel.
struct ChannelClientPort {
    client: ClientId,
    sink: EventSink,
    replies: Receiver<ClientReply>,
    clients: Arc<RwLock<HashMap<ClientId, Sender<ClientReply>>>>,
}

impl ClientPort for ChannelClientPort {
    fn submit(&mut self, to: ServerId, request: ClientRequest) -> Result<()> {
        (self.sink)(
            to,
            TransportEvent::Client {
                client: self.client,
                request,
            },
        );
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<ClientReply> {
        self.replies
            .recv_timeout(timeout)
            .map_err(|_| Error::ChannelClosed {
                endpoint: format!("reply channel of {}", self.client),
            })
    }
}

impl Drop for ChannelClientPort {
    fn drop(&mut self) {
        self.clients.write().remove(&self.client);
    }
}

/// Holds cross-DC messages until their delivery deadline, then pushes them into the sink.
fn delay_thread(sink: EventSink, rx: Receiver<Delayed>, running: Arc<AtomicBool>) {
    struct Pending(Delayed);
    impl PartialEq for Pending {
        fn eq(&self, other: &Self) -> bool {
            self.0.deliver_at == other.0.deliver_at
        }
    }
    impl Eq for Pending {}
    impl PartialOrd for Pending {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Pending {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse: the binary heap must pop the earliest deadline first.
            other.0.deliver_at.cmp(&self.0.deliver_at)
        }
    }

    let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
    while running.load(Ordering::Relaxed) || !heap.is_empty() {
        let now = Instant::now();
        while let Some(head) = heap.peek() {
            if head.0.deliver_at <= now {
                let Pending(d) = heap.pop().expect("peeked element exists");
                sink(
                    d.to,
                    TransportEvent::Peer {
                        from: d.from,
                        message: d.message,
                    },
                );
            } else {
                break;
            }
        }
        let timeout = heap
            .peek()
            .map(|head| head.0.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5));
        match rx.recv_timeout(timeout.max(Duration::from_micros(100))) {
            Ok(delayed) => heap.push(Pending(delayed)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                if heap.is_empty() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use pocc_types::{DependencyVector, Key, LatencyMatrix, Timestamp};

    fn config() -> Config {
        Config::builder()
            .num_replicas(2)
            .num_partitions(2)
            .latency(LatencyMatrix::uniform(
                2,
                Duration::from_micros(10),
                Duration::from_millis(5),
            ))
            .build()
            .unwrap()
    }

    type EventLog = Arc<PlMutex<Vec<(ServerId, String)>>>;

    fn collecting_sink() -> (EventSink, EventLog) {
        let events = Arc::new(PlMutex::new(Vec::new()));
        let sink_events = Arc::clone(&events);
        let sink: EventSink = Arc::new(move |to, event| {
            sink_events.lock().push((to, format!("{event:?}")));
        });
        (sink, events)
    }

    #[test]
    fn intra_dc_messages_deliver_inline() {
        let (sink, events) = collecting_sink();
        let t = ChannelTransport::start(config(), sink);
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(0u16, 1u32);
        t.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert_eq!(events.lock().len(), 1, "no delay thread hop within a DC");
        t.shutdown();
    }

    #[test]
    fn cross_dc_messages_arrive_after_the_configured_delay() {
        let (sink, events) = collecting_sink();
        let t = ChannelTransport::start(config(), sink);
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(1u16, 0u32);
        let sent = Instant::now();
        t.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert!(events.lock().is_empty(), "WAN traffic is not inline");
        while events.lock().is_empty() {
            assert!(
                sent.elapsed() < Duration::from_secs(2),
                "message never arrived"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(sent.elapsed() >= Duration::from_millis(5));
        t.shutdown();
    }

    #[test]
    fn client_ports_submit_and_receive() {
        let (sink, events) = collecting_sink();
        let t = ChannelTransport::start(config(), sink);
        let a = ServerId::new(0u16, 0u32);
        let mut port = t.client_port(ClientId(7));
        port.submit(
            a,
            ClientRequest::Get {
                key: Key(1),
                rdv: DependencyVector::zero(2),
            },
        )
        .unwrap();
        assert_eq!(events.lock().len(), 1);
        t.reply(
            a,
            ClientId(7),
            ClientReply::Put {
                update_time: Timestamp(3),
            },
        );
        assert!(port.recv_timeout(Duration::from_secs(1)).is_ok());
        // Unknown clients are dropped silently; a dropped port unregisters itself.
        t.reply(
            a,
            ClientId(99),
            ClientReply::Put {
                update_time: Timestamp(3),
            },
        );
        drop(port);
        t.reply(
            a,
            ClientId(7),
            ClientReply::Put {
                update_time: Timestamp(4),
            },
        );
        t.shutdown();
    }
}
