//! Length-prefixed framing for the TCP transport.
//!
//! Every frame is `[len: u32 LE][kind: u8][payload]`, where `len` counts the kind byte
//! plus the payload. The payload of [`REQUEST`]/[`REPLY`]/[`SERVER_MSG`] frames is exactly
//! one message in the `pocc-proto` wire codec (the codec rejects trailing bytes, so a
//! frame can never smuggle a second message). The two hello kinds carry the tiny
//! fixed-size identity payloads a connection announces itself with.
//!
//! The framer is IO-free: [`FrameWriter`] stages any number of frames into one reused
//! [`BytesMut`] scratch (so a flush is a single `write` call and steady-state encoding
//! allocates nothing), and [`FrameDecoder`] accumulates raw reads and yields complete
//! frames, handling partial reads, frames split across reads and several frames per read.

use bytes::{BufMut, Bytes, BytesMut};
use pocc_proto::{codec, ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Error, Result, ServerId};

/// First frame on a client connection: `[client_id: u64 LE]`.
pub const HELLO_CLIENT: u8 = 0;
/// First frame on a server-to-server connection: `[replica: u16 LE][partition: u32 LE]`.
pub const HELLO_SERVER: u8 = 1;
/// A [`ClientRequest`] in the `pocc-proto` codec.
pub const REQUEST: u8 = 2;
/// A [`ClientReply`] in the `pocc-proto` codec.
pub const REPLY: u8 = 3;
/// A [`ServerMessage`] in the `pocc-proto` codec.
pub const SERVER_MSG: u8 = 4;

/// Upper bound on `len`; larger frames are rejected before any buffering happens, so a
/// corrupt or malicious length prefix cannot make the decoder allocate without bound.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of framing overhead per message (`len` prefix plus the kind byte).
pub const FRAME_HEADER: usize = 5;

/// Stages frames into one reused scratch buffer.
///
/// `stage_*` appends a frame (reserving the length slot, encoding the message in place
/// through the codec's `encode_*_into` and backfilling the length); the connection then
/// writes [`FrameWriter::bytes`] with a single `write` call and [`FrameWriter::clear`]s.
/// The backing allocation is retained across flushes.
#[derive(Default)]
pub struct FrameWriter {
    buf: BytesMut,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> Self {
        FrameWriter {
            buf: BytesMut::with_capacity(16 * 1024),
        }
    }

    /// The staged, wire-ready bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of staged bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops the staged bytes, retaining the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Stages a frame of `kind` whose payload `encode` writes directly into the scratch.
    /// On encode failure the partially written frame is rolled back.
    fn stage_with(
        &mut self,
        kind: u8,
        encode: impl FnOnce(&mut BytesMut) -> Result<()>,
    ) -> Result<()> {
        let at = self.buf.len();
        self.buf.put_u32_le(0); // length slot, backfilled below
        self.buf.put_u8(kind);
        if let Err(err) = encode(&mut self.buf) {
            self.buf.truncate(at);
            return Err(err);
        }
        let len = self.buf.len() - at - 4;
        if len > MAX_FRAME {
            self.buf.truncate(at);
            return Err(Error::Codec {
                reason: format!("frame of {len} bytes exceeds MAX_FRAME"),
            });
        }
        self.buf[at..at + 4].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }

    /// Stages a client hello announcing `client`.
    pub fn stage_hello_client(&mut self, client: ClientId) -> Result<()> {
        self.stage_with(HELLO_CLIENT, |buf| {
            buf.put_u64_le(client.raw());
            Ok(())
        })
    }

    /// Stages a server hello announcing `server`.
    pub fn stage_hello_server(&mut self, server: ServerId) -> Result<()> {
        self.stage_with(HELLO_SERVER, |buf| {
            buf.put_u16_le(server.replica.0);
            buf.put_u32_le(server.partition.0);
            Ok(())
        })
    }

    /// Stages a client request frame.
    pub fn stage_request(&mut self, request: &ClientRequest) -> Result<()> {
        self.stage_with(REQUEST, |buf| codec::encode_request_into(request, buf))
    }

    /// Stages a client reply frame.
    pub fn stage_reply(&mut self, reply: &ClientReply) -> Result<()> {
        self.stage_with(REPLY, |buf| codec::encode_reply_into(reply, buf))
    }

    /// Stages a server-to-server message frame.
    pub fn stage_server_message(&mut self, message: &ServerMessage) -> Result<()> {
        self.stage_with(SERVER_MSG, |buf| {
            codec::encode_server_message_into(message, buf)
        })
    }
}

/// Decodes the hello-client payload.
pub fn decode_hello_client(payload: &Bytes) -> Result<ClientId> {
    if payload.len() != 8 {
        return Err(Error::Codec {
            reason: format!(
                "client hello payload of {} bytes, expected 8",
                payload.len()
            ),
        });
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(payload);
    Ok(ClientId(u64::from_le_bytes(raw)))
}

/// Decodes the hello-server payload.
pub fn decode_hello_server(payload: &Bytes) -> Result<ServerId> {
    if payload.len() != 6 {
        return Err(Error::Codec {
            reason: format!(
                "server hello payload of {} bytes, expected 6",
                payload.len()
            ),
        });
    }
    let replica = u16::from_le_bytes([payload[0], payload[1]]);
    let partition = u32::from_le_bytes([payload[2], payload[3], payload[4], payload[5]]);
    Ok(ServerId::new(replica, partition))
}

/// Reassembles frames from a raw byte stream.
///
/// Feed every read with [`FrameDecoder::extend`], then drain complete frames with
/// [`FrameDecoder::next_frame`]. The internal buffer is reused across reads; consumed
/// bytes are compacted away lazily so steady-state decoding does not reallocate.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, data: &[u8]) {
        // Compact before growing: once everything buffered was consumed the whole buffer
        // can be recycled, and a large consumed prefix is worth the memmove.
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame as `(kind, payload)`, or `None` if the buffered
    /// bytes end mid-frame. Oversized and kind-less frames are rejected.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Bytes)>> {
        let available = self.buffered();
        if available < 4 {
            return Ok(None);
        }
        let at = self.start;
        let len = u32::from_le_bytes([
            self.buf[at],
            self.buf[at + 1],
            self.buf[at + 2],
            self.buf[at + 3],
        ]) as usize;
        if len == 0 {
            return Err(Error::Codec {
                reason: "zero-length frame (missing kind byte)".into(),
            });
        }
        if len > MAX_FRAME {
            return Err(Error::Codec {
                reason: format!("frame of {len} bytes exceeds MAX_FRAME"),
            });
        }
        if available < 4 + len {
            return Ok(None);
        }
        let kind = self.buf[at + 4];
        let payload = Bytes::copy_from_slice(&self.buf[at + 5..at + 4 + len]);
        self.start += 4 + len;
        Ok(Some((kind, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{DependencyVector, Key, Timestamp};

    fn sample_request() -> ClientRequest {
        ClientRequest::Get {
            key: Key(7),
            rdv: DependencyVector::zero(3),
        }
    }

    fn drain(decoder: &mut FrameDecoder) -> Vec<(u8, Bytes)> {
        let mut frames = Vec::new();
        while let Some(frame) = decoder.next_frame().unwrap() {
            frames.push(frame);
        }
        frames
    }

    #[test]
    fn frames_round_trip_through_the_decoder() {
        let mut w = FrameWriter::new();
        w.stage_hello_client(ClientId(42)).unwrap();
        w.stage_request(&sample_request()).unwrap();
        w.stage_reply(&ClientReply::Put {
            update_time: Timestamp(9),
        })
        .unwrap();
        let mut d = FrameDecoder::new();
        d.extend(w.bytes());
        let frames = drain(&mut d);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].0, HELLO_CLIENT);
        assert_eq!(decode_hello_client(&frames[0].1).unwrap(), ClientId(42));
        assert_eq!(frames[1].0, REQUEST);
        assert_eq!(
            codec::decode_request(frames[1].1.clone()).unwrap(),
            sample_request()
        );
        assert_eq!(frames[2].0, REPLY);
        assert_eq!(
            codec::decode_reply(frames[2].1.clone()).unwrap(),
            ClientReply::Put {
                update_time: Timestamp(9)
            }
        );
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn partial_reads_and_split_frames_reassemble() {
        let mut w = FrameWriter::new();
        w.stage_hello_server(ServerId::new(1u16, 3u32)).unwrap();
        w.stage_server_message(&ServerMessage::Heartbeat {
            clock: Timestamp(5),
        })
        .unwrap();
        let wire = w.bytes().to_vec();

        // Feed the stream one byte at a time: every frame arrives split across reads.
        let mut d = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &wire {
            d.extend(&[*byte]);
            frames.extend(drain(&mut d));
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            decode_hello_server(&frames[0].1).unwrap(),
            ServerId::new(1u16, 3u32)
        );
        assert_eq!(
            codec::decode_server_message(frames[1].1.clone()).unwrap(),
            ServerMessage::Heartbeat {
                clock: Timestamp(5)
            }
        );

        // A split mid-length-prefix also reassembles.
        let mut d = FrameDecoder::new();
        d.extend(&wire[..2]);
        assert!(d.next_frame().unwrap().is_none());
        d.extend(&wire[2..]);
        assert_eq!(drain(&mut d).len(), 2);
    }

    #[test]
    fn writer_clear_retains_staging_across_flushes() {
        let mut w = FrameWriter::new();
        w.stage_request(&sample_request()).unwrap();
        let first = w.bytes().to_vec();
        w.clear();
        assert!(w.is_empty());
        w.stage_request(&sample_request()).unwrap();
        assert_eq!(
            w.bytes(),
            &first[..],
            "staging is deterministic after clear"
        );
    }

    #[test]
    fn oversized_frames_are_rejected() {
        // A length prefix beyond MAX_FRAME must error immediately, without waiting for
        // (or trying to buffer) the advertised payload.
        let mut d = FrameDecoder::new();
        let len = (MAX_FRAME as u32 + 1).to_le_bytes();
        d.extend(&len);
        let err = d.next_frame().unwrap_err();
        assert!(matches!(err, Error::Codec { .. }), "got {err:?}");
    }

    #[test]
    fn zero_length_frames_are_rejected() {
        let mut d = FrameDecoder::new();
        d.extend(&0u32.to_le_bytes());
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut w = FrameWriter::new();
        w.stage_hello_client(ClientId(1)).unwrap();
        let wire = w.bytes().to_vec();
        let mut d = FrameDecoder::new();
        for _ in 0..1000 {
            d.extend(&wire);
            assert!(d.next_frame().unwrap().is_some());
        }
        assert_eq!(d.buffered(), 0);
        // The backing buffer was recycled rather than growing with every frame.
        assert!(d.buf.len() <= 2 * 64 * 1024);
    }
}
