//! Network substrates: the simulated geo-replicated network and the real transports.
//!
//! The paper's system model (§II-C) assumes point-to-point **lossless FIFO channels**
//! between nodes; the evaluation runs on three AWS regions connected by wide-area links.
//! This crate provides that substrate twice over:
//!
//! For the discrete-event simulator:
//!
//! * [`LatencyModel`] — per-link one-way delays (LAN within a data center, WAN between
//!   data centers) with optional bounded random jitter,
//! * [`SimNetwork`] — computes delivery times for messages while preserving per-link FIFO
//!   order, holds traffic for partitioned link pairs and releases it (still in order) when
//!   the partition heals. Messages are never dropped, matching the lossless-channel
//!   assumption.
//!
//! The network does not own an event queue: the simulator asks it *when* each message
//! should be delivered and schedules the delivery itself. This keeps the network model
//! independently testable.
//!
//! For the threaded runtime, the [`transport`] module defines the pluggable
//! [`transport::Transport`] trait with two real backends — in-process channels
//! ([`transport::ChannelTransport`]) and TCP sockets with length-prefixed frames and
//! batched writes ([`transport::TcpTransport`]) — over the same sans-IO node logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod network;
pub mod transport;

pub use latency::LatencyModel;
pub use network::{NetworkStats, SimNetwork};
pub use transport::{ClientPort, EventSink, Transport, TransportEvent, TransportKind};
