//! The simulated geo-replicated network substrate.
//!
//! The paper's system model (§II-C) assumes point-to-point **lossless FIFO channels**
//! between nodes; the evaluation runs on three AWS regions connected by wide-area links.
//! This crate models that substrate for the discrete-event simulator:
//!
//! * [`LatencyModel`] — per-link one-way delays (LAN within a data center, WAN between
//!   data centers) with optional bounded random jitter,
//! * [`SimNetwork`] — computes delivery times for messages while preserving per-link FIFO
//!   order, holds traffic for partitioned link pairs and releases it (still in order) when
//!   the partition heals. Messages are never dropped, matching the lossless-channel
//!   assumption.
//!
//! The network does not own an event queue: the simulator asks it *when* each message
//! should be delivered and schedules the delivery itself. This keeps the network model
//! independently testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod network;

pub use latency::LatencyModel;
pub use network::{NetworkStats, SimNetwork};
