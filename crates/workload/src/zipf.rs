//! A zipfian rank sampler.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank + 1)^theta`.
///
/// The paper's workloads use `theta = 0.99` over one million keys per partition. The
/// sampler uses the rejection-inversion method of Hörmann and Derflinger ("Rejection-
/// inversion to generate variates from monotone discrete distributions"), the same
/// algorithm used by YCSB-style generators: O(1) per sample, no per-rank table, exact for
/// any `n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    /// 1 - theta, cached.
    q: f64,
    /// H(x) evaluated at 1.5 ("h_integral_x1" in the original derivation).
    h_x1: f64,
    /// H(n + 0.5).
    h_n: f64,
    /// Threshold used by the rejection test.
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `theta` (must be in `(0, 1) ∪ (1, ∞)`
    /// or exactly 1.0; `theta = 0` degenerates to uniform and is also accepted).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty domain");
        assert!(theta >= 0.0, "negative zipf exponent");
        let q = 1.0 - theta;
        let h = |x: f64| -> f64 {
            if (q).abs() < 1e-12 {
                x.ln()
            } else {
                x.powf(q) / q
            }
        };
        let h_x1 = h(1.5) - 1.0_f64.powf(-theta);
        let h_n = h(n as f64 + 0.5);
        let s = 2.0 - {
            // h_inverse(h(2.5) - 2^-theta) ... simplified constant from the reference
            // implementation: s = 2 - h_inv(h(2.5) - 2^-theta)
            let hi = h(2.5) - 2f64.powf(-theta);
            if q.abs() < 1e-12 {
                hi.exp()
            } else {
                (hi * q).powf(1.0 / q)
            }
        };
        Zipf {
            n,
            theta,
            q,
            h_x1,
            h_n,
            s,
        }
    }

    /// The number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn h(&self, x: f64) -> f64 {
        if self.q.abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(self.q) / self.q
        }
    }

    fn h_inverse(&self, x: f64) -> f64 {
        if self.q.abs() < 1e-12 {
            x.exp()
        } else {
            (x * self.q).powf(1.0 / self.q)
        }
    }

    /// Draws one rank in `0..n`, with rank 0 the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inverse(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.s || u >= self.h(k + 0.5) - (-(k.ln() * self.theta)).exp() {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, theta: f64, samples: usize, seed: u64) -> Vec<usize> {
        let zipf = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; n as usize];
        for _ in 0..samples {
            h[zipf.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(1_000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1_000);
        }
        assert_eq!(zipf.n(), 1_000);
        assert!((zipf.theta() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn low_ranks_are_far_more_popular_with_high_theta() {
        let h = histogram(1_000, 0.99, 100_000, 42);
        // Rank 0 should get far more hits than a mid-range rank.
        assert!(h[0] > 20 * h[500].max(1), "h[0]={} h[500]={}", h[0], h[500]);
        // And the head (top 10%) should take the majority of the mass for theta ~ 1.
        let head: usize = h[..100].iter().sum();
        assert!(head > 50_000, "head mass {head}");
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let h = histogram(100, 0.0, 100_000, 7);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            *max < 2 * *min,
            "uniform histogram too skewed: {min}..{max}"
        );
    }

    #[test]
    fn single_rank_domain_always_returns_zero() {
        let zipf = Zipf::new(1, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn ranks_over_large_domain_remain_in_range() {
        let zipf = Zipf::new(1_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1_000_000);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = histogram(100, 0.99, 1_000, 5);
        let b = histogram(100, 0.99, 1_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_is_rejected() {
        Zipf::new(0, 0.99);
    }
}
