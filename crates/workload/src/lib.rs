//! Workload generation for the POCC reproduction.
//!
//! The paper's evaluation (§V-A/B/C) drives both systems with closed-loop clients that:
//!
//! * pick keys with a **zipfian** distribution (parameter 0.99) over one million keys per
//!   partition,
//! * use small 8-byte keys and values,
//! * run either a **GET:PUT mix** (`N` GETs, each on a distinct partition, followed by one
//!   PUT on a uniformly random partition) or a **transactional mix** (one RO-TX spanning
//!   `p` distinct partitions followed by one PUT),
//! * wait a 25 ms *think time* between operations.
//!
//! This crate reproduces those generators deterministically (seeded RNG), so every
//! simulation run and benchmark is repeatable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod keyspace;
mod mix;
mod zipf;

pub use keyspace::KeySpace;
pub use mix::{Operation, OperationKind, WorkloadGenerator, WorkloadMix};
pub use zipf::Zipf;
