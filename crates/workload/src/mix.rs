//! Workload mixes and the per-client operation generator.

use crate::{KeySpace, Zipf};
use pocc_types::{Key, PartitionId, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// The kind of operation to issue next.
#[derive(Clone, PartialEq, Debug)]
pub enum OperationKind {
    /// Read a single key.
    Get {
        /// The key to read.
        key: Key,
    },
    /// Write a single key.
    Put {
        /// The key to write.
        key: Key,
        /// The value to write (8 bytes, as in the paper's workloads).
        value: Value,
    },
    /// Read a set of keys in one causally consistent snapshot.
    RoTx {
        /// The keys to read; they span distinct partitions.
        keys: Vec<Key>,
    },
}

/// One operation produced by a [`WorkloadGenerator`].
#[derive(Clone, PartialEq, Debug)]
pub struct Operation {
    /// What to do.
    pub kind: OperationKind,
    /// The partition the operation is routed to (the coordinator partition for RO-TX).
    pub target_partition: PartitionId,
}

/// The two workload families of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WorkloadMix {
    /// §V-B: `gets_per_put` consecutive GETs, each on a distinct partition, followed by one
    /// PUT on a uniformly random partition. A "32:1 GET:PUT workload" is
    /// `GetPut { gets_per_put: 32 }`.
    GetPut {
        /// Number of GETs per PUT.
        gets_per_put: usize,
    },
    /// §V-C: one RO-TX reading one key from each of `partitions_per_tx` distinct
    /// partitions, followed by one PUT on a uniformly random partition.
    TxPut {
        /// Number of distinct partitions contacted by each transaction.
        partitions_per_tx: usize,
    },
}

impl WorkloadMix {
    /// Preset: the read-heavy end of the paper's sweep — 31 GETs per PUT (~3% writes),
    /// typical of read-mostly serving workloads.
    pub fn read_heavy() -> WorkloadMix {
        WorkloadMix::GetPut { gets_per_put: 31 }
    }

    /// Preset: the write-heavy end of the paper's sweep — one GET per PUT (50% writes),
    /// the most update-intensive single-key workload of §V-B.
    pub fn write_heavy() -> WorkloadMix {
        WorkloadMix::GetPut { gets_per_put: 1 }
    }

    /// Preset: the balanced default used by the simulator and the baseline benchmark
    /// scenario — 8 GETs per PUT.
    pub fn balanced() -> WorkloadMix {
        WorkloadMix::GetPut { gets_per_put: 8 }
    }

    /// The fraction of issued operations that are writes, used to sanity-check workload
    /// configuration and to report the write intensity in benchmark output.
    pub fn write_fraction(&self) -> f64 {
        match self {
            WorkloadMix::GetPut { gets_per_put } => 1.0 / (*gets_per_put as f64 + 1.0),
            WorkloadMix::TxPut { .. } => 0.5,
        }
    }
}

/// A deterministic, per-client operation generator.
///
/// Each client owns one generator seeded from the harness seed and its client id, so runs
/// are reproducible and clients are mutually independent.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    keyspace: KeySpace,
    zipf: Zipf,
    mix: WorkloadMix,
    rng: StdRng,
    queue: VecDeque<Operation>,
    ops_generated: u64,
    value_size: usize,
}

impl WorkloadGenerator {
    /// Creates a generator over `keyspace` with zipf exponent `theta` and the given mix.
    /// Values written by PUTs are 8 bytes, as in the paper's workloads; use
    /// [`with_value_size`](WorkloadGenerator::with_value_size) for larger payloads.
    pub fn new(keyspace: KeySpace, theta: f64, mix: WorkloadMix, seed: u64) -> Self {
        let zipf = Zipf::new(keyspace.keys_per_partition(), theta);
        WorkloadGenerator {
            keyspace,
            zipf,
            mix,
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            ops_generated: 0,
            value_size: 8,
        }
    }

    /// Sets the size in bytes of the values this generator writes (the large-value
    /// benchmark scenarios sweep this; the paper's workloads use 8 bytes).
    pub fn with_value_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "values must be at least one byte");
        self.value_size = bytes;
        self
    }

    /// The size in bytes of the values this generator writes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// The configured mix.
    pub fn mix(&self) -> WorkloadMix {
        self.mix
    }

    /// Total operations handed out so far.
    pub fn ops_generated(&self) -> u64 {
        self.ops_generated
    }

    /// A zipf-chosen key within `partition`.
    fn key_in(&mut self, partition: PartitionId) -> Key {
        let rank = self.zipf.sample(&mut self.rng);
        self.keyspace.key(partition, rank)
    }

    /// A uniformly random partition.
    fn random_partition(&mut self) -> PartitionId {
        PartitionId::from(self.rng.gen_range(0..self.keyspace.num_partitions()))
    }

    /// `count` distinct partitions chosen uniformly at random (all of them when `count`
    /// reaches the deployment size).
    fn distinct_partitions(&mut self, count: usize) -> Vec<PartitionId> {
        let n = self.keyspace.num_partitions();
        let count = count.min(n);
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(&mut self.rng);
        all.truncate(count);
        all.into_iter().map(PartitionId::from).collect()
    }

    /// A `value_size`-byte value derived from the operation counter (8 bytes by default,
    /// as in the paper; the counter keeps values distinct across a client's writes).
    fn value(&self) -> Value {
        let counter = self.ops_generated.to_le_bytes();
        if self.value_size == counter.len() {
            return Value::from(self.ops_generated);
        }
        let mut bytes = vec![0u8; self.value_size];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = counter[i % counter.len()];
        }
        Value::from(bytes)
    }

    fn refill(&mut self) {
        match self.mix {
            WorkloadMix::GetPut { gets_per_put } => {
                for partition in self.distinct_partitions(gets_per_put) {
                    let key = self.key_in(partition);
                    self.queue.push_back(Operation {
                        kind: OperationKind::Get { key },
                        target_partition: partition,
                    });
                }
                let partition = self.random_partition();
                let key = self.key_in(partition);
                let value = self.value();
                self.queue.push_back(Operation {
                    kind: OperationKind::Put { key, value },
                    target_partition: partition,
                });
            }
            WorkloadMix::TxPut { partitions_per_tx } => {
                let partitions = self.distinct_partitions(partitions_per_tx);
                let coordinator = partitions[0];
                let keys: Vec<Key> = partitions.iter().map(|p| self.key_in(*p)).collect();
                self.queue.push_back(Operation {
                    kind: OperationKind::RoTx { keys },
                    target_partition: coordinator,
                });
                let partition = self.random_partition();
                let key = self.key_in(partition);
                let value = self.value();
                self.queue.push_back(Operation {
                    kind: OperationKind::Put { key, value },
                    target_partition: partition,
                });
            }
        }
    }

    /// The next operation of the workload.
    pub fn next_operation(&mut self) -> Operation {
        if self.queue.is_empty() {
            self.refill();
        }
        self.ops_generated += 1;
        self.queue.pop_front().expect("refill produced operations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_storage::partition_for_key;

    fn generator(mix: WorkloadMix) -> WorkloadGenerator {
        WorkloadGenerator::new(KeySpace::new(8, 1_000), 0.99, mix, 42)
    }

    #[test]
    fn get_put_cycle_has_the_right_shape() {
        let mut g = generator(WorkloadMix::GetPut { gets_per_put: 4 });
        let ops: Vec<Operation> = (0..10).map(|_| g.next_operation()).collect();
        // First cycle: 4 GETs on distinct partitions, then 1 PUT.
        let mut get_partitions = Vec::new();
        for op in &ops[..4] {
            match &op.kind {
                OperationKind::Get { key } => {
                    assert_eq!(partition_for_key(*key, 8), op.target_partition);
                    get_partitions.push(op.target_partition);
                }
                other => panic!("expected GET, got {other:?}"),
            }
        }
        get_partitions.sort();
        get_partitions.dedup();
        assert_eq!(get_partitions.len(), 4, "GETs must hit distinct partitions");
        assert!(matches!(ops[4].kind, OperationKind::Put { .. }));
        // Second cycle starts with GETs again.
        assert!(matches!(ops[5].kind, OperationKind::Get { .. }));
        assert_eq!(g.ops_generated(), 10);
    }

    #[test]
    fn tx_put_cycle_alternates_transactions_and_puts() {
        let mut g = generator(WorkloadMix::TxPut {
            partitions_per_tx: 5,
        });
        let tx = g.next_operation();
        match &tx.kind {
            OperationKind::RoTx { keys } => {
                assert_eq!(keys.len(), 5);
                let mut partitions: Vec<_> =
                    keys.iter().map(|k| partition_for_key(*k, 8)).collect();
                partitions.sort();
                partitions.dedup();
                assert_eq!(partitions.len(), 5, "keys must span distinct partitions");
                assert!(partitions.contains(&tx.target_partition));
            }
            other => panic!("expected RO-TX, got {other:?}"),
        }
        let put = g.next_operation();
        assert!(matches!(put.kind, OperationKind::Put { .. }));
    }

    #[test]
    fn tx_size_is_capped_at_the_number_of_partitions() {
        let mut g = generator(WorkloadMix::TxPut {
            partitions_per_tx: 100,
        });
        match g.next_operation().kind {
            OperationKind::RoTx { keys } => assert_eq!(keys.len(), 8),
            other => panic!("expected RO-TX, got {other:?}"),
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = generator(WorkloadMix::GetPut { gets_per_put: 8 });
        let mut b = generator(WorkloadMix::GetPut { gets_per_put: 8 });
        for _ in 0..100 {
            assert_eq!(a.next_operation(), b.next_operation());
        }
        let mut c = WorkloadGenerator::new(
            KeySpace::new(8, 1_000),
            0.99,
            WorkloadMix::GetPut { gets_per_put: 8 },
            43,
        );
        let ops_a: Vec<_> = (0..50).map(|_| a.next_operation()).collect();
        let ops_c: Vec<_> = (0..50).map(|_| c.next_operation()).collect();
        assert_ne!(ops_a, ops_c, "different seeds should diverge");
    }

    #[test]
    fn write_fractions_match_the_mix() {
        assert!(
            (WorkloadMix::GetPut { gets_per_put: 31 }.write_fraction() - 1.0 / 32.0).abs() < 1e-12
        );
        assert!(
            (WorkloadMix::TxPut {
                partitions_per_tx: 4
            }
            .write_fraction()
                - 0.5)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn put_values_are_eight_bytes() {
        let mut g = generator(WorkloadMix::GetPut { gets_per_put: 1 });
        for _ in 0..10 {
            if let OperationKind::Put { value, .. } = g.next_operation().kind {
                assert_eq!(value.len(), 8);
            }
        }
    }

    #[test]
    fn value_size_is_configurable() {
        for size in [1usize, 7, 8, 64, 4096] {
            let mut g = generator(WorkloadMix::GetPut { gets_per_put: 1 }).with_value_size(size);
            assert_eq!(g.value_size(), size);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..20 {
                if let OperationKind::Put { value, .. } = g.next_operation().kind {
                    assert_eq!(value.len(), size);
                    seen.insert(value);
                }
            }
            assert!(seen.len() > 1, "values must stay distinct across writes");
        }
    }

    #[test]
    fn mix_presets_have_the_expected_write_intensity() {
        assert_eq!(
            WorkloadMix::read_heavy(),
            WorkloadMix::GetPut { gets_per_put: 31 }
        );
        assert_eq!(
            WorkloadMix::write_heavy(),
            WorkloadMix::GetPut { gets_per_put: 1 }
        );
        assert!((WorkloadMix::write_heavy().write_fraction() - 0.5).abs() < 1e-12);
        assert!(WorkloadMix::read_heavy().write_fraction() < 0.04);
        assert_eq!(
            WorkloadMix::balanced(),
            WorkloadMix::GetPut { gets_per_put: 8 }
        );
    }

    #[test]
    fn keyspace_presets_expose_their_dimensions() {
        assert_eq!(KeySpace::paper(4).keys_per_partition(), 1_000_000);
        assert_eq!(KeySpace::smoke(4).keys_per_partition(), 500);
        assert_eq!(KeySpace::paper(4).num_partitions(), 4);
    }

    #[test]
    fn zipf_skew_concentrates_accesses_on_few_keys() {
        let mut g = generator(WorkloadMix::GetPut { gets_per_put: 8 });
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5_000 {
            if let OperationKind::Get { key } = g.next_operation().kind {
                *counts.entry(key).or_insert(0usize) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        let distinct = counts.len();
        // With theta=0.99 the most popular key is hit far more often than average.
        assert!(max > 10, "max key frequency {max}");
        assert!(distinct > 50, "distinct keys {distinct}");
    }
}
