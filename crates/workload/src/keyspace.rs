//! The key space: a deterministic mapping from (partition, popularity rank) to keys.
//!
//! The paper's workload picks keys *within each partition* with a zipfian distribution
//! (§V-A: one million key-value pairs per partition, zipf parameter 0.99). The generators
//! therefore need an efficient way to obtain "the `r`-th key of partition `p`" such that
//! the store's hash-based partitioning ([`partition_for_key`]) agrees that the key belongs
//! to `p`.
//!
//! Because the partitioning hash is a bijective SplitMix64 finalizer, we can simply invert
//! it: the `r`-th key of partition `p` is the preimage of the hash value `r * N + p`. The
//! inverse of the finalizer is computed once from the multiplicative inverses of its two
//! odd constants modulo 2^64.

use pocc_types::{Key, PartitionId};

/// Multiplicative inverse of an odd 64-bit integer modulo 2^64 (Newton–Hensel iteration).
fn mod_inverse_u64(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "only odd numbers are invertible modulo 2^64");
    let mut x = a; // correct to 3 bits
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

/// Inverse of `y = x ^ (x >> shift)`.
fn unxorshift(y: u64, shift: u32) -> u64 {
    let mut x = y;
    let mut s = shift;
    while s < 64 {
        x = y ^ (x >> shift);
        s += shift;
    }
    x
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
const C1: u64 = 0xBF58_476D_1CE4_E5B9;
const C2: u64 = 0x94D0_49BB_1331_11EB;

/// Inverse of the SplitMix64 finalizer used by [`partition_for_key`].
fn unmix(hash: u64) -> u64 {
    let c1_inv = mod_inverse_u64(C1);
    let c2_inv = mod_inverse_u64(C2);
    let mut z = hash;
    z = unxorshift(z, 31);
    z = z.wrapping_mul(c2_inv);
    z = unxorshift(z, 27);
    z = z.wrapping_mul(c1_inv);
    z = unxorshift(z, 30);
    z.wrapping_sub(GOLDEN)
}

/// A deterministic enumeration of the keys of every partition.
///
/// `KeySpace::key(p, r)` returns the key of popularity rank `r` (0 = most popular) within
/// partition `p`; distinct `(p, r)` pairs map to distinct keys, and
/// `partition_for_key(key, N) == p` always holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeySpace {
    num_partitions: usize,
    keys_per_partition: u64,
}

impl KeySpace {
    /// Creates a key space of `keys_per_partition` keys for each of `num_partitions`
    /// partitions. The paper's evaluation uses one million keys per partition; tests and
    /// examples use smaller spaces.
    pub fn new(num_partitions: usize, keys_per_partition: u64) -> Self {
        assert!(num_partitions > 0, "at least one partition");
        assert!(keys_per_partition > 0, "at least one key per partition");
        KeySpace {
            num_partitions,
            keys_per_partition,
        }
    }

    /// Preset: the paper's key-space dimensions — one million keys per partition (§V-A).
    pub fn paper(num_partitions: usize) -> Self {
        KeySpace::new(num_partitions, 1_000_000)
    }

    /// Preset: a tiny key space sized for smoke runs (CI benchmark gate, quick tests).
    /// Small enough that hot keys collide often, so skew effects stay visible.
    pub fn smoke(num_partitions: usize) -> Self {
        KeySpace::new(num_partitions, 500)
    }

    /// The number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The number of keys per partition.
    pub fn keys_per_partition(&self) -> u64 {
        self.keys_per_partition
    }

    /// The total number of keys across all partitions.
    pub fn total_keys(&self) -> u64 {
        self.keys_per_partition * self.num_partitions as u64
    }

    /// The key of rank `rank` within `partition`.
    pub fn key(&self, partition: PartitionId, rank: u64) -> Key {
        assert!(rank < self.keys_per_partition, "rank out of range");
        assert!(
            partition.index() < self.num_partitions,
            "partition out of range"
        );
        let hash = rank * self.num_partitions as u64 + partition.index() as u64;
        Key(unmix(hash))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_storage::partition_for_key;
    use std::collections::HashSet;

    #[test]
    fn keys_belong_to_their_partition() {
        let n = 7usize;
        let ks = KeySpace::new(n, 100);
        for p in 0..n {
            for r in 0..100u64 {
                let key = ks.key(PartitionId::from(p), r);
                assert_eq!(partition_for_key(key, n), PartitionId::from(p));
            }
        }
    }

    #[test]
    fn keys_are_distinct_across_ranks_and_partitions() {
        let ks = KeySpace::new(4, 250);
        let mut seen = HashSet::new();
        for p in 0..4usize {
            for r in 0..250u64 {
                assert!(seen.insert(ks.key(PartitionId::from(p), r)));
            }
        }
        assert_eq!(seen.len(), 1000);
        assert_eq!(ks.total_keys(), 1000);
    }

    #[test]
    fn accessors_report_dimensions() {
        let ks = KeySpace::new(32, 1_000_000);
        assert_eq!(ks.num_partitions(), 32);
        assert_eq!(ks.keys_per_partition(), 1_000_000);
        // Spot-check a large-rank key still lands in the right partition.
        let key = ks.key(PartitionId(31), 999_999);
        assert_eq!(partition_for_key(key, 32), PartitionId(31));
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn out_of_range_rank_is_rejected() {
        KeySpace::new(2, 10).key(PartitionId(0), 10);
    }

    #[test]
    #[should_panic(expected = "partition out of range")]
    fn out_of_range_partition_is_rejected() {
        KeySpace::new(2, 10).key(PartitionId(2), 0);
    }

    #[test]
    fn unmix_is_the_inverse_of_the_partition_hash() {
        // partition_for_key reduces the hash modulo N; unmix inverts the full 64-bit mix,
        // so mixing a recovered key must land exactly on the original hash value.
        for hash in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX / 3] {
            let key = unmix(hash);
            // Recompute the forward mix exactly as partition_for_key does.
            let mut z = key.wrapping_add(GOLDEN);
            z = (z ^ (z >> 30)).wrapping_mul(C1);
            z = (z ^ (z >> 27)).wrapping_mul(C2);
            z ^= z >> 31;
            assert_eq!(z, hash);
        }
    }
}
