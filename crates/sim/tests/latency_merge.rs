//! Property tests for [`LatencyStats::merge`].
//!
//! The scenario runner merges per-class latency aggregators (and, conceptually,
//! per-client streams) into one distribution, so the merge must behave like having
//! recorded every sample into a single aggregator:
//!
//! * counts, sums and maxima combine exactly;
//! * every quantile of the merged aggregator equals the quantile of a directly-recorded
//!   aggregator (bucket boundaries are shared, so merging is element-wise addition);
//! * merged quantiles are bounded by the per-part quantiles: strictly from below, and
//!   from above up to one log-linear bucket width (~3.1%), which is the histogram's
//!   advertised resolution.

use pocc_sim::LatencyStats;
use proptest::prelude::*;
use std::time::Duration;

fn stats_from(samples: &[u64]) -> LatencyStats {
    let mut s = LatencyStats::new();
    for &us in samples {
        s.record(Duration::from_micros(us));
    }
    s
}

/// The relative tolerance of one log-linear bucket (32 sub-buckets per octave), plus
/// 1 µs of absolute slack for the exact small-value buckets.
fn upper_tolerance(d: Duration) -> Duration {
    d.mul_f64(1.0 + 1.0 / 32.0) + Duration::from_micros(1)
}

const QUANTILES: [f64; 6] = [0.10, 0.50, 0.90, 0.95, 0.99, 0.999];

proptest! {
    #[test]
    fn merge_equals_direct_recording(
        a in proptest::collection::vec(0u64..2_000_000, 1..300),
        b in proptest::collection::vec(0u64..2_000_000, 1..300),
    ) {
        let mut merged = stats_from(&a);
        merged.merge(&stats_from(&b));

        let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = stats_from(&all);

        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.mean(), direct.mean());
        prop_assert_eq!(merged.max(), direct.max());
        for q in QUANTILES {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn merged_quantiles_bound_the_per_part_quantiles(
        a in proptest::collection::vec(0u64..2_000_000, 1..300),
        b in proptest::collection::vec(0u64..2_000_000, 1..300),
    ) {
        let sa = stats_from(&a);
        let sb = stats_from(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);

        for q in QUANTILES {
            let qa = sa.quantile(q);
            let qb = sb.quantile(q);
            let qm = merged.quantile(q);
            prop_assert!(
                qm >= qa.min(qb),
                "q{}: merged {:?} below both parts ({:?}, {:?})", q, qm, qa, qb
            );
            prop_assert!(
                qm <= upper_tolerance(qa.max(qb)),
                "q{}: merged {:?} above both parts ({:?}, {:?})", q, qm, qa, qb
            );
        }
    }

    #[test]
    fn merged_quantiles_are_bracketed_by_exact_order_statistics(
        a in proptest::collection::vec(0u64..500_000, 1..200),
        b in proptest::collection::vec(0u64..500_000, 1..200),
    ) {
        let mut merged = stats_from(&a);
        merged.merge(&stats_from(&b));

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        for q in QUANTILES {
            let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let exact = Duration::from_micros(all[rank - 1]);
            let got = merged.quantile(q);
            prop_assert!(got >= exact, "q{}: {:?} < exact {:?}", q, got, exact);
            prop_assert!(
                got <= upper_tolerance(exact),
                "q{}: {:?} too far above exact {:?}", q, got, exact
            );
        }
    }
}
