//! The event queue of the discrete-event simulator.

use crate::chaos::ChaosAction;
use pocc_proto::{ClientReply, ClientRequest, Envelope};
use pocc_types::{ReplicaId, ServerId, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event scheduled in simulated time.
#[derive(Clone, Debug)]
pub enum Event {
    /// A client wakes up (think time elapsed) and issues its next operation.
    ClientWake {
        /// Index of the client in the simulation's client table.
        client: usize,
    },
    /// A client request arrives at a server.
    RequestArrival {
        /// The destination server.
        server: ServerId,
        /// Index of the issuing client.
        client: usize,
        /// The request payload.
        request: ClientRequest,
    },
    /// A reply arrives back at a client.
    ReplyArrival {
        /// Index of the destination client.
        client: usize,
        /// The reply payload.
        reply: ClientReply,
    },
    /// A server-to-server message arrives at its destination.
    MessageArrival {
        /// The message and its routing information.
        envelope: Envelope,
    },
    /// A periodic maintenance tick for one server.
    ServerTick {
        /// The server to tick.
        server: ServerId,
    },
    /// Inject a network partition between two data centers.
    InjectPartition {
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Heal a network partition between two data centers.
    HealPartition {
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Apply a chaos disturbance (lag spike, drop/duplication window edge, restart).
    /// Chaos partitions and heals reuse the two variants above.
    Chaos(ChaosAction),
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Timestamp, u64)>>,
    payloads: std::collections::HashMap<u64, Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Timestamp, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.payloads.insert(seq, event);
        self.heap.push(Reverse((at, seq)));
    }

    /// Removes and returns the earliest event. Ties are broken by insertion order, which
    /// keeps runs deterministic.
    pub fn pop(&mut self) -> Option<(Timestamp, Event)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let event = self
            .payloads
            .remove(&seq)
            .expect("every scheduled sequence number has a payload");
        Some((at, event))
    }

    /// Number of pending events.
    #[allow(dead_code)] // exercised by tests; kept for debugging harnesses
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no event is pending.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp(30), Event::ClientWake { client: 3 });
        q.push(Timestamp(10), Event::ClientWake { client: 1 });
        q.push(Timestamp(20), Event::ClientWake { client: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(at, _)| at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10usize {
            q.push(Timestamp(5), Event::ClientWake { client: i });
        }
        let clients: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ClientWake { client } => client,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(clients, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(Timestamp(1), Event::ClientWake { client: 0 });
        q.push(Timestamp(2), Event::ClientWake { client: 0 });
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
