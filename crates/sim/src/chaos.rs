//! Declarative chaos schedules: scripted network and replica disturbances that a
//! simulation executes at fixed points in simulated time.
//!
//! A [`ChaosSchedule`] is a list of timed [`ChaosStep`]s — partitions and heals,
//! per-DC-pair lag spikes, drop/duplication windows for idempotent periodic traffic, and
//! rolling replica restarts. Schedules can be written by hand (scenario scripts) or
//! sampled reproducibly from a seed with [`ChaosGen`]; either way the same schedule under
//! the same seed yields a byte-identical run, so chaos scenarios stay regression-testable
//! with the exact causal checker and convergence assertions enabled.

use pocc_types::ReplicaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One timed disturbance in a chaos schedule. All times are relative to simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosStep {
    /// Partition the links between two data centers (traffic is held, not dropped).
    Partition {
        /// When the partition starts.
        at: Duration,
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Heal a previously injected partition, releasing held traffic in order.
    Heal {
        /// When the partition heals.
        at: Duration,
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Add `extra` one-way delay to all traffic between two data centers for a window.
    LagSpike {
        /// When the spike begins.
        at: Duration,
        /// When the spike ends.
        until: Duration,
        /// One side of the laggy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
        /// Extra one-way delay applied inside the window.
        extra: Duration,
    },
    /// Drop idempotent periodic messages (heartbeats, stabilization/GC vectors) between
    /// two data centers for a window. Replication traffic is never dropped.
    DropWindow {
        /// When the window begins.
        at: Duration,
        /// When the window ends.
        until: Duration,
        /// One side of the lossy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Deliver idempotent periodic messages twice between two data centers for a window.
    DupWindow {
        /// When the window begins.
        at: Duration,
        /// When the window ends.
        until: Duration,
        /// One side of the duplicating pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Restart every server of one data center: processing freezes for `outage` while
    /// durable state is retained, then the backlog drains.
    Restart {
        /// When the restart begins.
        at: Duration,
        /// The data center being restarted.
        replica: ReplicaId,
        /// How long the servers stay frozen.
        outage: Duration,
    },
}

impl ChaosStep {
    /// When the step takes effect.
    pub fn at(&self) -> Duration {
        match self {
            ChaosStep::Partition { at, .. }
            | ChaosStep::Heal { at, .. }
            | ChaosStep::LagSpike { at, .. }
            | ChaosStep::DropWindow { at, .. }
            | ChaosStep::DupWindow { at, .. }
            | ChaosStep::Restart { at, .. } => *at,
        }
    }

    /// When the step's disturbance is over (equal to [`ChaosStep::at`] for instantaneous
    /// steps; partitions end at their matching [`ChaosStep::Heal`]).
    pub fn end(&self) -> Duration {
        match self {
            ChaosStep::Partition { at, .. } | ChaosStep::Heal { at, .. } => *at,
            ChaosStep::LagSpike { until, .. }
            | ChaosStep::DropWindow { until, .. }
            | ChaosStep::DupWindow { until, .. } => *until,
            ChaosStep::Restart { at, outage, .. } => *at + *outage,
        }
    }
}

/// An ordered list of timed chaos steps. Construct with [`ChaosSchedule::step`] chaining
/// or sample one with [`ChaosGen`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The scheduled steps.
    pub steps: Vec<ChaosStep>,
}

impl ChaosSchedule {
    /// An empty schedule (the default: no chaos).
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Whether the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Adds a step (builder style).
    pub fn step(mut self, step: ChaosStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Whether every disturbance is over by `deadline`: each window and outage ends, and
    /// each partition has a heal, at or before it. Chaos scenarios assert this against
    /// the start of the drain period so convergence checks stay meaningful.
    pub fn ends_by(&self, deadline: Duration) -> bool {
        let mut open_partitions: Vec<(ReplicaId, ReplicaId)> = Vec::new();
        let mut ordered: Vec<&ChaosStep> = self.steps.iter().collect();
        ordered.sort_by_key(|s| s.at());
        for step in ordered {
            match step {
                ChaosStep::Partition { a, b, .. } => open_partitions.push((*a, *b)),
                ChaosStep::Heal { at, a, b } => {
                    if *at > deadline {
                        return false;
                    }
                    open_partitions.retain(|(x, y)| !((x, y) == (a, b) || (x, y) == (b, a)));
                }
                other => {
                    if other.end() > deadline {
                        return false;
                    }
                }
            }
        }
        open_partitions.is_empty()
    }
}

/// A seeded generator of random-but-reproducible chaos schedules: the same seed always
/// yields the same schedule, every partition is paired with a heal, and every disturbance
/// ends inside the requested window.
#[derive(Debug)]
pub struct ChaosGen {
    rng: StdRng,
    replicas: u16,
}

impl ChaosGen {
    /// Creates a generator for a deployment of `replicas` data centers.
    pub fn new(seed: u64, replicas: usize) -> Self {
        assert!(replicas >= 2, "chaos needs at least two data centers");
        ChaosGen {
            rng: StdRng::seed_from_u64(seed ^ 0xCAFE_F00D),
            replicas: replicas as u16,
        }
    }

    /// Samples a schedule of `events` disturbances, all starting at or after
    /// `window_start` and fully over by `window_end` (so a drain period after
    /// `window_end` is disturbance-free). Returns an empty schedule when the window is
    /// too short to fit a disturbance.
    pub fn sample(
        &mut self,
        window_start: Duration,
        window_end: Duration,
        events: usize,
    ) -> ChaosSchedule {
        let span_ms = window_end.saturating_sub(window_start).as_millis() as u64;
        let mut schedule = ChaosSchedule::new();
        if span_ms < 20 {
            return schedule;
        }
        for _ in 0..events {
            let start_ms = self.rng.gen_range(0..span_ms - 10);
            let max_len = (span_ms - start_ms).min(120);
            let len_ms = self.rng.gen_range(5..=max_len.max(5));
            let at = window_start + Duration::from_millis(start_ms);
            let until = window_start + Duration::from_millis(start_ms + len_ms);
            let (a, b) = self.pair();
            let step = match self.rng.gen_range(0..5u32) {
                0 => {
                    schedule.steps.push(ChaosStep::Partition { at, a, b });
                    ChaosStep::Heal { at: until, a, b }
                }
                1 => ChaosStep::LagSpike {
                    at,
                    until,
                    a,
                    b,
                    extra: Duration::from_millis(self.rng.gen_range(5..=40)),
                },
                2 => ChaosStep::DropWindow { at, until, a, b },
                3 => ChaosStep::DupWindow { at, until, a, b },
                _ => ChaosStep::Restart {
                    at,
                    replica: ReplicaId(self.rng.gen_range(0..self.replicas)),
                    outage: Duration::from_millis(len_ms.min(60)),
                },
            };
            schedule.steps.push(step);
        }
        schedule.steps.sort_by_key(|s| (s.at(), s.end()));
        schedule
    }

    fn pair(&mut self) -> (ReplicaId, ReplicaId) {
        let a = self.rng.gen_range(0..self.replicas);
        let mut b = self.rng.gen_range(0..self.replicas - 1);
        if b >= a {
            b += 1;
        }
        (ReplicaId(a), ReplicaId(b))
    }
}

/// A chaos disturbance applied at runtime (the lowered form of window-style
/// [`ChaosStep`]s; partitions and heals reuse the simulator's existing fault events).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosAction {
    /// Start a lag spike between two data centers.
    BeginLag {
        /// One side of the laggy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
        /// Extra one-way delay.
        extra: Duration,
    },
    /// End a lag spike.
    EndLag {
        /// One side of the laggy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Start dropping idempotent periodic messages between two data centers.
    BeginDrop {
        /// One side of the lossy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// End a drop window.
    EndDrop {
        /// One side of the lossy pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Start duplicating idempotent periodic messages between two data centers.
    BeginDup {
        /// One side of the duplicating pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// End a duplication window.
    EndDup {
        /// One side of the duplicating pair.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Freeze every server of one data center for `outage` (durable state retained).
    Restart {
        /// The data center being restarted.
        replica: ReplicaId,
        /// How long the servers stay frozen.
        outage: Duration,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a = ChaosGen::new(7, 3).sample(MS(100), MS(600), 6);
        let b = ChaosGen::new(7, 3).sample(MS(100), MS(600), 6);
        assert_eq!(a, b);
        assert!(a.steps.len() >= 6, "one step per event, plus heals");
        let c = ChaosGen::new(8, 3).sample(MS(100), MS(600), 6);
        assert_ne!(a, c, "different seeds sample different schedules");
    }

    #[test]
    fn generated_schedules_fit_the_window_and_heal_every_partition() {
        for seed in 0..50u64 {
            let schedule = ChaosGen::new(seed, 3).sample(MS(50), MS(400), 8);
            assert!(
                schedule.ends_by(MS(400)),
                "seed {seed}: schedule leaks past the window: {schedule:?}"
            );
            for step in &schedule.steps {
                assert!(step.at() >= MS(50), "seed {seed}: early step {step:?}");
            }
        }
    }

    #[test]
    fn a_too_short_window_yields_no_chaos() {
        assert!(ChaosGen::new(1, 3).sample(MS(0), MS(10), 5).is_empty());
    }

    #[test]
    fn ends_by_flags_unhealed_partitions_and_open_windows() {
        let unhealed = ChaosSchedule::new().step(ChaosStep::Partition {
            at: MS(10),
            a: ReplicaId(0),
            b: ReplicaId(1),
        });
        assert!(!unhealed.ends_by(MS(100)));

        let healed = unhealed.step(ChaosStep::Heal {
            at: MS(60),
            a: ReplicaId(1), // heal sides may come in either order
            b: ReplicaId(0),
        });
        assert!(healed.ends_by(MS(100)));
        assert!(!healed.ends_by(MS(50)), "heal lands after the deadline");

        let open_window = ChaosSchedule::new().step(ChaosStep::DropWindow {
            at: MS(10),
            until: MS(200),
            a: ReplicaId(0),
            b: ReplicaId(1),
        });
        assert!(!open_window.ends_by(MS(100)));
        assert!(open_window.ends_by(MS(200)));
    }

    #[test]
    fn step_times_cover_every_variant() {
        let restart = ChaosStep::Restart {
            at: MS(30),
            replica: ReplicaId(2),
            outage: MS(25),
        };
        assert_eq!(restart.at(), MS(30));
        assert_eq!(restart.end(), MS(55));
        let lag = ChaosStep::LagSpike {
            at: MS(5),
            until: MS(45),
            a: ReplicaId(0),
            b: ReplicaId(2),
            extra: MS(20),
        };
        assert_eq!(lag.at(), MS(5));
        assert_eq!(lag.end(), MS(45));
    }
}
