//! A seeded interleaving fuzzer for the protocol engine.
//!
//! [`run_fuzz_case`] drives a hand-pumped cluster of [`pocc_proto::ProtocolServer`]s — no
//! event queue,
//! no latency model — through an arbitrary interleaving of client operations, message
//! deliveries, server ticks, clock advances and chaos toggles (partitions, heals,
//! drop/duplication of idempotent periodic messages), all drawn from one seeded RNG. After
//! the scripted steps the harness heals every partition and drains the cluster to
//! quiescence, then asserts the three properties every visibility policy must preserve:
//!
//! * **checker-cleanliness** — the exact causal checker observed no violation,
//! * **convergence** — sibling replicas of every partition hold identical store digests,
//! * **liveness** — no client is left with an operation the servers never answered.
//!
//! Because the RNG is consumed only inside the step loop, a run with fewer steps executes
//! an identical prefix of the same interleaving. [`check_case`] exploits that for
//! proptest-style shrinking: a failing case is reduced to the minimal failing step count
//! and reported as a [`FuzzFailure`] whose `Display` output is a ready-to-paste regression
//! test that reproduces the bug from the seed alone.
//!
//! [`cross_protocol_check`] adds the differential layer: one seeded write-only script
//! through all four protocols must leave byte-identical replicated state, since visibility
//! policies may only change what reads see in the meantime, never what state replicas
//! build.
//!
//! Set `POCC_FUZZ_TRACE=1` to narrate a replay step by step on stderr — every issued
//! request, delivered message, chaos toggle and client reply, each stamped with the
//! cluster's simulated clock. Replays are deterministic, so tracing the minimal case a
//! shrink reported walks you straight to the first bad read (unset, empty or `0`
//! disables it).

use crate::config::ProtocolKind;
use crate::consistency::ConsistencyChecker;
use pocc_adaptive::AdaptiveServer;
use pocc_clock::{Clock, ManualClock};
use pocc_cure::CureServer;
use pocc_ha::HaPoccServer;
use pocc_proto::{ClientReply, InstrumentedServer, ProtocolClient, ServerMessage, ServerOutput};
use pocc_protocol::{Client, PoccServer};
use pocc_storage::partition_for_key;
use pocc_types::{ClientId, Config, Key, ReplicaId, ServerId, Timestamp, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Duration;

/// One fuzz case: a deployment shape, a protocol, a step budget and a seed. Equal cases
/// replay byte-identical runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuzzCase {
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// Data centers in the deployment.
    pub replicas: usize,
    /// Partitions per data center.
    pub partitions: usize,
    /// Client sessions, spread round-robin over the data centers.
    pub clients: usize,
    /// Keyspace size — deliberately tiny so concurrent writers collide.
    pub keys: u64,
    /// Number of random interleaving steps before the drain.
    pub steps: usize,
    /// Whether chaos toggles (partition/heal, drop, duplicate) are among the steps.
    pub chaos: bool,
    /// The seed everything is derived from.
    pub seed: u64,
}

impl Default for FuzzCase {
    fn default() -> Self {
        FuzzCase {
            protocol: ProtocolKind::Pocc,
            replicas: 3,
            partitions: 2,
            clients: 4,
            keys: 12,
            steps: 400,
            chaos: true,
            seed: 0,
        }
    }
}

/// What a fuzz run observed. A case passes iff [`FuzzOutcome::is_clean`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// Client operations that completed (a reply was processed).
    pub ops_completed: u64,
    /// Sessions the servers aborted (client re-initialised and carried on).
    pub sessions_reinitialized: u64,
    /// Causal-consistency violations the exact checker recorded.
    pub violations: usize,
    /// Whether sibling replicas of every partition converged after the drain.
    pub converged: bool,
    /// Clients still waiting for a reply after the drain (must be zero).
    pub stuck_clients: usize,
    /// Human-readable description of the first violation, if any.
    pub first_violation: Option<String>,
}

impl FuzzOutcome {
    /// Whether the case upheld all three properties.
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && self.converged && self.stuck_clients == 0
    }

    /// A one-line reason when the case failed.
    pub fn failure_reason(&self) -> Option<String> {
        if self.violations > 0 {
            return Some(format!(
                "{} causal violation(s), first: {}",
                self.violations,
                self.first_violation.as_deref().unwrap_or("<unrecorded>")
            ));
        }
        if !self.converged {
            return Some("replicas did not converge after quiescence".to_string());
        }
        if self.stuck_clients > 0 {
            return Some(format!(
                "{} client(s) never received a reply",
                self.stuck_clients
            ));
        }
        None
    }
}

/// A minimised fuzz failure. Its `Display` output is a ready-to-paste regression test.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The minimal failing case (same seed as the original, fewest failing steps).
    pub case: FuzzCase,
    /// The step count of the original, unshrunk case.
    pub original_steps: usize,
    /// The outcome of the minimal case.
    pub outcome: FuzzOutcome,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.case;
        let protocol_expr = match c.protocol {
            ProtocolKind::Pocc => "ProtocolKind::Pocc",
            ProtocolKind::Cure => "ProtocolKind::Cure",
            ProtocolKind::HaPocc => "ProtocolKind::HaPocc",
            ProtocolKind::Adaptive => "ProtocolKind::Adaptive",
        };
        writeln!(
            f,
            "engine fuzzer failure: protocol={} seed={} steps={} (shrunk from {})",
            c.protocol, c.seed, c.steps, self.original_steps
        )?;
        writeln!(
            f,
            "reason: {}",
            self.outcome
                .failure_reason()
                .unwrap_or_else(|| "unknown".to_string())
        )?;
        writeln!(f, "paste this regression test:")?;
        writeln!(f)?;
        writeln!(f, "#[test]")?;
        writeln!(
            f,
            "fn fuzz_regression_seed_{}_steps_{}() {{",
            c.seed, c.steps
        )?;
        writeln!(f, "    use pocc::sim::fuzz::{{run_fuzz_case, FuzzCase}};")?;
        writeln!(f, "    use pocc::sim::ProtocolKind;")?;
        writeln!(f, "    let outcome = run_fuzz_case(&FuzzCase {{")?;
        writeln!(f, "        protocol: {protocol_expr},")?;
        writeln!(f, "        replicas: {},", c.replicas)?;
        writeln!(f, "        partitions: {},", c.partitions)?;
        writeln!(f, "        clients: {},", c.clients)?;
        writeln!(f, "        keys: {},", c.keys)?;
        writeln!(f, "        steps: {},", c.steps)?;
        writeln!(f, "        chaos: {},", c.chaos)?;
        writeln!(f, "        seed: {},", c.seed)?;
        writeln!(f, "    }});")?;
        writeln!(f, "    assert!(outcome.is_clean(), \"{{:?}}\", outcome);")?;
        write!(f, "}}")
    }
}

// ---------------------------------------------------------------------------------------
// The hand-pumped cluster
// ---------------------------------------------------------------------------------------

/// What a client is waiting for, so the reply can be fed to the checker.
#[derive(Clone, Copy, Debug)]
enum Pending {
    Get(Key),
    Put(Key),
    RoTx,
}

struct FuzzClient {
    session: Client,
    home: ServerId,
    pending: Option<Pending>,
}

struct Cluster {
    deployment: Config,
    clock: ManualClock,
    servers: BTreeMap<ServerId, Box<dyn InstrumentedServer>>,
    /// Per-directed-link FIFO queues of undelivered messages.
    links: BTreeMap<(ServerId, ServerId), VecDeque<ServerMessage>>,
    /// Partitioned DC pairs (both orderings stored).
    partitioned: BTreeSet<(u16, u16)>,
    clients: Vec<FuzzClient>,
    checker: ConsistencyChecker,
    ops_completed: u64,
    sessions_reinitialized: u64,
    /// Whether to narrate every step to stderr (the `POCC_FUZZ_TRACE` debug aid).
    trace: bool,
}

/// Whether `POCC_FUZZ_TRACE` asks for a step-by-step narration of the run. Unset, empty
/// and `0` mean off; anything else means on.
fn trace_enabled() -> bool {
    std::env::var_os("POCC_FUZZ_TRACE").is_some_and(|v| !v.is_empty() && v != *"0")
}

fn build_server(
    protocol: ProtocolKind,
    id: ServerId,
    cfg: &Config,
    clock: &ManualClock,
) -> Box<dyn InstrumentedServer> {
    match protocol {
        ProtocolKind::Pocc => Box::new(PoccServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::Cure => Box::new(CureServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::HaPocc => Box::new(HaPoccServer::new(id, cfg.clone(), clock.clone())),
        ProtocolKind::Adaptive => Box::new(AdaptiveServer::new(id, cfg.clone(), clock.clone())),
    }
}

impl Cluster {
    fn new(case: &FuzzCase) -> Self {
        let deployment = Config::builder()
            .num_replicas(case.replicas)
            .num_partitions(case.partitions)
            .storage_shards(2)
            .build()
            .expect("fuzz deployment config is valid");
        let clock = ManualClock::new(Timestamp::from(Duration::from_millis(10)));
        let servers: BTreeMap<ServerId, Box<dyn InstrumentedServer>> = deployment
            .servers()
            .map(|id| (id, build_server(case.protocol, id, &deployment, &clock)))
            .collect();
        let clients: Vec<FuzzClient> = (0..case.clients)
            .map(|i| {
                let replica = ReplicaId((i % case.replicas) as u16);
                let home = ServerId::new(replica, 0u32);
                let id = ClientId(i as u64);
                let session = match case.protocol {
                    ProtocolKind::Cure | ProtocolKind::Adaptive => {
                        Client::new_snapshot_reads(id, home, case.replicas)
                    }
                    ProtocolKind::Pocc | ProtocolKind::HaPocc => {
                        Client::new(id, home, case.replicas)
                    }
                };
                FuzzClient {
                    session,
                    home,
                    pending: None,
                }
            })
            .collect();
        Cluster {
            deployment,
            clock,
            servers,
            links: BTreeMap::new(),
            partitioned: BTreeSet::new(),
            clients,
            checker: ConsistencyChecker::new(),
            ops_completed: 0,
            sessions_reinitialized: 0,
            trace: trace_enabled(),
        }
    }

    /// Routes server outputs: messages join their link queue, replies are processed by
    /// the owning client immediately (and fed to the checker first).
    fn route(&mut self, from: ServerId, outputs: Vec<ServerOutput>) {
        for output in outputs {
            match output {
                ServerOutput::Send { to, message } => {
                    self.links.entry((from, to)).or_default().push_back(message);
                }
                ServerOutput::Reply { client, reply } => self.client_reply(client, reply),
            }
        }
    }

    fn trace(&self, what: impl FnOnce() -> String) {
        if self.trace {
            eprintln!("[t={:?}] {}", self.clock.now(), what());
        }
    }

    fn client_reply(&mut self, client_id: ClientId, reply: ClientReply) {
        self.trace(|| format!("reply to {client_id:?}: {reply:?}"));
        let idx = client_id.raw() as usize;
        let pending = self.clients[idx].pending.take();
        let home_replica = self.clients[idx].home.replica;
        match &reply {
            ClientReply::Get(resp) => {
                if let Some(Pending::Get(key)) = pending {
                    let returned = resp
                        .value
                        .as_ref()
                        .map(|_| (resp.update_time, resp.source_replica));
                    self.checker.record_read(client_id, key, returned);
                }
            }
            ClientReply::Put { update_time } => {
                if let Some(Pending::Put(key)) = pending {
                    self.checker
                        .record_write(client_id, key, *update_time, home_replica);
                }
            }
            ClientReply::RoTx { items } => {
                let observed: Vec<(Key, Option<(Timestamp, ReplicaId)>)> = items
                    .iter()
                    .map(|item| {
                        (
                            item.key,
                            item.response
                                .value
                                .as_ref()
                                .map(|_| (item.response.update_time, item.response.source_replica)),
                        )
                    })
                    .collect();
                self.checker.record_transaction(client_id, &observed);
            }
            ClientReply::SessionAborted { .. } => {}
        }
        let entry = &mut self.clients[idx];
        match entry.session.process_reply(&reply) {
            Ok(()) => self.ops_completed += 1,
            Err(_) => {
                entry.session.reinitialize();
                self.sessions_reinitialized += 1;
                self.checker.reset_session(client_id);
            }
        }
    }

    fn issue(&mut self, idx: usize, rng: &mut StdRng, keys: u64) {
        if self.clients[idx].pending.is_some() {
            return; // closed-loop clients never pipeline
        }
        let kind = rng.gen_range(0..6u32);
        let key = Key(rng.gen_range(0..keys));
        let (request, pending) = {
            let session = &mut self.clients[idx].session;
            match kind {
                0..=2 => {
                    let value = Value::from(rng.gen_range(0..1_000_000u64));
                    (session.put(key, value), Pending::Put(key))
                }
                3..=4 => (session.get(key), Pending::Get(key)),
                _ => {
                    let mut tx_keys = vec![key];
                    let second = Key(rng.gen_range(0..keys));
                    if second != key {
                        tx_keys.push(second);
                    }
                    (session.ro_tx(tx_keys), Pending::RoTx)
                }
            }
        };
        let home = self.clients[idx].home;
        let partition = partition_for_key(key, self.deployment.num_partitions);
        let target = ServerId::new(home.replica, partition);
        self.clients[idx].pending = Some(pending);
        let client_id = self.clients[idx].session.client_id();
        self.trace(|| format!("issue {client_id:?} -> {target}: {request:?}"));
        let outputs = self
            .servers
            .get_mut(&target)
            .expect("client targets a server of this deployment")
            .handle_client_request(client_id, request);
        self.route(target, outputs);
    }

    fn link_blocked(&self, link: &(ServerId, ServerId)) -> bool {
        self.partitioned
            .contains(&(link.0.replica.0, link.1.replica.0))
    }

    /// Non-empty links eligible for delivery (partitioned pairs hold their traffic).
    fn open_links(&self) -> Vec<(ServerId, ServerId)> {
        self.links
            .iter()
            .filter(|(link, queue)| !queue.is_empty() && !self.link_blocked(link))
            .map(|(link, _)| *link)
            .collect()
    }

    fn deliver_head(&mut self, link: (ServerId, ServerId)) {
        if let Some(message) = self.links.get_mut(&link).and_then(|q| q.pop_front()) {
            self.trace(|| {
                let summary = match &message {
                    ServerMessage::Replicate { version } => format!(
                        "Replicate key={:?} ut={:?} src={:?}",
                        version.key, version.update_time, version.source_replica
                    ),
                    other => format!("{other:?}").chars().take(120).collect(),
                };
                format!("deliver {} -> {}: {}", link.0, link.1, summary)
            });
            let outputs = self
                .servers
                .get_mut(&link.1)
                .expect("messages target servers of this deployment")
                .handle_server_message(link.0, message);
            self.route(link.1, outputs);
        }
    }

    fn tick(&mut self, id: ServerId) {
        let outputs = self.servers.get_mut(&id).expect("server exists").tick();
        self.route(id, outputs);
    }

    /// Heals everything and pumps the cluster until no message is in flight, advancing
    /// the shared clock each round so heartbeats and stabilization make progress. Uses no
    /// randomness, so it is identical for every step-count prefix of the same seed.
    fn drain(&mut self) {
        self.partitioned.clear();
        let ids: Vec<ServerId> = self.servers.keys().copied().collect();
        let beat = self
            .deployment
            .heartbeat_interval
            .max(Duration::from_millis(1));
        for _ in 0..40 {
            self.clock.advance(beat);
            for id in &ids {
                self.tick(*id);
            }
            loop {
                let pending: Vec<(ServerId, ServerId)> = self
                    .links
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(link, _)| *link)
                    .collect();
                if pending.is_empty() {
                    break;
                }
                for link in pending {
                    while self.links.get(&link).is_some_and(|q| !q.is_empty()) {
                        self.deliver_head(link);
                    }
                }
            }
        }
    }

    fn converged(&self) -> bool {
        for partition in self.deployment.partitions() {
            let digests: Vec<_> = self
                .deployment
                .replicas()
                .map(|replica| self.servers[&ServerId::new(replica, partition)].digest())
                .collect();
            if digests.windows(2).any(|w| w[0] != w[1]) {
                return false;
            }
        }
        true
    }
}

/// Is this message kind safe to drop or duplicate? Mirrors the simulated network's rule:
/// only idempotent periodic traffic that the next protocol round supersedes.
fn expendable(message: &ServerMessage) -> bool {
    matches!(
        message,
        ServerMessage::Heartbeat { .. }
            | ServerMessage::StabilizationVector { .. }
            | ServerMessage::GcVector { .. }
    )
}

/// Runs one fuzz case to completion and reports what it observed. Never panics on a
/// protocol failure — inspect [`FuzzOutcome::is_clean`].
pub fn run_fuzz_case(case: &FuzzCase) -> FuzzOutcome {
    let mut cluster = Cluster::new(case);
    let mut rng = StdRng::seed_from_u64(case.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let replicas = case.replicas as u16;

    for _ in 0..case.steps {
        match rng.gen_range(0..10u32) {
            // Issue a client operation (the most common step).
            0..=3 => {
                let idx = rng.gen_range(0..cluster.clients.len());
                cluster.issue(idx, &mut rng, case.keys);
            }
            // Deliver the head of one random open link.
            4..=6 => {
                let open = cluster.open_links();
                if !open.is_empty() {
                    let link = open[rng.gen_range(0..open.len())];
                    cluster.deliver_head(link);
                }
            }
            // Tick one random server.
            7 => {
                let ids: Vec<ServerId> = cluster.servers.keys().copied().collect();
                let id = ids[rng.gen_range(0..ids.len())];
                cluster.tick(id);
            }
            // Advance the shared clock.
            8 => {
                let micros = rng.gen_range(100..5_000u64);
                cluster.clock.advance(Duration::from_micros(micros));
            }
            // A chaos toggle.
            _ => {
                if !case.chaos || replicas < 2 {
                    continue;
                }
                let a = rng.gen_range(0..replicas);
                let mut b = rng.gen_range(0..replicas - 1);
                if b >= a {
                    b += 1;
                }
                match rng.gen_range(0..4u32) {
                    0 => {
                        cluster.partitioned.insert((a, b));
                        cluster.partitioned.insert((b, a));
                    }
                    1 => {
                        cluster.partitioned.remove(&(a, b));
                        cluster.partitioned.remove(&(b, a));
                    }
                    // Drop or duplicate the head of a random link, if it is an
                    // idempotent periodic message.
                    kind => {
                        let candidates: Vec<(ServerId, ServerId)> = cluster
                            .links
                            .iter()
                            .filter(|(_, q)| q.front().is_some_and(expendable))
                            .map(|(link, _)| *link)
                            .collect();
                        if candidates.is_empty() {
                            continue;
                        }
                        let link = candidates[rng.gen_range(0..candidates.len())];
                        let queue = cluster.links.get_mut(&link).expect("candidate link");
                        if kind == 2 {
                            queue.pop_front();
                        } else if let Some(head) = queue.front().cloned() {
                            queue.push_back(head);
                        }
                    }
                }
            }
        }
    }

    cluster.drain();

    let stuck_clients = cluster
        .clients
        .iter()
        .filter(|c| c.pending.is_some())
        .count();
    let violations = cluster.checker.violations();
    FuzzOutcome {
        ops_completed: cluster.ops_completed,
        sessions_reinitialized: cluster.sessions_reinitialized,
        violations: violations.len(),
        converged: cluster.converged(),
        stuck_clients,
        first_violation: violations.first().map(|v| format!("{v:?}")),
    }
}

/// Finds the minimal failing step count for a failing predicate by prefix reduction:
/// halving descent, then a bounded linear polish. Assumes `fails(steps)` holds for the
/// starting case and that every tried count replays a prefix of the same interleaving.
fn minimize_steps(case: &FuzzCase, fails: impl Fn(&FuzzCase) -> bool) -> usize {
    let mut best = case.steps;
    let mut candidate = best / 2;
    while candidate >= 1 {
        let mut smaller = *case;
        smaller.steps = candidate;
        if fails(&smaller) {
            best = candidate;
            candidate /= 2;
        } else {
            break;
        }
    }
    // Linear polish just below the best known failure, bounded so shrinking stays fast.
    for _ in 0..64 {
        if best == 0 {
            break;
        }
        let mut smaller = *case;
        smaller.steps = best - 1;
        if fails(&smaller) {
            best -= 1;
        } else {
            break;
        }
    }
    best
}

/// Runs a case; on failure, shrinks it to the minimal failing step count and returns a
/// [`FuzzFailure`] whose `Display` is a paste-ready regression test.
pub fn check_case(case: &FuzzCase) -> Result<FuzzOutcome, Box<FuzzFailure>> {
    let outcome = run_fuzz_case(case);
    if outcome.is_clean() {
        return Ok(outcome);
    }
    let minimal_steps = minimize_steps(case, |c| !run_fuzz_case(c).is_clean());
    let mut minimal = *case;
    minimal.steps = minimal_steps;
    let outcome = run_fuzz_case(&minimal);
    Err(Box::new(FuzzFailure {
        case: minimal,
        original_steps: case.steps,
        outcome,
    }))
}

// ---------------------------------------------------------------------------------------
// Cross-protocol differential check
// ---------------------------------------------------------------------------------------

/// One item of a cross-protocol script. The script is generated once per seed and then
/// replayed identically through every protocol, so the interleaving cannot depend on
/// protocol-specific message flows.
#[derive(Clone, Copy, Debug)]
enum ScriptItem {
    Put { client: usize, key: Key, value: u64 },
    TickAll,
    DeliverAll,
}

fn generate_script(seed: u64, ops: usize, clients: usize, keys: u64) -> Vec<ScriptItem> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD1F2_4F3B).wrapping_add(7));
    (0..ops)
        .map(|_| match rng.gen_range(0..10u32) {
            0..=6 => ScriptItem::Put {
                client: rng.gen_range(0..clients),
                key: Key(rng.gen_range(0..keys)),
                value: rng.gen_range(0..1_000_000u64),
            },
            7..=8 => ScriptItem::DeliverAll,
            _ => ScriptItem::TickAll,
        })
        .collect()
}

/// Per-server replicated state fingerprint: every key's full version chain, in order.
type StateFingerprint = BTreeMap<ServerId, Vec<(Key, Timestamp, ReplicaId)>>;

/// Replays one seeded write-only script through all four protocols and verifies they
/// build byte-identical replicated state on every server. Returns a description of the
/// first divergence, if any.
pub fn cross_protocol_check(seed: u64, ops: usize) -> Result<(), String> {
    const PROTOCOLS: [ProtocolKind; 4] = [
        ProtocolKind::Pocc,
        ProtocolKind::Cure,
        ProtocolKind::HaPocc,
        ProtocolKind::Adaptive,
    ];
    let case = FuzzCase {
        steps: 0,
        chaos: false,
        ..FuzzCase::default()
    };
    let script = generate_script(seed, ops, case.clients, case.keys);

    let mut reference: Option<(ProtocolKind, StateFingerprint)> = None;
    for protocol in PROTOCOLS {
        let mut cluster = Cluster::new(&FuzzCase { protocol, ..case });
        let ids: Vec<ServerId> = cluster.servers.keys().copied().collect();
        for item in &script {
            match *item {
                ScriptItem::Put { client, key, value } => {
                    // Advance the shared clock so update times keep moving; the amount is
                    // fixed, hence identical across protocols.
                    cluster.clock.advance(Duration::from_micros(500));
                    let request = cluster.clients[client].session.put(key, Value::from(value));
                    let client_id = cluster.clients[client].session.client_id();
                    cluster.clients[client].pending = Some(Pending::Put(key));
                    let home = cluster.clients[client].home;
                    let partition = partition_for_key(key, cluster.deployment.num_partitions);
                    let target = ServerId::new(home.replica, partition);
                    let outputs = cluster
                        .servers
                        .get_mut(&target)
                        .expect("server exists")
                        .handle_client_request(client_id, request);
                    cluster.route(target, outputs);
                }
                ScriptItem::TickAll => {
                    cluster.clock.advance(cluster.deployment.heartbeat_interval);
                    for id in &ids {
                        cluster.tick(*id);
                    }
                }
                ScriptItem::DeliverAll => {
                    let links: Vec<(ServerId, ServerId)> = cluster
                        .links
                        .iter()
                        .filter(|(_, q)| !q.is_empty())
                        .map(|(link, _)| *link)
                        .collect();
                    for link in links {
                        while cluster.links.get(&link).is_some_and(|q| !q.is_empty()) {
                            cluster.deliver_head(link);
                        }
                    }
                }
            }
        }
        cluster.drain();
        let digests: StateFingerprint = cluster
            .servers
            .iter()
            .map(|(id, s)| (*id, s.digest()))
            .collect();
        match &reference {
            None => reference = Some((protocol, digests)),
            Some((ref_protocol, ref_digests)) => {
                if digests != *ref_digests {
                    let diverged = ref_digests
                        .iter()
                        .find(|(id, d)| digests.get(id) != Some(d))
                        .map(|(id, _)| *id);
                    return Err(format!(
                        "seed {seed}: {protocol} diverged from {ref_protocol} at {:?}",
                        diverged
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_default_case_completes_work_and_is_clean() {
        let outcome = run_fuzz_case(&FuzzCase {
            seed: 1,
            ..FuzzCase::default()
        });
        assert!(outcome.is_clean(), "{outcome:?}");
        assert!(
            outcome.ops_completed > 0,
            "the fuzzer must exercise clients"
        );
    }

    #[test]
    fn identical_seeds_replay_identical_outcomes() {
        let case = FuzzCase {
            seed: 99,
            steps: 300,
            ..FuzzCase::default()
        };
        assert_eq!(run_fuzz_case(&case), run_fuzz_case(&case));
    }

    #[test]
    fn fewer_steps_replay_a_prefix_of_the_same_interleaving() {
        // The shrinker's soundness: shrinking only truncates the step loop, so the
        // 120-step run of a seed is the literal prefix of its 300-step run. We can't
        // observe the prefix directly, but both must be clean and the shorter one must
        // complete no more operations.
        let long = run_fuzz_case(&FuzzCase {
            seed: 5,
            steps: 300,
            ..FuzzCase::default()
        });
        let short = run_fuzz_case(&FuzzCase {
            seed: 5,
            steps: 120,
            ..FuzzCase::default()
        });
        assert!(long.is_clean() && short.is_clean());
        assert!(short.ops_completed <= long.ops_completed);
    }

    #[test]
    fn minimize_steps_finds_the_smallest_failing_count() {
        // Synthetic failure predicate: a case "fails" iff it runs at least 23 steps.
        // The shrinker must find exactly 23 regardless of the starting budget.
        let case = FuzzCase {
            steps: 400,
            ..FuzzCase::default()
        };
        let minimal = minimize_steps(&case, |c| c.steps >= 23);
        assert_eq!(minimal, 23);
        let minimal = minimize_steps(&case, |c| c.steps >= 1);
        assert_eq!(minimal, 1);
        let minimal = minimize_steps(&case, |c| c.steps >= 400);
        assert_eq!(minimal, 400);
    }

    #[test]
    fn check_case_passes_clean_cases_through() {
        let case = FuzzCase {
            seed: 3,
            steps: 200,
            ..FuzzCase::default()
        };
        assert!(check_case(&case).is_ok());
    }

    #[test]
    fn failure_display_is_a_paste_ready_regression_test() {
        let failure = FuzzFailure {
            case: FuzzCase {
                protocol: ProtocolKind::Adaptive,
                seed: 77,
                steps: 13,
                ..FuzzCase::default()
            },
            original_steps: 400,
            outcome: FuzzOutcome {
                ops_completed: 4,
                sessions_reinitialized: 0,
                violations: 1,
                converged: true,
                stuck_clients: 0,
                first_violation: Some("StaleRead".to_string()),
            },
        };
        let text = failure.to_string();
        assert!(text.contains("seed=77 steps=13 (shrunk from 400)"));
        assert!(text.contains("fn fuzz_regression_seed_77_steps_13()"));
        assert!(text.contains("protocol: ProtocolKind::Adaptive,"));
        assert!(text.contains("assert!(outcome.is_clean()"));
    }

    #[test]
    fn all_protocols_survive_a_quick_seed_batch() {
        for protocol in [
            ProtocolKind::Pocc,
            ProtocolKind::Cure,
            ProtocolKind::HaPocc,
            ProtocolKind::Adaptive,
        ] {
            for seed in 0..8u64 {
                let case = FuzzCase {
                    protocol,
                    seed,
                    steps: 250,
                    ..FuzzCase::default()
                };
                if let Err(failure) = check_case(&case) {
                    panic!("{failure}");
                }
            }
        }
    }

    #[test]
    fn cross_protocol_state_equality_holds_for_a_seed_batch() {
        for seed in 0..6u64 {
            if let Err(divergence) = cross_protocol_check(seed, 120) {
                panic!("{divergence}");
            }
        }
    }
}
