//! The simulation engine: builds a deployment and runs the event loop.

use crate::chaos::{ChaosAction, ChaosStep};
use crate::config::{FaultEvent, ProtocolKind, SimConfig};
use crate::consistency::ConsistencyChecker;
use crate::event::{Event, EventQueue};
use crate::metrics::LatencyStats;
use crate::report::SimReport;
use pocc_adaptive::AdaptiveServer;
use pocc_clock::{ClockFactory, ManualClock, SkewModel};
use pocc_cure::CureServer;
use pocc_ha::HaPoccServer;
use pocc_net::{LatencyModel, SimNetwork};
use pocc_proto::{
    ClientReply, ClientRequest, Envelope, InstrumentedServer, MetricsSnapshot, ProtocolClient,
    ServerMessage, ServerOutput,
};
use pocc_protocol::{Client, PoccServer};
use pocc_types::{ClientId, Key, ServerId, Timestamp};
use pocc_workload::{KeySpace, OperationKind, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Duration;

/// Which kind of client operation is in flight, for latency classification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpKind {
    Get,
    Put,
    RoTx,
}

/// One operation in flight at a client.
#[derive(Clone, Debug)]
struct Outstanding {
    kind: OpKind,
    issued_at: Timestamp,
    /// The key of a GET or PUT (unused for RO-TX, whose keys come back in the reply).
    key: Option<Key>,
}

struct ServerEntry {
    server: Box<dyn InstrumentedServer>,
    busy_until: Timestamp,
}

struct ClientEntry {
    session: Client,
    generator: WorkloadGenerator,
    home: ServerId,
    outstanding: Option<Outstanding>,
    reinitializations: u64,
}

enum Work {
    Client {
        client: usize,
        request: ClientRequest,
    },
    Message {
        from: ServerId,
        message: ServerMessage,
    },
    Tick,
}

/// A single simulation run. Create it from a [`SimConfig`] and call [`Simulation::run`].
pub struct Simulation {
    cfg: SimConfig,
    queue: EventQueue,
    base_clock: ManualClock,
    servers: HashMap<ServerId, ServerEntry>,
    clients: Vec<ClientEntry>,
    network: SimNetwork,
    checker: Option<ConsistencyChecker>,

    warmup_end: Timestamp,
    measure_end: Timestamp,
    end: Timestamp,
    warmup_snapshot: Option<MetricsSnapshot>,

    latency_all: LatencyStats,
    latency_get: LatencyStats,
    latency_put: LatencyStats,
    latency_rotx: LatencyStats,
    gets_completed: u64,
    puts_completed: u64,
    rotx_completed: u64,
    reinits_in_window: u64,
}

impl Simulation {
    /// Builds a simulation from its configuration.
    pub fn new(cfg: SimConfig) -> Self {
        let deployment = cfg.deployment.clone();
        let mut factory = ClockFactory::new(
            if deployment.max_clock_skew.is_zero() {
                SkewModel::None
            } else {
                SkewModel::UniformOffset {
                    max: deployment.max_clock_skew,
                }
            },
            cfg.seed ^ 0xC10C,
        );
        let base_clock = factory.base();

        let mut servers = HashMap::new();
        for id in deployment.servers() {
            let clock = factory.clock_for(id);
            let server: Box<dyn InstrumentedServer> = match cfg.protocol {
                ProtocolKind::Pocc => Box::new(PoccServer::new(id, deployment.clone(), clock)),
                ProtocolKind::Cure => Box::new(CureServer::new(id, deployment.clone(), clock)),
                ProtocolKind::HaPocc => Box::new(HaPoccServer::new(id, deployment.clone(), clock)),
                ProtocolKind::Adaptive => {
                    Box::new(AdaptiveServer::new(id, deployment.clone(), clock))
                }
            };
            servers.insert(
                id,
                ServerEntry {
                    server,
                    busy_until: Timestamp::ZERO,
                },
            );
        }

        let keyspace = KeySpace::new(deployment.num_partitions, cfg.keys_per_partition);
        let mut clients = Vec::with_capacity(cfg.total_clients());
        let mut next_client = 0u64;
        for replica in deployment.replicas() {
            for partition in deployment.partitions() {
                for _ in 0..cfg.clients_per_partition {
                    let home = ServerId::new(replica, partition);
                    let id = ClientId(next_client);
                    let generator = WorkloadGenerator::new(
                        keyspace,
                        cfg.zipf_theta,
                        cfg.mix,
                        cfg.seed.wrapping_mul(1_000_003).wrapping_add(next_client),
                    )
                    .with_value_size(cfg.value_size);
                    // Snapshot-serving protocols need the full session history in GET
                    // request vectors (see `Client::new_snapshot_reads`).
                    let session = match cfg.protocol {
                        ProtocolKind::Cure | ProtocolKind::Adaptive => {
                            Client::new_snapshot_reads(id, home, deployment.num_replicas)
                        }
                        ProtocolKind::Pocc | ProtocolKind::HaPocc => {
                            Client::new(id, home, deployment.num_replicas)
                        }
                    };
                    clients.push(ClientEntry {
                        session,
                        generator,
                        home,
                        outstanding: None,
                        reinitializations: 0,
                    });
                    next_client += 1;
                }
            }
        }

        let network = SimNetwork::new(LatencyModel::with_jitter(
            deployment.latency.clone(),
            cfg.network_jitter,
            cfg.seed ^ 0x9E7,
        ));

        let warmup_end = Timestamp::from(cfg.warmup);
        let measure_end = warmup_end + cfg.duration;
        let end = measure_end + cfg.drain;

        let checker = cfg.check_consistency.then(ConsistencyChecker::new);

        let mut sim = Simulation {
            cfg,
            queue: EventQueue::new(),
            base_clock,
            servers,
            clients,
            network,
            checker,
            warmup_end,
            measure_end,
            end,
            warmup_snapshot: None,
            latency_all: LatencyStats::new(),
            latency_get: LatencyStats::new(),
            latency_put: LatencyStats::new(),
            latency_rotx: LatencyStats::new(),
            gets_completed: 0,
            puts_completed: 0,
            rotx_completed: 0,
            reinits_in_window: 0,
        };
        sim.schedule_initial_events();
        sim
    }

    fn schedule_initial_events(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x57A6);
        let think = self.cfg.think_time.as_micros() as u64;
        for idx in 0..self.clients.len() {
            let stagger = if think == 0 {
                0
            } else {
                rng.gen_range(0..think.max(1))
            };
            self.queue
                .push(Timestamp(stagger), Event::ClientWake { client: idx });
        }
        let tick = self.cfg.deployment.heartbeat_interval;
        for (i, id) in self.cfg.deployment.servers().enumerate() {
            let offset = Duration::from_micros((i as u64 % 97) * 7);
            self.queue.push(
                Timestamp::from(tick) + offset,
                Event::ServerTick { server: id },
            );
        }
        let faults = self.cfg.faults.clone();
        for fault in faults {
            match fault {
                FaultEvent::Partition { at, a, b } => {
                    self.queue
                        .push(Timestamp::from(at), Event::InjectPartition { a, b });
                }
                FaultEvent::Heal { at, a, b } => {
                    self.queue
                        .push(Timestamp::from(at), Event::HealPartition { a, b });
                }
            }
        }
        let chaos = self.cfg.chaos.clone();
        for step in chaos.steps {
            self.schedule_chaos_step(step);
        }
    }

    /// Lowers one declarative chaos step into queue events: partitions and heals map to
    /// the existing fault events, windows become a begin/end action pair, restarts a
    /// single action.
    fn schedule_chaos_step(&mut self, step: ChaosStep) {
        match step {
            ChaosStep::Partition { at, a, b } => {
                self.queue
                    .push(Timestamp::from(at), Event::InjectPartition { a, b });
            }
            ChaosStep::Heal { at, a, b } => {
                self.queue
                    .push(Timestamp::from(at), Event::HealPartition { a, b });
            }
            ChaosStep::LagSpike {
                at,
                until,
                a,
                b,
                extra,
            } => {
                self.queue.push(
                    Timestamp::from(at),
                    Event::Chaos(ChaosAction::BeginLag { a, b, extra }),
                );
                self.queue.push(
                    Timestamp::from(until),
                    Event::Chaos(ChaosAction::EndLag { a, b }),
                );
            }
            ChaosStep::DropWindow { at, until, a, b } => {
                self.queue.push(
                    Timestamp::from(at),
                    Event::Chaos(ChaosAction::BeginDrop { a, b }),
                );
                self.queue.push(
                    Timestamp::from(until),
                    Event::Chaos(ChaosAction::EndDrop { a, b }),
                );
            }
            ChaosStep::DupWindow { at, until, a, b } => {
                self.queue.push(
                    Timestamp::from(at),
                    Event::Chaos(ChaosAction::BeginDup { a, b }),
                );
                self.queue.push(
                    Timestamp::from(until),
                    Event::Chaos(ChaosAction::EndDup { a, b }),
                );
            }
            ChaosStep::Restart {
                at,
                replica,
                outage,
            } => {
                self.queue.push(
                    Timestamp::from(at),
                    Event::Chaos(ChaosAction::Restart { replica, outage }),
                );
            }
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        while let Some((at, event)) = self.queue.pop() {
            if at > self.end {
                break;
            }
            if self.warmup_snapshot.is_none() && at >= self.warmup_end {
                self.warmup_snapshot = Some(self.aggregate_server_metrics());
            }
            self.handle_event(at, event);
        }
        self.finish()
    }

    fn handle_event(&mut self, now: Timestamp, event: Event) {
        match event {
            Event::ClientWake { client } => self.client_wake(client, now),
            Event::RequestArrival {
                server,
                client,
                request,
            } => self.process_at_server(server, now, Work::Client { client, request }),
            Event::ReplyArrival { client, reply } => self.reply_arrival(client, reply, now),
            Event::MessageArrival { envelope } => {
                let to = envelope.to;
                self.process_at_server(
                    to,
                    now,
                    Work::Message {
                        from: envelope.from,
                        message: envelope.message,
                    },
                );
            }
            Event::ServerTick { server } => {
                self.process_at_server(server, now, Work::Tick);
                let next = now + self.cfg.deployment.heartbeat_interval;
                if next <= self.end {
                    self.queue.push(next, Event::ServerTick { server });
                }
            }
            Event::InjectPartition { a, b } => self.network.partition(a, b),
            Event::HealPartition { a, b } => {
                for (at, envelope) in self.network.heal(a, b, now) {
                    self.queue.push(at, Event::MessageArrival { envelope });
                }
            }
            Event::Chaos(action) => self.apply_chaos(action, now),
        }
    }

    fn apply_chaos(&mut self, action: ChaosAction, now: Timestamp) {
        match action {
            ChaosAction::BeginLag { a, b, extra } => self.network.set_lag(a, b, extra),
            ChaosAction::EndLag { a, b } => self.network.clear_lag(a, b),
            ChaosAction::BeginDrop { a, b } => self.network.set_drop(a, b),
            ChaosAction::EndDrop { a, b } => self.network.clear_drop(a, b),
            ChaosAction::BeginDup { a, b } => self.network.set_duplicate(a, b),
            ChaosAction::EndDup { a, b } => self.network.clear_duplicate(a, b),
            ChaosAction::Restart { replica, outage } => {
                // A rolling restart of one data center: every server freezes (requests
                // queue behind `busy_until`) while its durable state survives, then the
                // backlog drains.
                let frozen_until = now + outage;
                for entry in self
                    .servers
                    .iter_mut()
                    .filter(|(id, _)| id.replica == replica)
                    .map(|(_, entry)| entry)
                {
                    entry.busy_until = entry.busy_until.max(frozen_until);
                }
            }
        }
    }

    // -----------------------------------------------------------------------------------
    // Clients
    // -----------------------------------------------------------------------------------

    fn routing_delay(&self, home: ServerId, target: ServerId) -> Duration {
        if home == target {
            Duration::from_micros(1)
        } else {
            self.cfg.deployment.latency.intra_dc
        }
    }

    fn client_wake(&mut self, idx: usize, now: Timestamp) {
        if now >= self.measure_end {
            // The measured window is over: the client stops issuing new operations so the
            // system can drain before convergence checks.
            return;
        }
        let (request, target, outstanding) = {
            let entry = &mut self.clients[idx];
            if entry.outstanding.is_some() {
                // The previous operation has not completed (it may be blocked server-side);
                // a closed-loop client never pipelines. Try again after a think time.
                let retry = now + self.cfg.think_time;
                self.queue.push(retry, Event::ClientWake { client: idx });
                return;
            }
            let op = entry.generator.next_operation();
            let target = ServerId::new(entry.home.replica, op.target_partition);
            let (request, kind, key) = match op.kind {
                OperationKind::Get { key } => (entry.session.get(key), OpKind::Get, Some(key)),
                OperationKind::Put { key, value } => {
                    (entry.session.put(key, value), OpKind::Put, Some(key))
                }
                OperationKind::RoTx { keys } => (entry.session.ro_tx(keys), OpKind::RoTx, None),
            };
            entry.outstanding = Some(Outstanding {
                kind,
                issued_at: now,
                key,
            });
            (request, target, entry.home)
        };
        let delay = self.routing_delay(outstanding, target);
        self.queue.push(
            now + delay,
            Event::RequestArrival {
                server: target,
                client: idx,
                request,
            },
        );
    }

    fn reply_arrival(&mut self, idx: usize, reply: ClientReply, now: Timestamp) {
        let client_id = self.clients[idx].session.client_id();
        let home_replica = self.clients[idx].home.replica;
        let outstanding = self.clients[idx].outstanding.take();

        // Feed the checker before updating the session (it needs the pre-read state only
        // for its own bookkeeping, which it manages internally).
        if let Some(checker) = self.checker.as_mut() {
            match &reply {
                ClientReply::Get(resp) => {
                    let key = outstanding.as_ref().and_then(|o| o.key);
                    if let Some(key) = key {
                        let returned = resp
                            .value
                            .as_ref()
                            .map(|_| (resp.update_time, resp.source_replica));
                        checker.record_read(client_id, key, returned);
                    }
                }
                ClientReply::Put { update_time } => {
                    if let Some(key) = outstanding.as_ref().and_then(|o| o.key) {
                        checker.record_write(client_id, key, *update_time, home_replica);
                    }
                }
                ClientReply::RoTx { items } => {
                    let observed: Vec<(Key, Option<(Timestamp, pocc_types::ReplicaId)>)> = items
                        .iter()
                        .map(|item| {
                            (
                                item.key,
                                item.response.value.as_ref().map(|_| {
                                    (item.response.update_time, item.response.source_replica)
                                }),
                            )
                        })
                        .collect();
                    checker.record_transaction(client_id, &observed);
                }
                ClientReply::SessionAborted { .. } => {}
            }
        }

        let aborted = {
            let entry = &mut self.clients[idx];
            match entry.session.process_reply(&reply) {
                Ok(()) => false,
                Err(_) => {
                    entry.session.reinitialize();
                    entry.reinitializations += 1;
                    true
                }
            }
        };
        if aborted {
            if let Some(checker) = self.checker.as_mut() {
                checker.reset_session(client_id);
            }
            if now >= self.warmup_end && now <= self.measure_end {
                self.reinits_in_window += 1;
            }
        } else if let Some(outstanding) = outstanding {
            if outstanding.issued_at >= self.warmup_end && now <= self.measure_end {
                let latency = now.saturating_since(outstanding.issued_at);
                self.latency_all.record(latency);
                match outstanding.kind {
                    OpKind::Get => {
                        self.gets_completed += 1;
                        self.latency_get.record(latency);
                    }
                    OpKind::Put => {
                        self.puts_completed += 1;
                        self.latency_put.record(latency);
                    }
                    OpKind::RoTx => {
                        self.rotx_completed += 1;
                        self.latency_rotx.record(latency);
                    }
                }
            }
        }

        let next = now + self.cfg.think_time;
        self.queue.push(next, Event::ClientWake { client: idx });
    }

    // -----------------------------------------------------------------------------------
    // Servers
    // -----------------------------------------------------------------------------------

    fn service_time(&self, work: &Work) -> Duration {
        let d = &self.cfg.deployment;
        match work {
            Work::Client { .. } => d.op_service_time,
            Work::Message { message, .. } => match message {
                ServerMessage::SliceRequest { .. } => d.op_service_time,
                ServerMessage::SliceResponse { .. } => d.replication_service_time,
                _ => d.replication_service_time,
            },
            Work::Tick => d.replication_service_time,
        }
    }

    fn process_at_server(&mut self, server: ServerId, arrival: Timestamp, work: Work) {
        let service = self.service_time(&work);
        let chain_cost = self.cfg.deployment.chain_traversal_cost;
        let busy_until = self
            .servers
            .get(&server)
            .expect("event for a server of this deployment")
            .busy_until;
        let start = arrival.max(busy_until);
        let nominal_completion = start + service;

        // The server sees its (skewed) clock at the moment it processes the work.
        self.base_clock.set(nominal_completion);

        let (outputs, extra_work) = {
            let entry = self.servers.get_mut(&server).expect("server exists");
            let outputs = match work {
                Work::Client { client, request } => {
                    let client_id = self.clients[client].session.client_id();
                    entry.server.handle_client_request(client_id, request)
                }
                Work::Message { from, message } => {
                    entry.server.handle_server_message(from, message)
                }
                Work::Tick => entry.server.tick(),
            };
            (outputs, entry.server.take_extra_work())
        };

        let completion = nominal_completion + chain_cost * extra_work as u32;
        self.servers
            .get_mut(&server)
            .expect("server exists")
            .busy_until = completion;

        self.dispatch_outputs(server, completion, outputs);
    }

    fn dispatch_outputs(&mut self, from: ServerId, at: Timestamp, outputs: Vec<ServerOutput>) {
        for output in outputs {
            match output {
                ServerOutput::Reply { client, reply } => {
                    let idx = client.raw() as usize;
                    let home = self.clients[idx].home;
                    let delay = self.routing_delay(home, from);
                    self.queue
                        .push(at + delay, Event::ReplyArrival { client: idx, reply });
                }
                ServerOutput::Send { to, message } => {
                    let envelope = Envelope::new(from, to, at, message);
                    for (deliver_at, envelope) in self.network.send(envelope, at) {
                        self.queue
                            .push(deliver_at, Event::MessageArrival { envelope });
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------------------------
    // Reporting
    // -----------------------------------------------------------------------------------

    fn aggregate_server_metrics(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for entry in self.servers.values() {
            total.merge(&entry.server.metrics());
        }
        total
    }

    /// Sums store statistics over every server: the aggregate, plus the per-shard view
    /// (element `i` accumulates shard `i` of all servers).
    fn aggregate_store_stats(&self) -> (pocc_storage::StoreStats, Vec<pocc_storage::ShardStats>) {
        let mut store = pocc_storage::StoreStats::default();
        let mut shards: Vec<pocc_storage::ShardStats> = Vec::new();
        for entry in self.servers.values() {
            store.merge(&entry.server.store_stats());
            for (i, sh) in entry.server.shard_stats().into_iter().enumerate() {
                if shards.len() <= i {
                    shards.resize(i + 1, pocc_storage::ShardStats::default());
                }
                shards[i].merge(&sh);
            }
        }
        (store, shards)
    }

    fn check_convergence(&self) -> bool {
        for partition in self.cfg.deployment.partitions() {
            let mut digests = Vec::new();
            for replica in self.cfg.deployment.replicas() {
                let id = ServerId::new(replica, partition);
                digests.push(self.servers[&id].server.digest());
            }
            if digests.windows(2).any(|w| w[0] != w[1]) {
                return false;
            }
        }
        true
    }

    fn finish(self) -> SimReport {
        let final_metrics = self.aggregate_server_metrics();
        let baseline = self.warmup_snapshot.clone().unwrap_or_default();
        let delta = final_metrics.delta_since(&baseline);

        let operations_completed = self.gets_completed + self.puts_completed + self.rotx_completed;
        let window = self.cfg.duration;
        let throughput = if window.is_zero() {
            0.0
        } else {
            operations_completed as f64 / window.as_secs_f64()
        };

        let consistency_violations = self
            .checker
            .as_ref()
            .map(|c| c.violations().len() as u64)
            .unwrap_or(0);
        let converged = self.check_convergence();
        let network = self.network.stats();
        let (store, store_shards) = self.aggregate_store_stats();

        SimReport {
            protocol: self.cfg.protocol,
            replicas: self.cfg.deployment.num_replicas,
            partitions: self.cfg.deployment.num_partitions,
            clients: self.clients.len(),
            measured_window: window,
            operations_completed,
            gets_completed: self.gets_completed,
            puts_completed: self.puts_completed,
            rotx_completed: self.rotx_completed,
            sessions_reinitialized: self.reinits_in_window,
            throughput_ops_per_sec: throughput,
            latency_all: self.latency_all,
            latency_get: self.latency_get,
            latency_put: self.latency_put,
            latency_rotx: self.latency_rotx,
            server_metrics: delta,
            network,
            store,
            store_shards,
            consistency_violations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;
    use pocc_types::ReplicaId;
    use pocc_workload::WorkloadMix;

    fn quick_config(protocol: ProtocolKind) -> SimConfig {
        SimConfig::builder()
            .protocol(protocol)
            .partitions(2)
            .clients_per_partition(2)
            .keys_per_partition(100)
            .warmup(Duration::from_millis(100))
            .duration(Duration::from_millis(400))
            .drain(Duration::from_millis(400))
            .think_time(Duration::from_millis(5))
            .check_consistency(true)
            .seed(11)
            .build()
    }

    #[test]
    fn pocc_simulation_completes_operations_without_violations() {
        let report = Simulation::new(quick_config(ProtocolKind::Pocc)).run();
        assert!(report.operations_completed > 50, "{}", report.summary());
        assert!(report.throughput_ops_per_sec > 0.0);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.converged, "replicas must converge after draining");
        assert!(report.server_metrics.puts_served > 0);
        assert!(report.server_metrics.replicate_sent > 0);
        // Store statistics are aggregated over every server and every shard.
        assert!(report.store.keys > 0);
        assert!(report.store.versions >= report.store.keys);
        assert_eq!(report.store_shards.len(), 8, "default shard count");
        assert_eq!(
            report
                .store_shards
                .iter()
                .map(|s| s.versions)
                .sum::<usize>(),
            report.store.versions
        );
    }

    #[test]
    fn cure_simulation_completes_operations_without_violations() {
        let report = Simulation::new(quick_config(ProtocolKind::Cure)).run();
        assert!(report.operations_completed > 50);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.converged);
        // The stabilization protocol must actually run.
        assert!(report.server_metrics.stabilization_messages > 0);
    }

    #[test]
    fn ha_pocc_simulation_runs_clean_without_partitions() {
        let report = Simulation::new(quick_config(ProtocolKind::HaPocc)).run();
        assert!(report.operations_completed > 50);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.converged);
    }

    #[test]
    fn adaptive_simulation_completes_operations_without_violations() {
        let report = Simulation::new(quick_config(ProtocolKind::Adaptive)).run();
        assert!(report.operations_completed > 50);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.converged);
        // The stabilization protocol behind the stable fall-back must actually run.
        assert!(report.server_metrics.stabilization_messages > 0);
    }

    #[test]
    fn transactional_workload_completes_transactions() {
        let cfg = SimConfig::builder()
            .protocol(ProtocolKind::Pocc)
            .partitions(4)
            .clients_per_partition(2)
            .keys_per_partition(100)
            .mix(WorkloadMix::TxPut {
                partitions_per_tx: 3,
            })
            .warmup(Duration::from_millis(100))
            .duration(Duration::from_millis(400))
            .drain(Duration::from_millis(400))
            .think_time(Duration::from_millis(5))
            .check_consistency(true)
            .seed(3)
            .build();
        let report = Simulation::new(cfg).run();
        assert!(report.rotx_completed > 10);
        assert!(report.puts_completed > 10);
        assert_eq!(report.consistency_violations, 0);
        assert!(report.server_metrics.slices_served > 0);
    }

    #[test]
    fn scripted_chaos_stays_clean_and_convergent() {
        // One window of each disturbance, all over before the drain starts (the measured
        // window ends at 500ms, the drain at 900ms).
        let r = ReplicaId;
        let ms = Duration::from_millis;
        let cfg = SimConfig::builder()
            .protocol(ProtocolKind::Pocc)
            .partitions(2)
            .clients_per_partition(2)
            .keys_per_partition(100)
            .warmup(Duration::from_millis(100))
            .duration(Duration::from_millis(400))
            .drain(Duration::from_millis(400))
            .think_time(Duration::from_millis(5))
            .check_consistency(true)
            .seed(11)
            .chaos_step(ChaosStep::LagSpike {
                at: ms(120),
                until: ms(200),
                a: r(0),
                b: r(1),
                extra: ms(25),
            })
            .chaos_step(ChaosStep::DropWindow {
                at: ms(150),
                until: ms(260),
                a: r(1),
                b: r(2),
            })
            .chaos_step(ChaosStep::DupWindow {
                at: ms(200),
                until: ms(320),
                a: r(0),
                b: r(2),
            })
            .chaos_step(ChaosStep::Partition {
                at: ms(250),
                a: r(0),
                b: r(1),
            })
            .chaos_step(ChaosStep::Heal {
                at: ms(380),
                a: r(0),
                b: r(1),
            })
            .chaos_step(ChaosStep::Restart {
                at: ms(300),
                replica: r(2),
                outage: ms(40),
            })
            .build();
        assert!(cfg.chaos.ends_by(ms(500)));
        let report = Simulation::new(cfg).run();
        assert!(report.operations_completed > 0, "{}", report.summary());
        assert_eq!(report.consistency_violations, 0);
        assert!(report.converged, "replicas must converge after chaos ends");
        assert!(
            report.network.dropped_messages > 0,
            "the drop window must actually bite"
        );
        assert!(
            report.network.duplicated_messages > 0,
            "the duplication window must actually bite"
        );
    }

    #[test]
    fn chaos_runs_are_deterministic_per_seed() {
        let chaotic = |seed: u64| {
            let mut gen = crate::chaos::ChaosGen::new(seed, 3);
            let schedule = gen.sample(Duration::from_millis(100), Duration::from_millis(500), 5);
            let mut cfg = quick_config(ProtocolKind::Adaptive);
            cfg.seed = seed;
            cfg.chaos = schedule;
            Simulation::new(cfg).run()
        };
        let a = chaotic(21);
        let b = chaotic(21);
        assert_eq!(a.operations_completed, b.operations_completed);
        assert_eq!(a.network, b.network);
        assert_eq!(a.consistency_violations, 0);
        assert!(a.converged);
    }

    #[test]
    fn restart_outage_stalls_a_replica_but_recovers() {
        let mut cfg = quick_config(ProtocolKind::Pocc);
        cfg.chaos = crate::chaos::ChaosSchedule::new().step(ChaosStep::Restart {
            at: Duration::from_millis(200),
            replica: ReplicaId(1),
            outage: Duration::from_millis(80),
        });
        let with_restart = Simulation::new(cfg).run();
        let baseline = Simulation::new(quick_config(ProtocolKind::Pocc)).run();
        assert!(with_restart.converged);
        assert_eq!(with_restart.consistency_violations, 0);
        assert!(
            with_restart.operations_completed < baseline.operations_completed,
            "an 80ms outage must cost throughput ({} vs {})",
            with_restart.operations_completed,
            baseline.operations_completed
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let a = Simulation::new(quick_config(ProtocolKind::Pocc)).run();
        let b = Simulation::new(quick_config(ProtocolKind::Pocc)).run();
        assert_eq!(a.operations_completed, b.operations_completed);
        assert_eq!(a.gets_completed, b.gets_completed);
        assert_eq!(a.puts_completed, b.puts_completed);
        assert_eq!(
            a.server_metrics.blocked_operations,
            b.server_metrics.blocked_operations
        );
        assert_eq!(a.network.messages_sent, b.network.messages_sent);
    }

    #[test]
    fn different_seeds_change_the_trace() {
        let mut cfg = quick_config(ProtocolKind::Pocc);
        cfg.seed = 12345;
        let a = Simulation::new(cfg).run();
        let b = Simulation::new(quick_config(ProtocolKind::Pocc)).run();
        assert_ne!(a.network.messages_sent, b.network.messages_sent);
    }
}
