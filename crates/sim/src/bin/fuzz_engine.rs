//! Seeded interleaving fuzzer for the protocol engine.
//!
//! Runs `--seeds` fuzz cases per protocol (plus a cross-protocol differential sweep) and
//! exits non-zero on the first failure, printing a minimal, paste-ready regression test
//! that reproduces it from the seed alone.
//!
//! ```text
//! fuzz_engine [--seeds N] [--start-seed S] [--steps K] [--protocol pocc|cure|ha|adaptive|all]
//!             [--no-chaos] [--no-cross] [--quiet]
//! ```

use pocc_sim::fuzz::{check_case, cross_protocol_check, FuzzCase};
use pocc_sim::ProtocolKind;
use std::process::ExitCode;

struct Args {
    seeds: u64,
    start_seed: u64,
    steps: usize,
    protocols: Vec<ProtocolKind>,
    chaos: bool,
    cross: bool,
    quiet: bool,
}

const ALL_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Pocc,
    ProtocolKind::Cure,
    ProtocolKind::HaPocc,
    ProtocolKind::Adaptive,
];

fn usage() -> ! {
    eprintln!(
        "usage: fuzz_engine [--seeds N] [--start-seed S] [--steps K] \
         [--protocol pocc|cure|ha|adaptive|all] [--no-chaos] [--no-cross] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 100,
        start_seed: 0,
        steps: FuzzCase::default().steps,
        protocols: ALL_PROTOCOLS.to_vec(),
        chaos: true,
        cross: true,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds = value("--seeds").parse().unwrap_or_else(|_| usage());
            }
            "--start-seed" => {
                args.start_seed = value("--start-seed").parse().unwrap_or_else(|_| usage());
            }
            "--steps" => {
                args.steps = value("--steps").parse().unwrap_or_else(|_| usage());
            }
            "--protocol" => {
                args.protocols = match value("--protocol").as_str() {
                    "pocc" => vec![ProtocolKind::Pocc],
                    "cure" => vec![ProtocolKind::Cure],
                    "ha" => vec![ProtocolKind::HaPocc],
                    "adaptive" => vec![ProtocolKind::Adaptive],
                    "all" => ALL_PROTOCOLS.to_vec(),
                    other => {
                        eprintln!("unknown protocol {other:?}");
                        usage()
                    }
                };
            }
            "--no-chaos" => args.chaos = false,
            "--no-cross" => args.cross = false,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut cases = 0u64;
    let mut ops = 0u64;

    for protocol in &args.protocols {
        for seed in args.start_seed..args.start_seed + args.seeds {
            let case = FuzzCase {
                protocol: *protocol,
                seed,
                steps: args.steps,
                chaos: args.chaos,
                ..FuzzCase::default()
            };
            match check_case(&case) {
                Ok(outcome) => {
                    cases += 1;
                    ops += outcome.ops_completed;
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    return ExitCode::FAILURE;
                }
            }
            if !args.quiet && (seed - args.start_seed + 1).is_multiple_of(500) {
                println!(
                    "[{protocol}] {}/{} seeds clean",
                    seed - args.start_seed + 1,
                    args.seeds
                );
            }
        }
        if !args.quiet {
            println!("[{protocol}] {} seeds clean", args.seeds);
        }
    }

    if args.cross {
        for seed in args.start_seed..args.start_seed + args.seeds {
            if let Err(divergence) = cross_protocol_check(seed, 150) {
                eprintln!("cross-protocol divergence: {divergence}");
                return ExitCode::FAILURE;
            }
        }
        if !args.quiet {
            println!("[cross-protocol] {} seeds equal", args.seeds);
        }
    }

    println!(
        "fuzz_engine: {} cases clean ({} client operations exercised)",
        cases, ops
    );
    ExitCode::SUCCESS
}
