//! Harness-side latency and throughput accounting.

use std::time::Duration;

/// Base-2 log-linear resolution: each power-of-two range is split into this many
/// equal-width sub-buckets, bounding the relative quantile error at `1/SUB_COUNT`.
const SUB_BITS: u32 = 5;
/// Number of sub-buckets per power-of-two range (32).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Values `0..SUB_COUNT` get one exact bucket each (group 0); each exponent
/// `SUB_BITS..64` contributes one group of `SUB_COUNT` sub-buckets.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as u64) * SUB_COUNT + SUB_COUNT) as usize;

/// An online latency aggregator with log-linear buckets (an HDR-histogram-style layout).
///
/// Latencies are recorded in microseconds. Values below 32 µs get exact buckets; above
/// that, each power-of-two range is split into 32 equal sub-buckets, so any quantile
/// (p50 through p999) is reported with at most ~3.1% relative error while recording
/// stays allocation-free and O(1) per sample. Aggregators [`merge`](LatencyStats::merge)
/// exactly: bucket boundaries are shared, so merging histograms is element-wise addition
/// and merged quantiles are bounded by the per-part quantiles (up to one bucket width).
#[derive(Clone)]
pub struct LatencyStats {
    count: u64,
    sum_micros: u64,
    max_micros: u64,
    /// Sample counts per log-linear bucket; see [`bucket_index`].
    buckets: Box<[u64; NUM_BUCKETS]>,
}

/// The bucket a latency of `us` microseconds falls into.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us < SUB_COUNT {
        us as usize
    } else {
        let exponent = 63 - u64::from(us.leading_zeros()); // >= SUB_BITS
        let group = exponent - u64::from(SUB_BITS) + 1;
        let sub = (us >> (exponent - u64::from(SUB_BITS))) - SUB_COUNT;
        (group * SUB_COUNT + sub) as usize
    }
}

/// The largest value (in µs) that falls into bucket `index` (inclusive upper edge).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        index
    } else {
        let group = index / SUB_COUNT;
        let sub = index % SUB_COUNT;
        // Group `g` covers exponent `g + SUB_BITS - 1`; its sub-buckets are
        // `2^(g-1)` µs wide.
        let shift = group - 1;
        let upper = ((u128::from(SUB_COUNT) + u128::from(sub) + 1) << shift) - 1;
        upper.min(u128::from(u64::MAX)) as u64
    }
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum_micros: 0,
            max_micros: 0,
            buckets: Box::new([0; NUM_BUCKETS]),
        }
    }
}

impl std::fmt::Debug for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyStats")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

impl LatencyStats {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        self.count += 1;
        self.sum_micros += us;
        self.max_micros = self.max_micros.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        self.sum_micros
            .checked_div(self.count)
            .map(Duration::from_micros)
            .unwrap_or(Duration::ZERO)
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// An upper bound of the `q`-quantile (e.g. `0.99` for p99), within ~3.1% of the
    /// exact value (one log-linear bucket width).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(bucket_upper(i).min(self.max_micros));
            }
        }
        self.max()
    }

    /// The median latency (upper bucket edge).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// The 95th-percentile latency.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// The 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// The 99.9th-percentile latency.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// Merges another aggregator into this one. Bucket boundaries are shared between all
    /// aggregators, so the merge is exact: the merged histogram is identical to one that
    /// recorded both sample streams directly.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_micros(100));
        s.record(Duration::from_micros(300));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_micros(200));
        assert_eq!(s.max(), Duration::from_micros(300));
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = LatencyStats::new();
        for us in 0..32u64 {
            s.record(Duration::from_micros(us));
        }
        // One sample per exact bucket: the q-quantile is the ceil(32q)-1-th value.
        assert_eq!(s.quantile(1.0 / 32.0), Duration::from_micros(0));
        assert_eq!(s.p50(), Duration::from_micros(15));
        assert_eq!(s.quantile(1.0), Duration::from_micros(31));
    }

    #[test]
    fn quantiles_are_within_the_advertised_error() {
        let mut s = LatencyStats::new();
        for i in 1..=100_000u64 {
            s.record(Duration::from_micros(i));
        }
        for (q, exact) in [
            (0.50, 50_000u64),
            (0.95, 95_000),
            (0.99, 99_000),
            (0.999, 99_900),
        ] {
            let got = s.quantile(q).as_micros() as u64;
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q{q}: error {err} too large");
        }
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut s = LatencyStats::new();
        for i in 1..=1000u64 {
            s.record(Duration::from_micros(i));
        }
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(p50 >= Duration::from_micros(500 / 2) && p50 <= Duration::from_micros(1024));
        assert!(p99 >= p50);
        assert!(p99 <= Duration::from_micros(1000));
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn percentile_helpers_are_ordered() {
        let mut s = LatencyStats::new();
        for i in 1..=10_000u64 {
            s.record(Duration::from_micros(i * 7 % 10_000));
        }
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.p999());
        assert!(s.p999() <= s.max());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
        assert_eq!(a.mean(), Duration::from_micros(505));
    }

    #[test]
    fn merge_is_equivalent_to_recording_directly() {
        let mut merged = LatencyStats::new();
        let mut direct = LatencyStats::new();
        let mut part = LatencyStats::new();
        for i in 0..1_000u64 {
            let us = Duration::from_micros(i * i % 77_777);
            direct.record(us);
            if i % 2 == 0 {
                merged.record(us);
            } else {
                part.record(us);
            }
        }
        merged.merge(&part);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.mean(), direct.mean());
        assert_eq!(merged.max(), direct.max());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn zero_latency_samples_are_handled() {
        let mut s = LatencyStats::new();
        s.record(Duration::ZERO);
        s.record(Duration::from_micros(8));
        assert_eq!(s.count(), 2);
        assert!(s.quantile(0.1) <= Duration::from_micros(8));
    }

    #[test]
    fn bucket_layout_is_consistent() {
        // Every representable value maps to a bucket whose range contains it.
        for us in [0u64, 1, 31, 32, 33, 63, 64, 1000, 1_000_000, u64::MAX / 2] {
            let i = bucket_index(us);
            assert!(us <= bucket_upper(i), "{us} above upper edge of bucket {i}");
            if i > 0 {
                assert!(us > bucket_upper(i - 1), "{us} not above bucket {}", i - 1);
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }
}
