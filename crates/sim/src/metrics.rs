//! Harness-side latency and throughput accounting.

use std::time::Duration;

/// An online latency aggregator with logarithmic buckets.
///
/// Latencies are recorded in microseconds into power-of-two buckets, which is plenty of
/// resolution for the avg / p50 / p99 numbers the figures report while keeping the
/// aggregator allocation-free and O(1) per sample.
#[derive(Clone, Debug)]
pub struct LatencyStats {
    count: u64,
    sum_micros: u64,
    max_micros: u64,
    /// `buckets[i]` counts samples whose latency in µs has `i` significant bits
    /// (i.e. falls in `[2^(i-1), 2^i)`, with bucket 0 for 0 µs).
    buckets: [u64; 64],
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum_micros: 0,
            max_micros: 0,
            buckets: [0; 64],
        }
    }
}

impl LatencyStats {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        self.count += 1;
        self.sum_micros += us;
        self.max_micros = self.max_micros.max(us);
        let bucket = (64 - us.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        self.sum_micros
            .checked_div(self.count)
            .map(Duration::from_micros)
            .unwrap_or(Duration::ZERO)
    }

    /// Maximum latency observed.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// An upper bound of the `q`-quantile (e.g. `0.99` for p99), at bucket resolution.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return Duration::from_micros(upper.min(self.max_micros));
            }
        }
        self.max()
    }

    /// Merges another aggregator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.max(), Duration::ZERO);
        assert_eq!(s.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_micros(100));
        s.record(Duration::from_micros(300));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Duration::from_micros(200));
        assert_eq!(s.max(), Duration::from_micros(300));
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut s = LatencyStats::new();
        for i in 1..=1000u64 {
            s.record(Duration::from_micros(i));
        }
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(p50 >= Duration::from_micros(500 / 2) && p50 <= Duration::from_micros(1024));
        assert!(p99 >= p50);
        assert!(p99 <= Duration::from_micros(1000));
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
        assert_eq!(a.mean(), Duration::from_micros(505));
    }

    #[test]
    fn zero_latency_samples_are_handled() {
        let mut s = LatencyStats::new();
        s.record(Duration::ZERO);
        s.record(Duration::from_micros(8));
        assert_eq!(s.count(), 2);
        assert!(s.quantile(0.1) <= Duration::from_micros(8));
    }
}
