//! The result of one simulation run.

use crate::config::ProtocolKind;
use crate::metrics::LatencyStats;
use pocc_net::NetworkStats;
use pocc_proto::MetricsSnapshot;
use pocc_storage::{ShardStats, StoreStats};
use std::time::Duration;

/// Everything a figure harness or test needs to know about one simulation run.
///
/// All protocol-level counters (`server_metrics`) are deltas over the measured window
/// (warm-up excluded); latencies and throughput likewise cover only the measured window.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The protocol that was run.
    pub protocol: ProtocolKind,
    /// Number of data centers.
    pub replicas: usize,
    /// Number of partitions per data center.
    pub partitions: usize,
    /// Total closed-loop clients.
    pub clients: usize,
    /// Length of the measured window.
    pub measured_window: Duration,

    /// Client operations completed within the measured window (GET + PUT + RO-TX).
    pub operations_completed: u64,
    /// GET operations completed.
    pub gets_completed: u64,
    /// PUT operations completed.
    pub puts_completed: u64,
    /// Read-only transactions completed.
    pub rotx_completed: u64,
    /// Client sessions that were aborted and re-initialised during the measured window.
    pub sessions_reinitialized: u64,

    /// Overall throughput in operations per second.
    pub throughput_ops_per_sec: f64,
    /// Latency distribution of all operations.
    pub latency_all: LatencyStats,
    /// Latency distribution of GETs.
    pub latency_get: LatencyStats,
    /// Latency distribution of PUTs.
    pub latency_put: LatencyStats,
    /// Latency distribution of read-only transactions.
    pub latency_rotx: LatencyStats,

    /// Aggregated protocol metrics (delta over the measured window, summed over servers).
    pub server_metrics: MetricsSnapshot,
    /// Network statistics over the whole run.
    pub network: NetworkStats,
    /// End-of-run store statistics, summed over every server of the deployment.
    pub store: StoreStats,
    /// End-of-run per-shard store statistics: element `i` sums shard `i` across all
    /// servers (`max_chain_len` is the maximum). Shows how evenly the key space spreads.
    pub store_shards: Vec<ShardStats>,

    /// Number of causal-consistency violations found by the exact checker (always zero
    /// when the checker is disabled).
    pub consistency_violations: u64,
    /// Whether every replica of every partition converged to the same latest-version
    /// digest by the end of the drain period.
    pub converged: bool,
}

impl SimReport {
    /// Probability that an operation blocked on a missing dependency (POCC; Figures 2a, 3c).
    pub fn blocking_probability(&self) -> f64 {
        self.server_metrics.blocking_probability()
    }

    /// Mean time a blocked operation spent blocked (Figures 2a, 3c).
    pub fn avg_block_time(&self) -> Duration {
        self.server_metrics.avg_block_time()
    }

    /// Fraction of GETs that returned an old (non-freshest) version (Figure 2b).
    pub fn old_get_fraction(&self) -> f64 {
        self.server_metrics.old_get_fraction()
    }

    /// Fraction of GETs that observed an unmerged item (Figure 2b).
    pub fn unmerged_get_fraction(&self) -> f64 {
        self.server_metrics.unmerged_get_fraction()
    }

    /// Fraction of transactional reads that returned an old version (Figure 3d).
    pub fn old_tx_fraction(&self) -> f64 {
        self.server_metrics.old_tx_fraction()
    }

    /// Fraction of transactional reads for which some version was unmerged (Figure 3d).
    pub fn unmerged_tx_fraction(&self) -> f64 {
        self.server_metrics.unmerged_tx_fraction()
    }

    /// A one-line human-readable summary, used by the examples.
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.0} ops/s ({} ops in {:?}), avg latency {:?}, blocking p={:.2e}, old GETs {:.2}%",
            self.protocol,
            self.throughput_ops_per_sec,
            self.operations_completed,
            self.measured_window,
            self.latency_all.mean(),
            self.blocking_probability(),
            self.old_get_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            protocol: ProtocolKind::Pocc,
            replicas: 3,
            partitions: 4,
            clients: 12,
            measured_window: Duration::from_secs(1),
            operations_completed: 1000,
            gets_completed: 900,
            puts_completed: 90,
            rotx_completed: 10,
            sessions_reinitialized: 0,
            throughput_ops_per_sec: 1000.0,
            latency_all: LatencyStats::new(),
            latency_get: LatencyStats::new(),
            latency_put: LatencyStats::new(),
            latency_rotx: LatencyStats::new(),
            server_metrics: MetricsSnapshot {
                gets_served: 900,
                puts_served: 90,
                rotx_served: 10,
                blocked_operations: 10,
                old_gets: 90,
                ..MetricsSnapshot::default()
            },
            network: NetworkStats::default(),
            store: StoreStats::default(),
            store_shards: Vec::new(),
            consistency_violations: 0,
            converged: true,
        }
    }

    #[test]
    fn derived_fractions_delegate_to_the_metrics() {
        let r = report();
        assert!((r.blocking_probability() - 0.01).abs() < 1e-12);
        assert!((r.old_get_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(r.avg_block_time(), Duration::ZERO);
    }

    #[test]
    fn summary_mentions_protocol_and_throughput() {
        let s = report().summary();
        assert!(s.contains("POCC"));
        assert!(s.contains("1000 ops"));
    }
}
