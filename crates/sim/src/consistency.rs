//! An exact causal-consistency checker, independent of the protocol metadata.
//!
//! The checker rebuilds the true causal order from the observable history: it records, for
//! every written version, the writer's causal context (the newest version of every key the
//! writer had observed when it wrote), and for every read it verifies that the returned
//! version is not older — under the last-writer-wins order the store uses — than a version
//! of the same key the reading client already causally knows. For read-only transactions
//! it additionally verifies the snapshot property of §II-C: the returned set must not
//! contain an item that causally depends on a newer version of another returned item.
//!
//! The checker intentionally does **not** reuse the protocol's dependency vectors: it
//! tracks exact per-key knowledge, so a protocol bug that corrupts the vectors is caught
//! rather than masked.

use pocc_types::{ClientId, Key, ReplicaId, Timestamp};
use std::collections::HashMap;

/// Identifies one written version: update time plus source replica (the last-writer-wins
/// coordinates used by the store).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct VersionRef {
    update_time: Timestamp,
    source: ReplicaId,
}

impl VersionRef {
    /// Last-writer-wins comparison: later update time wins, ties broken by lower replica.
    fn lww_newer_than(&self, other: &VersionRef) -> bool {
        (self.update_time, std::cmp::Reverse(self.source))
            > (other.update_time, std::cmp::Reverse(other.source))
    }
}

/// The causal context of a client or version: the newest known version of every key.
type Context = HashMap<Key, VersionRef>;

fn merge_context(into: &mut Context, from: &Context) {
    for (key, version) in from {
        match into.get(key) {
            Some(existing) if !version.lww_newer_than(existing) => {}
            _ => {
                into.insert(*key, *version);
            }
        }
    }
}

/// A recorded consistency violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A read returned a version older than one the client causally knew.
    StaleRead {
        /// The reading client.
        client: ClientId,
        /// The key that was read.
        key: Key,
        /// Update time of the returned version (zero when the read returned "not found").
        returned: Timestamp,
        /// Update time of the newer version the client already knew.
        known: Timestamp,
    },
    /// A read-only transaction returned an inconsistent snapshot: one returned item
    /// causally depends on a newer version of another returned item.
    BrokenSnapshot {
        /// The reading client.
        client: ClientId,
        /// The key whose returned version was too old for the snapshot.
        stale_key: Key,
        /// The key whose returned version established the dependency.
        dependent_key: Key,
    },
}

/// The checker. One instance observes the whole deployment (all clients).
#[derive(Debug, Default)]
pub struct ConsistencyChecker {
    /// Per-client causal context.
    clients: HashMap<ClientId, Context>,
    /// Writer context captured at every write.
    version_contexts: HashMap<(Key, Timestamp, ReplicaId), Context>,
    violations: Vec<Violation>,
    reads_checked: u64,
    writes_recorded: u64,
}

impl ConsistencyChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        ConsistencyChecker::default()
    }

    /// Number of reads validated.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Number of writes recorded.
    pub fn writes_recorded(&self) -> u64 {
        self.writes_recorded
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn context_mut(&mut self, client: ClientId) -> &mut Context {
        self.clients.entry(client).or_default()
    }

    /// Records a completed PUT: `client` wrote the version `(key, update_time, source)`.
    pub fn record_write(
        &mut self,
        client: ClientId,
        key: Key,
        update_time: Timestamp,
        source: ReplicaId,
    ) {
        self.writes_recorded += 1;
        let snapshot = self.clients.get(&client).cloned().unwrap_or_default();
        self.version_contexts
            .insert((key, update_time, source), snapshot);
        let version = VersionRef {
            update_time,
            source,
        };
        let ctx = self.context_mut(client);
        match ctx.get(&key) {
            Some(existing) if !version.lww_newer_than(existing) => {}
            _ => {
                ctx.insert(key, version);
            }
        }
    }

    /// Records and checks a completed GET. `returned` is `None` when the key was reported
    /// as never written.
    pub fn record_read(
        &mut self,
        client: ClientId,
        key: Key,
        returned: Option<(Timestamp, ReplicaId)>,
    ) {
        self.reads_checked += 1;
        let known = self.clients.get(&client).and_then(|c| c.get(&key)).copied();
        let returned_ref = returned.map(|(update_time, source)| VersionRef {
            update_time,
            source,
        });
        if let Some(known) = known {
            let stale = match returned_ref {
                None => true,
                Some(r) => known.lww_newer_than(&r),
            };
            if stale {
                self.violations.push(Violation::StaleRead {
                    client,
                    key,
                    returned: returned_ref
                        .map(|r| r.update_time)
                        .unwrap_or(Timestamp::ZERO),
                    known: known.update_time,
                });
            }
        }
        if let Some(r) = returned_ref {
            // The reader transitively inherits the writer's causal context.
            if let Some(writer_ctx) = self
                .version_contexts
                .get(&(key, r.update_time, r.source))
                .cloned()
            {
                let ctx = self.context_mut(client);
                merge_context(ctx, &writer_ctx);
            }
            let ctx = self.context_mut(client);
            match ctx.get(&key) {
                Some(existing) if !r.lww_newer_than(existing) => {}
                _ => {
                    ctx.insert(key, r);
                }
            }
        }
    }

    /// Records and checks a completed read-only transaction: `items` maps every requested
    /// key to the returned version (or `None` for "never written").
    pub fn record_transaction(
        &mut self,
        client: ClientId,
        items: &[(Key, Option<(Timestamp, ReplicaId)>)],
    ) {
        // Snapshot property: no returned item may causally depend on a newer version of
        // another returned item.
        for (dep_key, dep_version) in items {
            let Some((ut, sr)) = dep_version else {
                continue;
            };
            let Some(writer_ctx) = self.version_contexts.get(&(*dep_key, *ut, *sr)) else {
                continue;
            };
            for (other_key, other_version) in items {
                if other_key == dep_key {
                    continue;
                }
                if let Some(required) = writer_ctx.get(other_key) {
                    let returned = other_version.map(|(update_time, source)| VersionRef {
                        update_time,
                        source,
                    });
                    let broken = match returned {
                        None => true,
                        Some(r) => required.lww_newer_than(&r),
                    };
                    if broken {
                        self.violations.push(Violation::BrokenSnapshot {
                            client,
                            stale_key: *other_key,
                            dependent_key: *dep_key,
                        });
                    }
                }
            }
        }
        // Each returned item then counts as a read for the session state. Session
        // monotonicity (StaleRead) is checked only against the state *before* the
        // transaction, which `record_read` naturally does as it processes items in order;
        // to avoid order dependence between the items themselves we check all items first.
        let pre_context = self.clients.get(&client).cloned().unwrap_or_default();
        for (key, returned) in items {
            if let Some(known) = pre_context.get(key) {
                let stale = match returned {
                    None => true,
                    Some((ut, sr)) => known.lww_newer_than(&VersionRef {
                        update_time: *ut,
                        source: *sr,
                    }),
                };
                if stale {
                    self.violations.push(Violation::StaleRead {
                        client,
                        key: *key,
                        returned: returned.map(|(ut, _)| ut).unwrap_or(Timestamp::ZERO),
                        known: known.update_time,
                    });
                }
            }
        }
        for (key, returned) in items {
            self.reads_checked += 1;
            if let Some(r) = returned.map(|(update_time, source)| VersionRef {
                update_time,
                source,
            }) {
                if let Some(writer_ctx) = self
                    .version_contexts
                    .get(&(*key, r.update_time, r.source))
                    .cloned()
                {
                    let ctx = self.context_mut(client);
                    merge_context(ctx, &writer_ctx);
                }
                let ctx = self.context_mut(client);
                match ctx.get(key) {
                    Some(existing) if !r.lww_newer_than(existing) => {}
                    _ => {
                        ctx.insert(*key, r);
                    }
                }
            }
        }
    }

    /// Clears the per-client session state of `client`, modelling a session
    /// re-initialisation after a server-side abort (the client may legitimately stop
    /// seeing versions it previously observed).
    pub fn reset_session(&mut self, client: ClientId) {
        self.clients.remove(&client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: ReplicaId = ReplicaId(0);
    const R1: ReplicaId = ReplicaId(1);

    #[test]
    fn read_your_writes_is_enforced() {
        let mut c = ConsistencyChecker::new();
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        // Reading an older version afterwards is a violation.
        c.record_read(ClientId(1), Key(1), Some((Timestamp(5), R1)));
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(c.violations()[0], Violation::StaleRead { .. }));
    }

    #[test]
    fn fresh_or_equal_reads_are_fine() {
        let mut c = ConsistencyChecker::new();
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        c.record_read(ClientId(1), Key(1), Some((Timestamp(10), R0)));
        c.record_read(ClientId(1), Key(1), Some((Timestamp(20), R1)));
        assert!(c.violations().is_empty());
        assert_eq!(c.reads_checked(), 2);
        assert_eq!(c.writes_recorded(), 1);
    }

    #[test]
    fn transitive_dependencies_flow_through_reads() {
        let mut c = ConsistencyChecker::new();
        // Client 1 writes X then Y (Y causally depends on X).
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        c.record_write(ClientId(1), Key(2), Timestamp(20), R0);
        // Client 2 reads Y, inheriting the dependency on X...
        c.record_read(ClientId(2), Key(2), Some((Timestamp(20), R0)));
        // ...so reading key 1 as "never written" violates causality.
        c.record_read(ClientId(2), Key(1), None);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn missing_key_reads_without_dependencies_are_fine() {
        let mut c = ConsistencyChecker::new();
        c.record_read(ClientId(3), Key(9), None);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn concurrent_lower_timestamp_reads_do_not_flag_unrelated_clients() {
        let mut c = ConsistencyChecker::new();
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        // Client 2 never observed client 1's write; reading an older concurrent version is
        // causally fine.
        c.record_read(ClientId(2), Key(1), Some((Timestamp(5), R1)));
        assert!(c.violations().is_empty());
    }

    #[test]
    fn broken_snapshot_is_detected() {
        let mut c = ConsistencyChecker::new();
        // Writer creates X1, then (after observing X1) writes Y1.
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        c.record_write(ClientId(1), Key(2), Timestamp(20), R0);
        // A transaction that returns Y1 together with a pre-X1 state of key 1 is broken.
        c.record_transaction(
            ClientId(2),
            &[(Key(2), Some((Timestamp(20), R0))), (Key(1), None)],
        );
        assert!(c
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::BrokenSnapshot { .. })));
    }

    #[test]
    fn consistent_snapshot_passes() {
        let mut c = ConsistencyChecker::new();
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        c.record_write(ClientId(1), Key(2), Timestamp(20), R0);
        c.record_transaction(
            ClientId(2),
            &[
                (Key(2), Some((Timestamp(20), R0))),
                (Key(1), Some((Timestamp(10), R0))),
            ],
        );
        // Older-but-consistent snapshots are also fine.
        c.record_transaction(
            ClientId(3),
            &[(Key(1), Some((Timestamp(10), R0))), (Key(2), None)],
        );
        assert!(c.violations().is_empty());
    }

    #[test]
    fn session_reset_clears_obligations() {
        let mut c = ConsistencyChecker::new();
        c.record_write(ClientId(1), Key(1), Timestamp(10), R0);
        c.reset_session(ClientId(1));
        // After a session re-initialisation the client may no longer see its own write.
        c.record_read(ClientId(1), Key(1), None);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn lww_tie_break_matches_the_store() {
        let a = VersionRef {
            update_time: Timestamp(10),
            source: R0,
        };
        let b = VersionRef {
            update_time: Timestamp(10),
            source: R1,
        };
        // Same timestamp: the lower replica id wins.
        assert!(a.lww_newer_than(&b));
        assert!(!b.lww_newer_than(&a));
    }
}
