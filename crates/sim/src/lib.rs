//! A deterministic discrete-event simulator of geo-replicated POCC / Cure\* deployments.
//!
//! This crate is the substitute for the paper's AWS test-bed (see DESIGN.md §2): it builds
//! a full deployment — `M` data centers × `N` partitions, closed-loop clients collocated
//! with the servers, WAN/LAN links with realistic latencies, per-server CPU service times
//! and clock skew — and drives the *same protocol state machines* used by the threaded
//! runtime through a single ordered event queue.
//!
//! What the simulator measures is exactly what the paper's evaluation reports:
//! throughput, operation response times, blocking probability and blocking time (POCC),
//! data staleness (Cure\*), plus resource-accounting extras (messages, bytes, chain
//! traversals). It can also run an exact causal-consistency checker on small
//! configurations, inject and heal network partitions, and verify replica convergence —
//! which is what the integration tests in `tests/` do.
//!
//! # Example
//!
//! ```
//! use pocc_sim::{ProtocolKind, SimConfig, Simulation};
//! use std::time::Duration;
//!
//! let config = SimConfig::builder()
//!     .protocol(ProtocolKind::Pocc)
//!     .partitions(4)
//!     .clients_per_partition(2)
//!     .duration(Duration::from_millis(400))
//!     .seed(7)
//!     .build();
//! let report = Simulation::new(config).run();
//! assert!(report.operations_completed > 0);
//! assert_eq!(report.consistency_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod config;
mod consistency;
mod event;
pub mod fuzz;
mod metrics;
mod report;
mod simulation;

pub use chaos::{ChaosAction, ChaosGen, ChaosSchedule, ChaosStep};
pub use config::{FaultEvent, ProtocolKind, SimConfig, SimConfigBuilder};
pub use consistency::ConsistencyChecker;
pub use event::Event;
pub use metrics::LatencyStats;
pub use report::SimReport;
pub use simulation::Simulation;
