//! Simulation configuration.

use crate::chaos::{ChaosSchedule, ChaosStep};
use pocc_types::{Config, ReplicaId};
use pocc_workload::WorkloadMix;
use std::time::Duration;

/// Which protocol implementation the simulated servers run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// The optimistic protocol (the paper's contribution).
    Pocc,
    /// The pessimistic baseline (Cure\*).
    Cure,
    /// POCC with the availability fall-back of §III-B.
    HaPocc,
    /// Per-key optimism: POCC reads for calm keys, GSS-stable-bounded reads for keys
    /// under remote churn.
    Adaptive,
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolKind::Pocc => "POCC",
            ProtocolKind::Cure => "Cure*",
            ProtocolKind::HaPocc => "HA-POCC",
            ProtocolKind::Adaptive => "Adaptive",
        };
        f.write_str(s)
    }
}

/// A scheduled network fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultEvent {
    /// Partition the links between two data centers at the given simulation time.
    Partition {
        /// When the partition starts.
        at: Duration,
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
    /// Heal a previously injected partition.
    Heal {
        /// When the partition heals.
        at: Duration,
        /// One side of the partition.
        a: ReplicaId,
        /// The other side.
        b: ReplicaId,
    },
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The deployment (data centers, partitions, timers, latencies, service times).
    pub deployment: Config,
    /// Which protocol the servers run.
    pub protocol: ProtocolKind,
    /// Closed-loop clients attached to every (data center, partition) pair.
    pub clients_per_partition: usize,
    /// The workload mix each client runs.
    pub mix: WorkloadMix,
    /// Zipfian exponent for key popularity (0.99 in the paper).
    pub zipf_theta: f64,
    /// Keys per partition (one million in the paper; smaller values are fine for tests).
    pub keys_per_partition: u64,
    /// Size in bytes of the values clients write (8 in the paper's workloads).
    pub value_size: usize,
    /// Client think time between operations (25 ms in the paper).
    pub think_time: Duration,
    /// Warm-up period excluded from measurements.
    pub warmup: Duration,
    /// Measured run length (after warm-up).
    pub duration: Duration,
    /// Extra time after the measured window during which clients stop issuing operations
    /// but the servers keep processing, so replication can drain before convergence checks.
    pub drain: Duration,
    /// Random jitter added to network latencies, as a fraction of the base latency.
    pub network_jitter: f64,
    /// RNG seed controlling workload, jitter and clock skew.
    pub seed: u64,
    /// Whether to run the exact causal-consistency checker (expensive; intended for the
    /// small configurations used by tests).
    pub check_consistency: bool,
    /// Scheduled partitions and heals.
    pub faults: Vec<FaultEvent>,
    /// Scripted chaos: lag spikes, drop/duplication windows, restarts and further
    /// partitions, all at fixed points in simulated time.
    pub chaos: ChaosSchedule,
}

impl SimConfig {
    /// A builder initialised with the paper's test-bed defaults scaled down to a quick run.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Total number of clients in the deployment.
    pub fn total_clients(&self) -> usize {
        self.clients_per_partition * self.deployment.num_partitions * self.deployment.num_replicas
    }

    /// Total simulated time (warm-up + measured window + drain).
    pub fn total_time(&self) -> Duration {
        self.warmup + self.duration + self.drain
    }
}

/// Builder for [`SimConfig`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    deployment: Option<Config>,
    partitions: usize,
    replicas: usize,
    storage_shards: Option<usize>,
    replication_batching: Option<bool>,
    stabilization_interval: Option<Duration>,
    heartbeat_interval: Option<Duration>,
    max_clock_skew: Option<Duration>,
    protocol: ProtocolKind,
    clients_per_partition: usize,
    mix: WorkloadMix,
    zipf_theta: f64,
    keys_per_partition: u64,
    value_size: usize,
    think_time: Duration,
    warmup: Duration,
    duration: Duration,
    drain: Duration,
    network_jitter: f64,
    seed: u64,
    check_consistency: bool,
    faults: Vec<FaultEvent>,
    chaos: ChaosSchedule,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            deployment: None,
            partitions: 8,
            replicas: 3,
            storage_shards: None,
            replication_batching: None,
            stabilization_interval: None,
            heartbeat_interval: None,
            max_clock_skew: None,
            protocol: ProtocolKind::Pocc,
            clients_per_partition: 4,
            mix: WorkloadMix::balanced(),
            zipf_theta: 0.99,
            keys_per_partition: 10_000,
            value_size: 8,
            think_time: Duration::from_millis(25),
            warmup: Duration::from_millis(200),
            duration: Duration::from_secs(1),
            drain: Duration::from_millis(300),
            network_jitter: 0.05,
            seed: 1,
            check_consistency: false,
            faults: Vec::new(),
            chaos: ChaosSchedule::new(),
        }
    }
}

impl SimConfigBuilder {
    /// Uses a fully specified deployment configuration (overrides `partitions`/`replicas`).
    pub fn deployment(mut self, config: Config) -> Self {
        self.deployment = Some(config);
        self
    }

    /// Number of partitions per data center.
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Number of data centers.
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n;
        self
    }

    /// Number of key-hashed shards per partition store (overrides the deployment's
    /// `storage_shards`, including an explicitly supplied deployment).
    pub fn storage_shards(mut self, n: usize) -> Self {
        self.storage_shards = Some(n);
        self
    }

    /// Enables or disables per-destination replication/GC batching (overrides the
    /// deployment's `replication_batching`).
    pub fn replication_batching(mut self, yes: bool) -> Self {
        self.replication_batching = Some(yes);
        self
    }

    /// Overrides the deployment's stabilization interval (Cure\*'s GSS exchange timer),
    /// including an explicitly supplied deployment.
    pub fn stabilization_interval(mut self, d: Duration) -> Self {
        self.stabilization_interval = Some(d);
        self
    }

    /// Overrides the deployment's heartbeat interval `∆`, including an explicitly
    /// supplied deployment.
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = Some(d);
        self
    }

    /// Overrides the deployment's maximum absolute clock skew, including an explicitly
    /// supplied deployment.
    pub fn max_clock_skew(mut self, d: Duration) -> Self {
        self.max_clock_skew = Some(d);
        self
    }

    /// Which protocol to run.
    pub fn protocol(mut self, p: ProtocolKind) -> Self {
        self.protocol = p;
        self
    }

    /// Closed-loop clients per (data center, partition) pair.
    pub fn clients_per_partition(mut self, n: usize) -> Self {
        self.clients_per_partition = n;
        self
    }

    /// The workload mix.
    pub fn mix(mut self, mix: WorkloadMix) -> Self {
        self.mix = mix;
        self
    }

    /// Zipfian exponent.
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Keys per partition.
    pub fn keys_per_partition(mut self, n: u64) -> Self {
        self.keys_per_partition = n;
        self
    }

    /// Size in bytes of the values clients write.
    pub fn value_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "value_size must be at least 1 byte");
        self.value_size = bytes;
        self
    }

    /// Client think time.
    pub fn think_time(mut self, d: Duration) -> Self {
        self.think_time = d;
        self
    }

    /// Warm-up period.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Measured run length.
    pub fn duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Drain period after the measured window.
    pub fn drain(mut self, d: Duration) -> Self {
        self.drain = d;
        self
    }

    /// Network latency jitter fraction.
    pub fn network_jitter(mut self, fraction: f64) -> Self {
        self.network_jitter = fraction;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the exact causal-consistency checker.
    pub fn check_consistency(mut self, yes: bool) -> Self {
        self.check_consistency = yes;
        self
    }

    /// Adds a scheduled fault.
    pub fn fault(mut self, fault: FaultEvent) -> Self {
        self.faults.push(fault);
        self
    }

    /// Installs a full chaos schedule (replaces any previously added steps).
    pub fn chaos(mut self, schedule: ChaosSchedule) -> Self {
        self.chaos = schedule;
        self
    }

    /// Adds one chaos step to the schedule.
    pub fn chaos_step(mut self, step: ChaosStep) -> Self {
        self.chaos.steps.push(step);
        self
    }

    /// Builds the configuration.
    pub fn build(self) -> SimConfig {
        let mut deployment = self.deployment.unwrap_or_else(|| {
            Config::builder()
                .num_replicas(self.replicas)
                .num_partitions(self.partitions)
                .build()
                .expect("simulation deployment config is valid")
        });
        if let Some(shards) = self.storage_shards {
            assert!(shards > 0, "storage_shards must be at least 1");
            deployment.storage_shards = shards;
        }
        if let Some(batching) = self.replication_batching {
            deployment.replication_batching = batching;
        }
        if let Some(stab) = self.stabilization_interval {
            deployment.stabilization_interval = stab;
        }
        if let Some(hb) = self.heartbeat_interval {
            deployment.heartbeat_interval = hb;
        }
        if let Some(skew) = self.max_clock_skew {
            deployment.max_clock_skew = skew;
        }
        SimConfig {
            deployment,
            protocol: self.protocol,
            clients_per_partition: self.clients_per_partition,
            mix: self.mix,
            zipf_theta: self.zipf_theta,
            keys_per_partition: self.keys_per_partition,
            value_size: self.value_size,
            think_time: self.think_time,
            warmup: self.warmup,
            duration: self.duration,
            drain: self.drain,
            network_jitter: self.network_jitter,
            seed: self.seed,
            check_consistency: self.check_consistency,
            faults: self.faults,
            chaos: self.chaos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_reasonable() {
        let cfg = SimConfig::builder().build();
        assert_eq!(cfg.deployment.num_replicas, 3);
        assert_eq!(cfg.deployment.num_partitions, 8);
        assert_eq!(cfg.protocol, ProtocolKind::Pocc);
        assert_eq!(cfg.total_clients(), 3 * 8 * 4);
        assert_eq!(
            cfg.total_time(),
            Duration::from_millis(200) + Duration::from_secs(1) + Duration::from_millis(300)
        );
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = SimConfig::builder()
            .partitions(2)
            .replicas(2)
            .protocol(ProtocolKind::Cure)
            .clients_per_partition(1)
            .keys_per_partition(50)
            .seed(9)
            .check_consistency(true)
            .fault(FaultEvent::Partition {
                at: Duration::from_millis(10),
                a: ReplicaId(0),
                b: ReplicaId(1),
            })
            .build();
        assert_eq!(cfg.deployment.num_partitions, 2);
        assert_eq!(cfg.protocol, ProtocolKind::Cure);
        assert_eq!(cfg.total_clients(), 4);
        assert!(cfg.check_consistency);
        assert_eq!(cfg.faults.len(), 1);
    }

    #[test]
    fn explicit_deployment_takes_precedence() {
        let deployment = Config::builder()
            .num_replicas(2)
            .num_partitions(5)
            .build()
            .unwrap();
        let cfg = SimConfig::builder()
            .partitions(99)
            .deployment(deployment)
            .build();
        assert_eq!(cfg.deployment.num_partitions, 5);
    }

    #[test]
    fn shard_and_batching_overrides_reach_the_deployment() {
        let cfg = SimConfig::builder()
            .storage_shards(4)
            .replication_batching(true)
            .build();
        assert_eq!(cfg.deployment.storage_shards, 4);
        assert!(cfg.deployment.replication_batching);

        // Overrides also apply on top of an explicit deployment.
        let deployment = Config::builder().num_replicas(2).build().unwrap();
        let cfg = SimConfig::builder()
            .deployment(deployment)
            .storage_shards(2)
            .replication_batching(true)
            .build();
        assert_eq!(cfg.deployment.storage_shards, 2);
        assert!(cfg.deployment.replication_batching);
    }

    #[test]
    fn timer_overrides_reach_the_deployment() {
        let cfg = SimConfig::builder()
            .stabilization_interval(Duration::from_millis(50))
            .heartbeat_interval(Duration::from_micros(750))
            .max_clock_skew(Duration::from_millis(2))
            .build();
        assert_eq!(
            cfg.deployment.stabilization_interval,
            Duration::from_millis(50)
        );
        assert_eq!(
            cfg.deployment.heartbeat_interval,
            Duration::from_micros(750)
        );
        assert_eq!(cfg.deployment.max_clock_skew, Duration::from_millis(2));

        // Overrides also apply on top of an explicit deployment.
        let deployment = Config::builder().num_replicas(2).build().unwrap();
        let cfg = SimConfig::builder()
            .deployment(deployment)
            .max_clock_skew(Duration::from_millis(1))
            .build();
        assert_eq!(cfg.deployment.max_clock_skew, Duration::from_millis(1));
    }

    #[test]
    fn chaos_builder_installs_and_extends_schedules() {
        let cfg = SimConfig::builder()
            .chaos_step(ChaosStep::LagSpike {
                at: Duration::from_millis(10),
                until: Duration::from_millis(30),
                a: ReplicaId(0),
                b: ReplicaId(1),
                extra: Duration::from_millis(15),
            })
            .chaos_step(ChaosStep::Restart {
                at: Duration::from_millis(40),
                replica: ReplicaId(2),
                outage: Duration::from_millis(10),
            })
            .build();
        assert_eq!(cfg.chaos.steps.len(), 2);
        assert!(cfg.chaos.ends_by(Duration::from_millis(50)));

        let schedule = ChaosSchedule::new().step(ChaosStep::DropWindow {
            at: Duration::from_millis(5),
            until: Duration::from_millis(25),
            a: ReplicaId(0),
            b: ReplicaId(2),
        });
        let cfg = SimConfig::builder()
            .chaos_step(ChaosStep::Heal {
                at: Duration::ZERO,
                a: ReplicaId(0),
                b: ReplicaId(1),
            })
            .chaos(schedule.clone())
            .build();
        assert_eq!(cfg.chaos, schedule, "chaos() replaces earlier steps");
        assert!(SimConfig::builder().build().chaos.is_empty());
    }

    #[test]
    fn protocol_kind_display() {
        assert_eq!(ProtocolKind::Pocc.to_string(), "POCC");
        assert_eq!(ProtocolKind::Cure.to_string(), "Cure*");
        assert_eq!(ProtocolKind::HaPocc.to_string(), "HA-POCC");
        assert_eq!(ProtocolKind::Adaptive.to_string(), "Adaptive");
    }
}
