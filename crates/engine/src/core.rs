//! The shared server state and machinery every protocol variant builds on.

use crate::pending::{Parked, PendingOp, ReadMode};
use pocc_clock::Clock;
use pocc_proto::{
    ClientReply, GetResponse, MessageBatcher, MetricsSnapshot, ServerMessage, ServerOutput, TxId,
    TxItem,
};
use pocc_storage::{partition_for_key, ShardedStore};
use pocc_types::{
    ClientId, Config, DependencyVector, Key, PartitionId, ReplicaId, ServerId, Timestamp, Value,
    Version, VersionVector,
};
use std::collections::HashMap;

/// How [`EngineCore::read_slice`] classifies "unmerged" transactional items.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SliceUnmergedMode {
    /// Every *old* returned item counts as unmerged too: in POCC every version older than
    /// the returned one is already merged, so "old" and "unmerged" coincide for
    /// transactional reads (§V-C).
    OldIsUnmerged,
    /// An item is unmerged when some version of it is not yet stable under the GSS
    /// (Cure\*'s definition, §V-B).
    AgainstGss,
}

/// State of a read-only transaction coordinated by this server.
#[derive(Clone, Debug)]
struct TxState {
    client: ClientId,
    /// Number of slice responses still expected (including the local slice, if parked).
    outstanding_slices: usize,
    /// Items collected so far.
    items: Vec<TxItem>,
    /// The transaction snapshot vector `TV` (contributes to the GC lower bound).
    snapshot: DependencyVector,
    /// When the transaction started (server clock), for the partition detector.
    started: Timestamp,
}

/// The state and machinery shared by every protocol variant: the sharded version store,
/// the version vector, replication shipping and application, the message batcher,
/// heartbeat emission, the GC-vector exchange, GSS/stabilization bookkeeping, parked
/// operations, read-only transaction coordination and metrics accounting.
///
/// A [`crate::VisibilityPolicy`] composes these pieces into a protocol; the core never
/// decides *which version a read may return* on its own.
pub struct EngineCore<C> {
    /// This server's identity `p^m_n`.
    pub id: ServerId,
    /// The deployment configuration. Policies may adjust runtime-tunable knobs (HA-POCC
    /// disables `put_waits_for_dependencies` while a partition is suspected).
    pub config: Config,
    /// The server's physical clock.
    pub clock: C,
    /// The sharded multi-version store of this partition.
    pub store: ShardedStore,
    /// The version vector `VV^m_n`.
    pub vv: VersionVector,
    /// The Globally Stable Snapshot, maintained by policies that run a stabilization
    /// protocol (Cure\*, HA-POCC, Adaptive); stays all-zero otherwise.
    pub gss: DependencyVector,
    /// Latest version vector received from each local peer partition (GSS input).
    pub local_vvs: HashMap<PartitionId, VersionVector>,
    /// Latest garbage-collection contribution received from each local peer partition
    /// (used by the GC-vector exchange of §IV-B).
    pub gc_contributions: HashMap<PartitionId, DependencyVector>,
    /// When garbage was last collected (or the last GC exchange was initiated).
    pub last_gc: Timestamp,
    /// When the last stabilization round was initiated.
    pub last_stabilization: Timestamp,
    /// Cumulative metrics. All send paths account through [`EngineCore::send`], so the
    /// per-message counting lives in exactly one place.
    pub metrics: MetricsSnapshot,
    /// Extra CPU work units (chain elements traversed beyond the head, stabilization
    /// vector merges) since the last [`EngineCore::take_extra_work`] call.
    pub extra_work: u64,
    /// How [`EngineCore::read_slice`] counts unmerged items (protocol-specific).
    slice_unmerged: SliceUnmergedMode,
    /// Coalesces replication/GC traffic per destination when batching is enabled
    /// (`Config::replication_batching`); flushed at the start of every tick.
    batcher: MessageBatcher,
    /// The sibling replicas (same partition, every other DC), computed once: replication
    /// fans out to this list on every PUT, so it must not be rebuilt per operation.
    siblings: Vec<ServerId>,
    /// The local peers (same DC, every other partition), computed once for the same
    /// reason (stabilization and GC rounds fan out to it).
    local_peers: Vec<ServerId>,
    /// Parked operations, in arrival order.
    parked: Vec<Parked>,
    /// Read-only transactions this server coordinates.
    transactions: HashMap<TxId, TxState>,
    next_tx: TxId,
}

impl<C: Clock> EngineCore<C> {
    /// Creates the shared core for `id` with the given deployment configuration and clock.
    pub fn new(id: ServerId, config: Config, clock: C, slice_unmerged: SliceUnmergedMode) -> Self {
        let m = config.num_replicas;
        EngineCore {
            store: ShardedStore::with_shards(
                id.partition,
                config.num_partitions,
                config.storage_shards,
            ),
            vv: VersionVector::zero(m),
            gss: DependencyVector::zero(m),
            local_vvs: HashMap::new(),
            gc_contributions: HashMap::new(),
            last_gc: Timestamp::ZERO,
            last_stabilization: Timestamp::ZERO,
            metrics: MetricsSnapshot::default(),
            extra_work: 0,
            slice_unmerged,
            batcher: MessageBatcher::new(config.replication_batching),
            siblings: config
                .replicas()
                .filter(|r| *r != id.replica)
                .map(|r| id.sibling(r))
                .collect(),
            local_peers: config
                .partitions()
                .filter(|p| *p != id.partition)
                .map(|p| id.local_peer(p))
                .collect(),
            parked: Vec::new(),
            transactions: HashMap::new(),
            next_tx: TxId(0),
            id,
            config,
            clock,
        }
    }

    /// The replica (data center) this server belongs to.
    pub fn replica(&self) -> ReplicaId {
        self.id.replica
    }

    /// The partition this server is responsible for.
    pub fn partition(&self) -> PartitionId {
        self.id.partition
    }

    /// Read-only views of the currently parked operations, in arrival order.
    pub fn pending_ops(&self) -> Vec<PendingOp> {
        self.parked.iter().map(Parked::view).collect()
    }

    /// Number of currently parked operations (allocation-free; use
    /// [`EngineCore::pending_ops`] for the detailed views).
    pub fn pending_len(&self) -> usize {
        self.parked.len()
    }

    /// Number of read-only transactions this server currently coordinates.
    pub fn active_transactions(&self) -> usize {
        self.transactions.len()
    }

    // -----------------------------------------------------------------------------------
    // Sending
    // -----------------------------------------------------------------------------------

    /// Builds a `Send` output while accounting for the traffic in the metrics. This is
    /// the single place per-message-kind send counters are maintained.
    pub fn send(&mut self, to: ServerId, message: ServerMessage) -> ServerOutput {
        self.metrics.bytes_sent += message.wire_size() as u64;
        match &message {
            ServerMessage::Replicate { .. } => self.metrics.replicate_sent += 1,
            ServerMessage::Heartbeat { .. } => self.metrics.heartbeats_sent += 1,
            ServerMessage::StabilizationVector { .. } => self.metrics.stabilization_messages += 1,
            ServerMessage::GcVector { .. } => self.metrics.gc_messages += 1,
            _ => {}
        }
        ServerOutput::send(to, message)
    }

    /// Sends a message through the replication batcher: delivered immediately when
    /// batching is off (or the message is latency-sensitive), deferred to the next tick's
    /// flush otherwise. Per-message metrics are accounted either way.
    pub fn send_via_batcher(
        &mut self,
        to: ServerId,
        message: ServerMessage,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let out = self.send(to, message);
        if let Some(out) = self.batcher.stage_one(out) {
            outputs.push(out);
        }
    }

    /// Ships the traffic coalesced since the last tick. Called at the start of every
    /// tick, before heartbeats, so heartbeats cannot overtake buffered replication on
    /// the FIFO channels.
    pub fn flush_batcher(&mut self, outputs: &mut Vec<ServerOutput>) {
        self.batcher.flush_into(&mut self.metrics, outputs);
    }

    /// The sibling replicas of this server: same partition, every other data center.
    /// Computed once at construction — fan-out loops iterate it by index so they can
    /// keep calling `&mut self` send methods without cloning the list.
    pub fn siblings(&self) -> &[ServerId] {
        &self.siblings
    }

    /// The local peers of this server: same data center, every other partition.
    /// Computed once at construction, like [`EngineCore::siblings`].
    pub fn local_peers(&self) -> &[ServerId] {
        &self.local_peers
    }

    // -----------------------------------------------------------------------------------
    // Reads
    // -----------------------------------------------------------------------------------

    /// Whether the server has installed every dependency in `deps` originated at a remote
    /// data center (the wait condition of Algorithm 2 lines 2 and 6).
    pub fn covers_remote_deps(&self, deps: &DependencyVector) -> bool {
        self.vv
            .covers_dependencies_except_local(deps, self.id.replica)
    }

    /// Builds a GET payload from an optional version ("not found" uses this replica).
    pub fn response_for(&self, version: Option<&Version>) -> GetResponse {
        match version {
            Some(v) => GetResponse {
                value: Some(v.value.clone()),
                update_time: v.update_time,
                deps: v.deps.clone(),
                source_replica: v.source_replica,
            },
            None => GetResponse {
                value: None,
                update_time: Timestamp::ZERO,
                deps: DependencyVector::zero(self.config.num_replicas),
                source_replica: self.id.replica,
            },
        }
    }

    /// Serves a GET at the head of the version chain: the freshest version the server
    /// has received, stable or not (POCC, Algorithm 2 lines 3–4).
    pub fn serve_get_latest(&mut self, client: ClientId, key: Key) -> ServerOutput {
        self.metrics.gets_served += 1;
        let resp = self.response_for(self.store.latest(key).as_ref());
        ServerOutput::reply(client, ClientReply::Get(resp))
    }

    /// Serves a GET pessimistically: the freshest version in the snapshot
    /// `GSS ∨ RDV ∨ local`, never blocking, with the full staleness accounting of Cure\*
    /// (§V-B). Walking past unstable versions is the CPU cost of pessimism the paper
    /// calls out.
    ///
    /// The client's read dependency vector never delays the read — the GSS guarantees
    /// that every stable version's dependencies are installed everywhere — but it must
    /// *extend* visibility: the session may causally know versions above the GSS (its own
    /// reads and writes, and everything they transitively depend on), and serving from
    /// the GSS alone would let a GET regress below a version an earlier session-extended
    /// read (a transaction snapshot, or a plain read at a moment the GSS was further
    /// along on another entry) already returned.
    pub fn serve_get_stable(
        &mut self,
        client: ClientId,
        key: Key,
        rdv: &DependencyVector,
    ) -> ServerOutput {
        self.serve_get_snapshot(client, key, rdv)
    }

    /// Serves a GET from the snapshot `GSS ∨ RDV ∨ local`: the freshest version that is
    /// either globally stable, part of the client's own causal history, or locally
    /// originated. The Adaptive protocol's stable fall-back path: staleness is bounded by
    /// the GSS while session guarantees (and therefore causality) still hold.
    pub fn serve_get_stable_bounded(
        &mut self,
        client: ClientId,
        key: Key,
        rdv: &DependencyVector,
    ) -> ServerOutput {
        self.metrics.stable_fallback_gets += 1;
        self.serve_get_snapshot(client, key, rdv)
    }

    fn serve_get_snapshot(
        &mut self,
        client: ClientId,
        key: Key,
        rdv: &DependencyVector,
    ) -> ServerOutput {
        let local = self.id.replica;
        let mut snapshot = self.gss.joined(rdv);
        snapshot.advance(local, self.vv.get(local));
        let outcome = self.store.latest_in_snapshot(key, &snapshot);
        self.extra_work += outcome.stats.traversed.saturating_sub(1) as u64;
        self.metrics.gets_served += 1;
        if outcome.is_old() {
            self.metrics.old_gets += 1;
            self.metrics.fresher_versions_sum += outcome.stats.fresher_than_returned as u64;
        }
        let unmerged = self.store.unmerged_count(key, &self.gss, local);
        if unmerged > 0 {
            self.metrics.unmerged_gets += 1;
            self.metrics.unmerged_versions_sum += unmerged as u64;
        }
        let response = self.response_for(outcome.version.as_ref());
        ServerOutput::reply(client, ClientReply::Get(response))
    }

    // -----------------------------------------------------------------------------------
    // Parking
    // -----------------------------------------------------------------------------------

    /// Parks a GET until the version vector covers the client's read dependencies.
    pub fn park_get(&mut self, client: ClientId, key: Key, rdv: DependencyVector, mode: ReadMode) {
        self.metrics.blocked_operations += 1;
        self.parked.push(Parked::Get {
            client,
            key,
            rdv,
            mode,
            since: self.clock.now(),
        });
    }

    /// Parks a PUT until the version vector covers the client's dependencies.
    pub fn park_put(&mut self, client: ClientId, key: Key, value: Value, dv: DependencyVector) {
        self.metrics.blocked_operations += 1;
        self.parked.push(Parked::Put {
            client,
            key,
            value,
            dv,
            since: self.clock.now(),
        });
    }

    // -----------------------------------------------------------------------------------
    // PUT
    // -----------------------------------------------------------------------------------

    /// Serves a PUT whose (optional) dependency wait condition holds
    /// (Algorithm 2 lines 7–15): assigns the update time, advances the version vector,
    /// installs the version and ships it to every sibling replica.
    pub fn serve_put(
        &mut self,
        client: ClientId,
        key: Key,
        value: Value,
        dv: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        // Line 7: wait until the local clock exceeds every dependency timestamp, so the new
        // version's update time is strictly larger than anything it depends on. The wait is
        // bounded by the clock skew (microseconds); we account for it and jump the
        // timestamp forward instead of parking the request.
        //
        // The floor also covers the local VV entry: a heartbeat broadcast at clock T
        // promises that everything this replica sends afterwards is strictly newer than T,
        // and with a coarse clock (two events can observe the same reading) `now` alone
        // would let a version tie with an already-sent heartbeat — a sibling that applied
        // the heartbeat would serve optimistic reads claiming coverage of a version still
        // in flight. The same floor keeps update times strictly increasing per server, so
        // (update_time, replica) stays a unique version identity under any clock.
        let now = self.clock.now();
        let floor = dv.max_entry().max(self.vv.get(self.id.replica));
        let update_time = if now > floor {
            now
        } else {
            self.metrics.clock_wait_time +=
                floor.saturating_since(now) + std::time::Duration::from_micros(1);
            floor.tick()
        };

        // Line 8: advance the local entry of the version vector.
        self.vv.advance(self.id.replica, update_time);

        // Lines 9–11: create the version and insert it into the chain.
        let version = Version::new(key, value, self.id.replica, update_time, dv);
        self.store
            .insert(version.clone())
            .expect("PUT routed to the wrong partition");

        // Lines 12–14: asynchronously replicate to the sibling replicas, in timestamp order
        // (guaranteed because PUTs are processed in clock order and channels are FIFO;
        // the batcher preserves buffer order, so batching keeps the guarantee).
        for i in 0..self.siblings.len() {
            let sibling = self.siblings[i];
            let msg = ServerMessage::Replicate {
                version: version.clone(),
            };
            self.send_via_batcher(sibling, msg, outputs);
        }

        // Line 15: reply with the new update time.
        self.metrics.puts_served += 1;
        outputs.push(ServerOutput::reply(
            client,
            ClientReply::Put { update_time },
        ));
    }

    // -----------------------------------------------------------------------------------
    // Read-only transactions (coordinator side)
    // -----------------------------------------------------------------------------------

    /// Starts a read-only transaction over `keys` reading from `snapshot` (the policy
    /// decides the snapshot: POCC uses `VV ∨ RDV`, Cure\* bounds it by the GSS). Fans out
    /// slice requests to every involved partition; the local slice is served in-process,
    /// possibly parking until the snapshot is installed (Algorithm 2 lines 30–37).
    pub fn start_ro_tx(
        &mut self,
        client: ClientId,
        keys: Vec<Key>,
        snapshot: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if keys.is_empty() {
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                client,
                ClientReply::RoTx { items: Vec::new() },
            ));
            return;
        }

        // Group the requested keys by owning partition (line 30).
        let mut by_partition: HashMap<PartitionId, Vec<Key>> = HashMap::new();
        for key in keys {
            by_partition
                .entry(partition_for_key(key, self.config.num_partitions))
                .or_default()
                .push(key);
        }

        let tx = self.next_tx;
        self.next_tx = self.next_tx.next();
        self.transactions.insert(
            tx,
            TxState {
                client,
                outstanding_slices: by_partition.len(),
                items: Vec::new(),
                snapshot: snapshot.clone(),
                started: self.clock.now(),
            },
        );

        // Lines 33–37: ask every involved partition for its slice of the snapshot.
        // Deterministic fan-out order (HashMap iteration order is randomised per process).
        let mut groups: Vec<_> = by_partition.into_iter().collect();
        groups.sort_by_key(|(partition, _)| *partition);
        let mut local_keys = None;
        for (partition, keys) in groups {
            if partition == self.id.partition {
                local_keys = Some(keys);
            } else {
                let msg = ServerMessage::SliceRequest {
                    tx,
                    client,
                    keys,
                    snapshot: snapshot.clone(),
                };
                let to = self.id.local_peer(partition);
                let out = self.send(to, msg);
                outputs.push(out);
            }
        }
        if let Some(keys) = local_keys {
            self.serve_or_park_slice(None, tx, client, keys, snapshot, outputs);
        }
    }

    /// Folds a completed slice into the transaction state and replies to the client when
    /// every slice has arrived.
    pub fn complete_slice(
        &mut self,
        tx: TxId,
        items: Vec<TxItem>,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let finished = {
            let Some(state) = self.transactions.get_mut(&tx) else {
                // The transaction was aborted by the partition detector; drop the late slice.
                return;
            };
            state.items.extend(items);
            state.outstanding_slices = state.outstanding_slices.saturating_sub(1);
            state.outstanding_slices == 0
        };
        if finished {
            let state = self
                .transactions
                .remove(&tx)
                .expect("transaction present while completing");
            self.metrics.rotx_served += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::RoTx { items: state.items },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Slice reads (participant side)
    // -----------------------------------------------------------------------------------

    /// Serves a transactional slice read if the snapshot is installed locally, parks it
    /// otherwise (Algorithm 2 lines 39–47).
    pub fn serve_or_park_slice(
        &mut self,
        origin: Option<ServerId>,
        tx: TxId,
        client: ClientId,
        keys: Vec<Key>,
        snapshot: DependencyVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        if self.vv.covers(&snapshot) {
            match self.read_slice(&keys, &snapshot) {
                Some(items) => {
                    self.metrics.slices_served += 1;
                    match origin {
                        Some(origin) => {
                            let msg = ServerMessage::SliceResponse { tx, items };
                            let out = self.send(origin, msg);
                            outputs.push(out);
                        }
                        None => self.complete_slice(tx, items, outputs),
                    }
                }
                None => self.abort_unanswerable_slice(origin, tx, outputs),
            }
        } else {
            self.metrics.blocked_operations += 1;
            self.parked.push(Parked::Slice {
                origin,
                tx,
                client,
                keys,
                snapshot,
                since: self.clock.now(),
            });
        }
    }

    /// Reads every key of a slice within the snapshot, collecting staleness statistics
    /// (Algorithm 2 lines 41–46).
    ///
    /// Returns `None` when the slice cannot be answered exactly: garbage collection may
    /// have removed the version the snapshot needs for one of the keys ("snapshot too
    /// old"). This happens when a coordinator whose GSS lags behind this server's assigns
    /// a snapshot below versions already collected here — exchange-free GC (Cure\*'s
    /// `gc_from_gss`) cannot see transactions coordinated at other partitions, so the
    /// race is resolved at serve time by aborting the transaction instead of returning a
    /// read the snapshot cannot justify.
    pub fn read_slice(&mut self, keys: &[Key], snapshot: &DependencyVector) -> Option<Vec<TxItem>> {
        let local = self.id.replica;
        let mut items = Vec::with_capacity(keys.len());
        for &key in keys {
            let outcome = self.store.latest_in_snapshot(key, snapshot);
            if outcome.version.is_none() && self.store.snapshot_may_predate_gc(key, snapshot) {
                return None;
            }
            self.extra_work += outcome.stats.traversed.saturating_sub(1) as u64;
            self.metrics.tx_items_returned += 1;
            match self.slice_unmerged {
                SliceUnmergedMode::OldIsUnmerged => {
                    if outcome.is_old() {
                        self.metrics.old_tx_items += 1;
                        self.metrics.unmerged_tx_items += 1;
                    }
                }
                SliceUnmergedMode::AgainstGss => {
                    if outcome.is_old() {
                        self.metrics.old_tx_items += 1;
                    }
                    if self.store.has_unmerged_versions(key, &self.gss, local) {
                        self.metrics.unmerged_tx_items += 1;
                    }
                }
            }
            let response = self.response_for(outcome.version.as_ref());
            items.push(TxItem { key, response });
        }
        Some(items)
    }

    /// Resolves a slice that [`read_slice`](Self::read_slice) refused to answer: tells a
    /// remote coordinator to abort the transaction, or aborts it directly when this
    /// server coordinates it.
    fn abort_unanswerable_slice(
        &mut self,
        origin: Option<ServerId>,
        tx: TxId,
        outputs: &mut Vec<ServerOutput>,
    ) {
        match origin {
            Some(origin) => {
                let msg = ServerMessage::SliceAbort { tx };
                let out = self.send(origin, msg);
                outputs.push(out);
            }
            None => self.abort_tx_snapshot_too_old(tx, outputs),
        }
    }

    /// Aborts a coordinated transaction whose snapshot preceded garbage collection on a
    /// participant, closing the client session (§III-B: the client re-establishes its
    /// session and retries). Late aborts for already-completed transactions are ignored.
    pub fn abort_tx_snapshot_too_old(&mut self, tx: TxId, outputs: &mut Vec<ServerOutput>) {
        if let Some(state) = self.transactions.remove(&tx) {
            self.metrics.sessions_aborted += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::SessionAborted {
                    reason: "transaction snapshot preceded garbage collection".into(),
                },
            ));
        }
    }

    // -----------------------------------------------------------------------------------
    // Unparking and timeouts
    // -----------------------------------------------------------------------------------

    /// Re-evaluates every parked operation after the version vector advanced, serving the
    /// ones whose wait condition now holds.
    pub fn unpark(&mut self, outputs: &mut Vec<ServerOutput>) {
        if self.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        let now = self.clock.now();
        for op in parked {
            let ready = match &op {
                Parked::Get { rdv, .. } => self.covers_remote_deps(rdv),
                Parked::Put { dv, .. } => self.covers_remote_deps(dv),
                Parked::Slice { snapshot, .. } => self.vv.covers(snapshot),
            };
            if !ready {
                self.parked.push(op);
                continue;
            }
            self.metrics.total_block_time += now.saturating_since(op.since());
            match op {
                Parked::Get {
                    client,
                    key,
                    rdv,
                    mode,
                    ..
                } => {
                    let out = match mode {
                        ReadMode::Latest => self.serve_get_latest(client, key),
                        ReadMode::Stable => self.serve_get_stable(client, key, &rdv),
                        ReadMode::StableBounded => self.serve_get_stable_bounded(client, key, &rdv),
                    };
                    outputs.push(out);
                }
                Parked::Put {
                    client,
                    key,
                    value,
                    dv,
                    ..
                } => self.serve_put(client, key, value, dv, outputs),
                Parked::Slice {
                    origin,
                    tx,
                    client,
                    keys,
                    snapshot,
                    ..
                } => {
                    let _ = client;
                    // Serve directly: the wait condition has just been checked. GC may
                    // have run while the slice was parked, so the read can still refuse.
                    match self.read_slice(&keys, &snapshot) {
                        Some(items) => {
                            self.metrics.slices_served += 1;
                            match origin {
                                Some(origin) => {
                                    let msg = ServerMessage::SliceResponse { tx, items };
                                    let out = self.send(origin, msg);
                                    outputs.push(out);
                                }
                                None => self.complete_slice(tx, items, outputs),
                            }
                        }
                        None => self.abort_unanswerable_slice(origin, tx, outputs),
                    }
                }
            }
        }
    }

    /// Aborts parked client-facing operations and coordinated transactions that exceeded
    /// the partition-detection timeout (§III-B phase 1: the server closes the session).
    /// Expired slice reads held on behalf of remote coordinators are dropped silently —
    /// the coordinator's own timeout aborts the client session.
    pub fn enforce_partition_timeouts(&mut self, now: Timestamp, outputs: &mut Vec<ServerOutput>) {
        let timeout = self.config.partition_detection_timeout;

        let parked = std::mem::take(&mut self.parked);
        for op in parked {
            let expired = now.saturating_since(op.since()) >= timeout;
            if expired && op.is_client_facing() {
                self.metrics.sessions_aborted += 1;
                outputs.push(ServerOutput::reply(
                    op.client(),
                    ClientReply::SessionAborted {
                        reason: format!("blocked on {} beyond the partition timeout", op.reason()),
                    },
                ));
            } else if expired {
                // Dropped: a slice read on behalf of a remote coordinator.
            } else {
                self.parked.push(op);
            }
        }

        self.abort_expired_transactions(now, outputs);
    }

    /// Aborts coordinated transactions older than the partition-detection timeout,
    /// closing their client sessions.
    pub fn abort_expired_transactions(&mut self, now: Timestamp, outputs: &mut Vec<ServerOutput>) {
        let timeout = self.config.partition_detection_timeout;
        let expired: Vec<TxId> = self
            .transactions
            .iter()
            .filter(|(_, st)| now.saturating_since(st.started) >= timeout)
            .map(|(tx, _)| *tx)
            .collect();
        for tx in expired {
            let state = self.transactions.remove(&tx).expect("tx present");
            self.metrics.sessions_aborted += 1;
            outputs.push(ServerOutput::reply(
                state.client,
                ClientReply::SessionAborted {
                    reason: "read-only transaction blocked beyond the partition timeout".into(),
                },
            ));
        }
    }

    /// Silently drops expired *client-facing* parked operations, keeping operations held
    /// on behalf of remote coordinators indefinitely (Cure\*'s timeout policy: the
    /// transaction-level abort already closed the client session).
    pub fn drop_expired_client_parked(&mut self, now: Timestamp) {
        let timeout = self.config.partition_detection_timeout;
        self.parked
            .retain(|op| now.saturating_since(op.since()) < timeout || !op.is_client_facing());
    }

    // -----------------------------------------------------------------------------------
    // Heartbeats
    // -----------------------------------------------------------------------------------

    /// Heartbeats (Algorithm 2 lines 19–26): if no local update advanced `VV[m]` for the
    /// last ∆, broadcast the clock so sibling replicas can advance their vectors. The
    /// local entry advancing may also unblock parked operations.
    pub fn heartbeat_tick(&mut self, now: Timestamp, outputs: &mut Vec<ServerOutput>) {
        let local = self.id.replica;
        if now >= self.vv.get(local) + self.config.heartbeat_interval {
            self.vv.set(local, now);
            for i in 0..self.siblings.len() {
                let sibling = self.siblings[i];
                let msg = ServerMessage::Heartbeat { clock: now };
                let out = self.send(sibling, msg);
                outputs.push(out);
            }
            self.unpark(outputs);
        }
    }

    // -----------------------------------------------------------------------------------
    // Garbage collection (§IV-B)
    // -----------------------------------------------------------------------------------

    /// This server's contribution to the garbage-collection vector: the entry-wise minimum
    /// of the snapshot vectors of its active transactions, or its version vector when it
    /// coordinates none.
    ///
    /// The paper exchanges the aggregate *maximum* of the active snapshot vectors; we use
    /// the minimum, which is never less conservative and guarantees that no version
    /// readable by an active transaction is ever collected (see DESIGN.md).
    pub fn gc_contribution(&self) -> DependencyVector {
        let mut contribution = DependencyVector(self.vv.as_clock_vector().clone());
        for tx in self.transactions.values() {
            contribution.meet(&tx.snapshot);
        }
        contribution
    }

    /// Runs one garbage-collection exchange round and collects garbage if contributions
    /// from every local peer are known.
    pub fn gc_exchange_round(&mut self, outputs: &mut Vec<ServerOutput>) {
        let contribution = self.gc_contribution();
        for i in 0..self.local_peers.len() {
            let peer = self.local_peers[i];
            let msg = ServerMessage::GcVector {
                vector: contribution.clone(),
            };
            self.send_via_batcher(peer, msg, outputs);
        }
        self.gc_contributions
            .insert(self.id.partition, contribution);

        if self.gc_contributions.len() == self.config.num_partitions {
            let mut gv = self
                .gc_contributions
                .values()
                .next()
                .expect("at least the local contribution")
                .clone();
            for v in self.gc_contributions.values() {
                gv.meet(v);
            }
            let removed = self.store.collect_garbage(&gv);
            self.metrics.gc_versions_removed += removed as u64;
        }
    }

    /// Whether pressure-adaptive GC should fire *now*, before the next `gc_interval`
    /// boundary: the feature is on, some store shard exceeds the configured chain-length
    /// or live-bytes bound, and at least `gc_pressure_backoff` has passed since the last
    /// GC round (so a shard pinned above the bounds by not-yet-stable versions does not
    /// trigger a collection on every server tick).
    ///
    /// Callers use this as an *additional* trigger for their existing GC path —
    /// `interval elapsed || gc_pressure_due(now)` — so a pressure-triggered round also
    /// resets `last_gc` and the interval timer.
    pub fn gc_pressure_due(&self, now: Timestamp) -> bool {
        self.config.gc_pressure
            && now.saturating_since(self.last_gc) >= self.config.gc_pressure_backoff
            && self.store.pressure_exceeded(
                self.config.gc_pressure_max_chain_len,
                self.config.gc_pressure_max_live_bytes,
            )
    }

    /// Collects garbage directly from the GSS: every version below the snapshot any
    /// future transaction could use is collectable except the newest such version
    /// (Cure\*'s GC, which needs no extra message exchange).
    pub fn gc_from_gss(&mut self) {
        let gss = self.gss.clone();
        let removed = self.store.collect_garbage(&gss);
        self.metrics.gc_versions_removed += removed as u64;
    }

    // -----------------------------------------------------------------------------------
    // Stabilization (GSS computation)
    // -----------------------------------------------------------------------------------

    /// Recomputes the GSS as the entry-wise minimum of the latest known version vectors of
    /// every partition in the local data center (including this one). The GSS only moves
    /// forward. `charge_extra_work` accounts one CPU work unit per merged vector (Cure\*
    /// pays this every few milliseconds; HA-POCC's infrequent protocol does not bother).
    pub fn recompute_gss(&mut self, charge_extra_work: bool) {
        if self.local_vvs.len() < self.config.num_partitions.saturating_sub(1) {
            // Not every peer has reported yet: the GSS cannot safely advance.
            return;
        }
        let mut gss = DependencyVector(self.vv.as_clock_vector().clone());
        for vv in self.local_vvs.values() {
            gss.0.meet(vv.as_clock_vector());
            if charge_extra_work {
                self.extra_work += 1;
            }
        }
        // Monotonic advance.
        self.gss.join(&gss);
    }

    /// One stabilization round: broadcast this server's version vector to the local peers
    /// and refresh the GSS from what is known so far.
    pub fn stabilization_round(&mut self, outputs: &mut Vec<ServerOutput>) {
        let vv = self.vv.clone();
        for i in 0..self.local_peers.len() {
            let peer = self.local_peers[i];
            let msg = ServerMessage::StabilizationVector { vv: vv.clone() };
            let out = self.send(peer, msg);
            outputs.push(out);
        }
        self.recompute_gss(true);
    }

    // -----------------------------------------------------------------------------------
    // Observability
    // -----------------------------------------------------------------------------------

    /// A snapshot of the server's cumulative metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = self.metrics.clone();
        m.currently_blocked = self.parked.len() as u64;
        m
    }

    /// Returns and resets the accumulated extra CPU work units.
    pub fn take_extra_work(&mut self) -> u64 {
        std::mem::take(&mut self.extra_work)
    }
}
