//! Bookkeeping for parked (blocked) operations.
//!
//! The optimism of POCC means a server can receive a request whose causal dependencies it
//! has not installed yet. Instead of returning stale data (the pessimistic choice) the
//! server *parks* the request and serves it as soon as the missing replication traffic or
//! heartbeat arrives (§III-A, "client-assisted lazy dependency resolution").
//!
//! This module holds the internal representation of parked operations and the public,
//! read-only view exposed for observability and for the partition detector of HA-POCC.

use pocc_proto::TxId;
use pocc_types::{ClientId, DependencyVector, Key, ServerId, Timestamp, Value};

/// Why an operation is parked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockReason {
    /// A GET is waiting for the server's version vector to cover the client's read
    /// dependency vector (Algorithm 2 line 2).
    MissingReadDependency,
    /// A PUT is waiting for the server's version vector to cover the client's dependency
    /// vector (Algorithm 2 line 6, optional but enabled in the paper's evaluation).
    MissingWriteDependency,
    /// A transactional slice read is waiting for the server's version vector to reach the
    /// transaction snapshot vector (Algorithm 2 line 40).
    SnapshotNotInstalled,
}

impl std::fmt::Display for BlockReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlockReason::MissingReadDependency => "missing read dependency",
            BlockReason::MissingWriteDependency => "missing write dependency",
            BlockReason::SnapshotNotInstalled => "transaction snapshot not installed",
        };
        f.write_str(s)
    }
}

/// A read-only view of one parked operation, for observability.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PendingOp {
    /// The client on whose behalf the operation runs.
    pub client: ClientId,
    /// Why the operation is blocked.
    pub reason: BlockReason,
    /// When the operation was parked (server clock).
    pub since: Timestamp,
}

/// How a parked GET is served once its wait condition holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadMode {
    /// Return the freshest version of the key (POCC, Algorithm 2 lines 3–4).
    Latest,
    /// Return the freshest version within the GSS extended by the client's session
    /// history (the Cure\* read path).
    Stable,
    /// Like [`ReadMode::Stable`] but counted as the Adaptive protocol's stable fall-back.
    StableBounded,
}

/// The internal representation of a parked operation.
#[derive(Clone, Debug)]
pub(crate) enum Parked {
    /// A GET waiting for the client's read dependencies.
    Get {
        client: ClientId,
        key: Key,
        rdv: DependencyVector,
        mode: ReadMode,
        since: Timestamp,
    },
    /// A PUT waiting for the client's dependencies.
    Put {
        client: ClientId,
        key: Key,
        value: Value,
        dv: DependencyVector,
        since: Timestamp,
    },
    /// A transactional slice read waiting for the snapshot to be installed locally.
    /// `origin` is the coordinating server, or `None` when this server coordinates the
    /// transaction itself (a "self slice").
    Slice {
        origin: Option<ServerId>,
        tx: TxId,
        client: ClientId,
        keys: Vec<Key>,
        snapshot: DependencyVector,
        since: Timestamp,
    },
}

impl Parked {
    /// The time the operation was parked.
    pub(crate) fn since(&self) -> Timestamp {
        match self {
            Parked::Get { since, .. } | Parked::Put { since, .. } | Parked::Slice { since, .. } => {
                *since
            }
        }
    }

    /// The client on whose behalf the operation runs.
    pub(crate) fn client(&self) -> ClientId {
        match self {
            Parked::Get { client, .. }
            | Parked::Put { client, .. }
            | Parked::Slice { client, .. } => *client,
        }
    }

    /// The public view of this parked operation.
    pub(crate) fn view(&self) -> PendingOp {
        PendingOp {
            client: self.client(),
            reason: self.reason(),
            since: self.since(),
        }
    }

    /// Why the operation is parked.
    pub(crate) fn reason(&self) -> BlockReason {
        match self {
            Parked::Get { .. } => BlockReason::MissingReadDependency,
            Parked::Put { .. } => BlockReason::MissingWriteDependency,
            Parked::Slice { .. } => BlockReason::SnapshotNotInstalled,
        }
    }

    /// Whether the operation directly blocks a client request (as opposed to an internal
    /// slice read on behalf of a remote coordinator).
    pub(crate) fn is_client_facing(&self) -> bool {
        !matches!(
            self,
            Parked::Slice {
                origin: Some(_),
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_report_reason_client_and_since() {
        let get = Parked::Get {
            client: ClientId(1),
            key: Key(2),
            rdv: DependencyVector::zero(3),
            mode: ReadMode::Latest,
            since: Timestamp(10),
        };
        let put = Parked::Put {
            client: ClientId(2),
            key: Key(2),
            value: Value::from("x"),
            dv: DependencyVector::zero(3),
            since: Timestamp(20),
        };
        let slice = Parked::Slice {
            origin: Some(ServerId::new(0u16, 1u32)),
            tx: TxId(1),
            client: ClientId(3),
            keys: vec![Key(1)],
            snapshot: DependencyVector::zero(3),
            since: Timestamp(30),
        };
        assert_eq!(
            get.view(),
            PendingOp {
                client: ClientId(1),
                reason: BlockReason::MissingReadDependency,
                since: Timestamp(10)
            }
        );
        assert_eq!(put.view().reason, BlockReason::MissingWriteDependency);
        assert_eq!(slice.view().reason, BlockReason::SnapshotNotInstalled);
        assert_eq!(slice.since(), Timestamp(30));
        assert_eq!(slice.client(), ClientId(3));
    }

    #[test]
    fn client_facing_classification() {
        let self_slice = Parked::Slice {
            origin: None,
            tx: TxId(1),
            client: ClientId(3),
            keys: vec![],
            snapshot: DependencyVector::zero(1),
            since: Timestamp(0),
        };
        let remote_slice = Parked::Slice {
            origin: Some(ServerId::new(0u16, 1u32)),
            tx: TxId(1),
            client: ClientId(3),
            keys: vec![],
            snapshot: DependencyVector::zero(1),
            since: Timestamp(0),
        };
        let get = Parked::Get {
            client: ClientId(1),
            key: Key(2),
            rdv: DependencyVector::zero(1),
            mode: ReadMode::Latest,
            since: Timestamp(0),
        };
        assert!(self_slice.is_client_facing());
        assert!(!remote_slice.is_client_facing());
        assert!(get.is_client_facing());
    }

    #[test]
    fn block_reasons_render_human_readable() {
        assert_eq!(
            BlockReason::MissingReadDependency.to_string(),
            "missing read dependency"
        );
        assert_eq!(
            BlockReason::MissingWriteDependency.to_string(),
            "missing write dependency"
        );
        assert_eq!(
            BlockReason::SnapshotNotInstalled.to_string(),
            "transaction snapshot not installed"
        );
    }
}
