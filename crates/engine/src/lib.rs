//! The shared protocol engine behind every server variant of this workspace.
//!
//! The paper's three systems — POCC's optimistic reads (Algorithm 2), Cure\*'s
//! GSS-pessimistic reads (§V) and the HA fall-back protocol (§III-B) — are one server
//! algorithm differing only in *which version a GET may return*. This crate makes the
//! code say that too:
//!
//! * [`EngineCore`] owns everything the protocols share: the sharded version store, the
//!   version vector, the replication apply/ship paths, the [`pocc_proto::MessageBatcher`]
//!   flush ordering, heartbeat emission, the GC-vector exchange, GSS/stabilization
//!   bookkeeping, parked-operation management, read-only transaction coordination and
//!   metrics accounting.
//! * [`VisibilityPolicy`] is the per-protocol decision surface: read visibility
//!   (freshest vs freshest-stable vs snapshot-bounded), which periodic stabilization
//!   messages to emit, and how to react to peer-health signals.
//! * [`ProtocolEngine`] glues a policy onto the core and implements
//!   [`pocc_proto::ProtocolServer`], so every policy runs unchanged under the
//!   deterministic simulator, the threaded runtime and the benchmark harness.
//!
//! `pocc-protocol`, `pocc-cure`, `pocc-ha` and `pocc-adaptive` are thin policy
//! implementations over this crate. Adding a variant means writing a policy, not a
//! server — see the "Adding a protocol variant" how-to in `ARCHITECTURE.md`.
//!
//! # Example: the smallest possible policy
//!
//! A protocol that always serves the freshest version and never waits (causal metadata
//! is still tracked and replicated by the core):
//!
//! ```
//! use pocc_clock::{Clock, ManualClock};
//! use pocc_engine::{EngineCore, ProtocolEngine, VisibilityPolicy};
//! use pocc_proto::{ClientRequest, ProtocolServer, ServerOutput};
//! use pocc_types::{ClientId, Config, Key, ServerId, Timestamp, Value};
//!
//! struct AlwaysFresh;
//!
//! impl<C: Clock> VisibilityPolicy<C> for AlwaysFresh {
//!     fn handle_client_request(
//!         &mut self,
//!         core: &mut EngineCore<C>,
//!         client: ClientId,
//!         request: ClientRequest,
//!     ) -> Vec<ServerOutput> {
//!         let mut outputs = Vec::new();
//!         match request {
//!             ClientRequest::Get { key, .. } => {
//!                 let out = core.serve_get_latest(client, key);
//!                 outputs.push(out);
//!             }
//!             ClientRequest::Put { key, value, dv } => {
//!                 core.serve_put(client, key, value, dv, &mut outputs);
//!             }
//!             ClientRequest::RoTx { keys, rdv } => {
//!                 let snapshot = core.vv.snapshot_with(&rdv);
//!                 core.start_ro_tx(client, keys, snapshot, &mut outputs);
//!             }
//!         }
//!         outputs
//!     }
//!
//!     fn on_tick(
//!         &mut self,
//!         core: &mut EngineCore<C>,
//!         now: Timestamp,
//!         outputs: &mut Vec<ServerOutput>,
//!     ) {
//!         core.enforce_partition_timeouts(now, outputs);
//!     }
//! }
//!
//! let config = Config::builder().num_replicas(1).num_partitions(1).build().unwrap();
//! let clock = ManualClock::new(Timestamp::from_millis(1));
//! let mut server = ProtocolEngine::new(ServerId::new(0u16, 0u32), config, clock, AlwaysFresh);
//! let outputs = server.handle_client_request(
//!     ClientId(1),
//!     ClientRequest::Put {
//!         key: Key(0),
//!         value: Value::from("hi"),
//!         dv: pocc_types::DependencyVector::zero(1),
//!     },
//! );
//! assert!(outputs.iter().any(|o| o.is_reply_to(ClientId(1))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod engine;
mod pending;

pub use crate::core::{EngineCore, SliceUnmergedMode};
pub use crate::engine::{ProtocolEngine, VisibilityPolicy};
pub use crate::pending::{BlockReason, PendingOp, ReadMode};

#[doc(hidden)]
pub use crate::engine::reexports;
