//! The generic protocol engine: [`EngineCore`] machinery driven through a
//! [`VisibilityPolicy`].

use crate::core::{EngineCore, SliceUnmergedMode};
use pocc_clock::Clock;
use pocc_proto::{
    ClientRequest, MetricsSnapshot, ProtocolServer, ServerIntrospect, ServerMessage, ServerOutput,
    TxId, TxItem,
};
use pocc_types::{ClientId, Key, ReplicaId, ServerId, Timestamp, VersionVector};

/// The protocol-defining decisions layered over the shared [`EngineCore`].
///
/// The engine owns replication, batching, heartbeats, parked operations, transaction
/// coordination and metrics; a policy decides **which version a read may return**, what
/// periodic stabilization traffic to emit, and how to react to peer-health signals. The
/// paper's three systems — and any future variant — differ only in these hooks; see the
/// "Adding a protocol variant" section of `ARCHITECTURE.md`.
pub trait VisibilityPolicy<C: Clock>: Send {
    /// How [`EngineCore::read_slice`] classifies unmerged transactional items under this
    /// protocol. Consulted once, at engine construction.
    fn slice_unmerged_mode(&self) -> SliceUnmergedMode {
        SliceUnmergedMode::OldIsUnmerged
    }

    /// Handles a client request (GET, PUT or RO-TX). The policy decides read visibility
    /// and wait behaviour, composing the core's serve/park helpers.
    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput>;

    /// Reacts to a stabilization vector from a local peer. The engine has already counted
    /// the message; the default ignores it (plain POCC does not run the stabilization
    /// protocol, but counting keeps misconfigurations visible in metrics).
    fn on_stabilization_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vv: VersionVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        let _ = (core, from, vv, outputs);
    }

    /// Reacts to a garbage-collection vector from a local peer. The engine has already
    /// counted the message; the default ignores it (Cure\* collects from the GSS directly).
    fn on_gc_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vector: pocc_types::DependencyVector,
    ) {
        let _ = (core, from, vector);
    }

    /// Observes a replicated remote version right after it was installed (and before
    /// parked operations are re-evaluated). The Adaptive policy tracks per-key remote
    /// churn here; the default does nothing.
    fn on_replicate(&mut self, core: &mut EngineCore<C>, from: ServerId, key: Key) {
        let _ = (core, from, key);
    }

    /// Offers the policy a slice response before the engine folds it into a coordinated
    /// transaction. Return the items to let the engine complete the transaction, or
    /// `None` if the policy consumed the response (HA-POCC routes responses of its
    /// pessimistic-mode transactions this way).
    fn claim_slice_response(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        items: Vec<TxItem>,
        outputs: &mut Vec<ServerOutput>,
    ) -> Option<Vec<TxItem>> {
        let _ = (core, tx, outputs);
        Some(items)
    }

    /// Offers the policy a slice abort ("snapshot too old", see
    /// [`EngineCore::read_slice`]) before the engine aborts the core-coordinated
    /// transaction. Return `true` if the policy owns the transaction and handled the
    /// abort (HA-POCC's pessimistic-mode transactions), `false` to let the engine abort
    /// the transaction in [`EngineCore::abort_tx_snapshot_too_old`].
    fn claim_slice_abort(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        outputs: &mut Vec<ServerOutput>,
    ) -> bool {
        let _ = (core, tx, outputs);
        false
    }

    /// Protocol-specific periodic work, run at the end of every tick (after the batcher
    /// flush and heartbeat emission): stabilization rounds, garbage collection, timeout
    /// enforcement, partition detection.
    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    );
}

/// A protocol server assembled from the shared [`EngineCore`] and a [`VisibilityPolicy`].
///
/// `ProtocolEngine` implements [`ProtocolServer`], so any policy plugs directly into the
/// deterministic simulator, the threaded runtime and the benchmark harness. The concrete
/// protocol crates wrap it in a named type (`PoccServer`, `CureServer`, …) via
/// [`delegate_protocol_server!`](crate::delegate_protocol_server).
pub struct ProtocolEngine<C, P> {
    core: EngineCore<C>,
    policy: P,
}

impl<C: Clock, P: VisibilityPolicy<C>> ProtocolEngine<C, P> {
    /// Creates an engine for `id` with the given deployment configuration, clock and
    /// policy.
    pub fn new(id: ServerId, config: pocc_types::Config, clock: C, policy: P) -> Self {
        let core = EngineCore::new(id, config, clock, policy.slice_unmerged_mode());
        ProtocolEngine { core, policy }
    }

    /// Read access to the shared core.
    pub fn core(&self) -> &EngineCore<C> {
        &self.core
    }

    /// Mutable access to the shared core.
    pub fn core_mut(&mut self) -> &mut EngineCore<C> {
        &mut self.core
    }

    /// Read access to the policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to core and policy together (policies are stateful: HA-POCC's mode
    /// switches need both).
    pub fn parts_mut(&mut self) -> (&mut EngineCore<C>, &mut P) {
        (&mut self.core, &mut self.policy)
    }

    /// Absorbs the bookkeeping half of one replicated remote version: replication
    /// accounting, the origin's version-vector advance, the policy's `on_replicate`
    /// hook and a re-evaluation of parked operations (Algorithm 2 lines 16–18 minus
    /// the store insert).
    ///
    /// The version itself must already be installed in the store — the serial
    /// `Replicate` arm inserts it immediately before calling this, and the threaded
    /// runtime's lanes install it off-spine before the sweep publishes the advance —
    /// because advancing the vector claims coverage of everything from that origin at
    /// or below `update_time`.
    pub fn absorb_remote_version(
        &mut self,
        from: ServerId,
        key: Key,
        update_time: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        self.core.metrics.replicate_received += 1;
        self.core.vv.advance(from.replica, update_time);
        self.policy.on_replicate(&mut self.core, from, key);
        self.core.unpark(outputs);
    }

    fn dispatch_message(
        &mut self,
        from: ServerId,
        message: ServerMessage,
        outputs: &mut Vec<ServerOutput>,
    ) {
        match message {
            ServerMessage::Replicate { version } => {
                // Algorithm 2 lines 16–18.
                let key = version.key;
                let update_time = version.update_time;
                self.core
                    .store
                    .insert(version)
                    .expect("replicated update routed to the wrong partition");
                self.absorb_remote_version(from, key, update_time, outputs);
            }
            ServerMessage::Heartbeat { clock } => {
                // Algorithm 2 lines 27–28.
                self.core.metrics.heartbeats_received += 1;
                self.core.vv.advance(from.replica, clock);
                self.core.unpark(outputs);
            }
            ServerMessage::SliceRequest {
                tx,
                client,
                keys,
                snapshot,
            } => {
                self.core
                    .serve_or_park_slice(Some(from), tx, client, keys, snapshot, outputs);
            }
            ServerMessage::SliceResponse { tx, items } => {
                if let Some(items) =
                    self.policy
                        .claim_slice_response(&mut self.core, tx, items, outputs)
                {
                    self.core.complete_slice(tx, items, outputs);
                }
            }
            ServerMessage::SliceAbort { tx } => {
                if !self.policy.claim_slice_abort(&mut self.core, tx, outputs) {
                    self.core.abort_tx_snapshot_too_old(tx, outputs);
                }
            }
            ServerMessage::StabilizationVector { vv } => {
                self.core.metrics.stabilization_messages += 1;
                self.policy
                    .on_stabilization_vector(&mut self.core, from, vv, outputs);
            }
            ServerMessage::GcVector { vector } => {
                self.core.metrics.gc_messages += 1;
                self.policy.on_gc_vector(&mut self.core, from, vector);
            }
            ServerMessage::Batch { messages } => {
                for inner in messages {
                    self.dispatch_message(from, inner, outputs);
                }
            }
        }
    }
}

impl<C: Clock, P: VisibilityPolicy<C>> ProtocolServer for ProtocolEngine<C, P> {
    fn server_id(&self) -> ServerId {
        self.core.id
    }

    fn handle_client_request(
        &mut self,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        self.policy
            .handle_client_request(&mut self.core, client, request)
    }

    fn handle_server_message(
        &mut self,
        from: ServerId,
        message: ServerMessage,
    ) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        self.dispatch_message(from, message, &mut outputs);
        outputs
    }

    fn tick(&mut self) -> Vec<ServerOutput> {
        let mut outputs = Vec::new();
        // Ship the traffic coalesced since the last tick first, so heartbeats emitted
        // below cannot overtake buffered replication on the FIFO channels.
        self.core.flush_batcher(&mut outputs);
        let now = self.core.clock.now();
        self.core.heartbeat_tick(now, &mut outputs);
        self.policy.on_tick(&mut self.core, now, &mut outputs);
        outputs
    }

    fn take_extra_work(&mut self) -> u64 {
        self.core.take_extra_work()
    }
}

impl<C: Clock, P: VisibilityPolicy<C>> ServerIntrospect for ProtocolEngine<C, P> {
    fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics_snapshot()
    }

    fn digest(&self) -> Vec<(Key, Timestamp, ReplicaId)> {
        self.core.store.digest()
    }

    fn store_stats(&self) -> pocc_storage::StoreStats {
        self.core.store.stats()
    }

    fn shard_stats(&self) -> Vec<pocc_storage::ShardStats> {
        self.core.store.shard_stats()
    }
}

/// Boxed policies are policies too, so an execution layer can pick one of the four
/// protocols at runtime and still drive a single `ProtocolEngine<C, Box<dyn
/// VisibilityPolicy<C>>>` type.
impl<C: Clock> VisibilityPolicy<C> for Box<dyn VisibilityPolicy<C>> {
    fn slice_unmerged_mode(&self) -> SliceUnmergedMode {
        (**self).slice_unmerged_mode()
    }

    fn handle_client_request(
        &mut self,
        core: &mut EngineCore<C>,
        client: ClientId,
        request: ClientRequest,
    ) -> Vec<ServerOutput> {
        (**self).handle_client_request(core, client, request)
    }

    fn on_stabilization_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vv: VersionVector,
        outputs: &mut Vec<ServerOutput>,
    ) {
        (**self).on_stabilization_vector(core, from, vv, outputs)
    }

    fn on_gc_vector(
        &mut self,
        core: &mut EngineCore<C>,
        from: ServerId,
        vector: pocc_types::DependencyVector,
    ) {
        (**self).on_gc_vector(core, from, vector)
    }

    fn on_replicate(&mut self, core: &mut EngineCore<C>, from: ServerId, key: Key) {
        (**self).on_replicate(core, from, key)
    }

    fn claim_slice_response(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        items: Vec<TxItem>,
        outputs: &mut Vec<ServerOutput>,
    ) -> Option<Vec<TxItem>> {
        (**self).claim_slice_response(core, tx, items, outputs)
    }

    fn claim_slice_abort(
        &mut self,
        core: &mut EngineCore<C>,
        tx: TxId,
        outputs: &mut Vec<ServerOutput>,
    ) -> bool {
        (**self).claim_slice_abort(core, tx, outputs)
    }

    fn on_tick(
        &mut self,
        core: &mut EngineCore<C>,
        now: Timestamp,
        outputs: &mut Vec<ServerOutput>,
    ) {
        (**self).on_tick(core, now, outputs)
    }
}

/// Implements [`ProtocolServer`] and [`ServerIntrospect`] for a named server wrapper
/// around a [`ProtocolEngine`] stored in a field called `engine`.
///
/// ```ignore
/// pub struct MyServer<C> {
///     engine: ProtocolEngine<C, MyPolicy>,
/// }
/// pocc_engine::delegate_protocol_server!(MyServer);
/// ```
#[macro_export]
macro_rules! delegate_protocol_server {
    ($server:ident) => {
        impl<C: $crate::reexports::Clock> $crate::reexports::ProtocolServer for $server<C> {
            fn server_id(&self) -> $crate::reexports::ServerId {
                $crate::reexports::ProtocolServer::server_id(&self.engine)
            }

            fn handle_client_request(
                &mut self,
                client: $crate::reexports::ClientId,
                request: $crate::reexports::ClientRequest,
            ) -> Vec<$crate::reexports::ServerOutput> {
                $crate::reexports::ProtocolServer::handle_client_request(
                    &mut self.engine,
                    client,
                    request,
                )
            }

            fn handle_server_message(
                &mut self,
                from: $crate::reexports::ServerId,
                message: $crate::reexports::ServerMessage,
            ) -> Vec<$crate::reexports::ServerOutput> {
                $crate::reexports::ProtocolServer::handle_server_message(
                    &mut self.engine,
                    from,
                    message,
                )
            }

            fn tick(&mut self) -> Vec<$crate::reexports::ServerOutput> {
                $crate::reexports::ProtocolServer::tick(&mut self.engine)
            }

            fn take_extra_work(&mut self) -> u64 {
                $crate::reexports::ProtocolServer::take_extra_work(&mut self.engine)
            }
        }

        impl<C: $crate::reexports::Clock> $crate::reexports::ServerIntrospect for $server<C> {
            fn metrics(&self) -> $crate::reexports::MetricsSnapshot {
                $crate::reexports::ServerIntrospect::metrics(&self.engine)
            }

            fn digest(
                &self,
            ) -> Vec<(
                $crate::reexports::Key,
                $crate::reexports::Timestamp,
                $crate::reexports::ReplicaId,
            )> {
                $crate::reexports::ServerIntrospect::digest(&self.engine)
            }

            fn store_stats(&self) -> $crate::reexports::StoreStats {
                $crate::reexports::ServerIntrospect::store_stats(&self.engine)
            }

            fn shard_stats(&self) -> Vec<$crate::reexports::ShardStats> {
                $crate::reexports::ServerIntrospect::shard_stats(&self.engine)
            }
        }
    };
}

/// Paths used by [`delegate_protocol_server!`]; not part of the public API surface.
#[doc(hidden)]
pub mod reexports {
    pub use pocc_clock::Clock;
    pub use pocc_proto::{
        ClientRequest, MetricsSnapshot, ProtocolServer, ServerIntrospect, ServerMessage,
        ServerOutput,
    };
    pub use pocc_storage::{ShardStats, StoreStats};
    pub use pocc_types::{ClientId, Key, ReplicaId, ServerId, Timestamp};
}
