//! The routing facade of a cluster: per-server control inboxes plus the pluggable
//! transport carrying the actual traffic.

use crate::cluster::ServerProbe;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pocc_net::transport::{
    ChannelTransport, ClientPort, EventSink, TcpTransport, Transport, TransportEvent, TransportKind,
};
use pocc_proto::{ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Config, ServerId};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// An event delivered to a server thread's inbox.
#[derive(Debug)]
pub(crate) enum Inbound {
    /// A request from a client.
    FromClient {
        /// The issuing client.
        client: ClientId,
        /// The request.
        request: ClientRequest,
    },
    /// A message from another server.
    FromServer {
        /// The sending server.
        from: ServerId,
        /// The message.
        message: ServerMessage,
    },
    /// Ask the server thread for a consistent introspection snapshot.
    Probe {
        /// Where to send the snapshot.
        reply: Sender<ServerProbe>,
    },
    /// Ask the server thread to exit.
    Shutdown,
}

impl From<TransportEvent> for Inbound {
    fn from(event: TransportEvent) -> Inbound {
        match event {
            TransportEvent::Client { client, request } => Inbound::FromClient { client, request },
            TransportEvent::Peer { from, message } => Inbound::FromServer { from, message },
        }
    }
}

/// The shared routing fabric of a [`crate::Cluster`]: per-server inboxes for control
/// events (probes, shutdown) and inbound traffic, plus the [`Transport`] backend that
/// moves requests, replies and server-to-server messages.
///
/// Cloning a `Router` is cheap (everything is behind `Arc`s); server threads and client
/// handles all hold one.
#[derive(Clone)]
pub struct Router {
    config: Config,
    server_inboxes: Arc<HashMap<ServerId, Sender<Inbound>>>,
    transport: Arc<dyn Transport>,
    epoch: Instant,
}

impl Router {
    /// Builds the router plus the receiving halves the cluster needs to wire up threads:
    /// creates the inboxes, starts the transport backend of `kind` pointing its event
    /// sink at them, and returns both.
    pub(crate) fn new(
        config: Config,
        kind: TransportKind,
    ) -> (Router, HashMap<ServerId, Receiver<Inbound>>) {
        let mut inboxes = HashMap::new();
        let mut receivers = HashMap::new();
        for id in config.servers() {
            let (tx, rx) = unbounded();
            inboxes.insert(id, tx);
            receivers.insert(id, rx);
        }
        let inboxes = Arc::new(inboxes);
        let sink_inboxes = Arc::clone(&inboxes);
        let sink: EventSink = Arc::new(move |to, event| {
            if let Some(tx) = sink_inboxes.get(&to) {
                let _ = tx.send(Inbound::from(event));
            }
        });
        let transport: Arc<dyn Transport> = match kind {
            TransportKind::Channel => ChannelTransport::start(config.clone(), sink),
            TransportKind::Tcp => TcpTransport::start(&config, sink)
                .expect("binding localhost TCP listeners succeeds"),
        };
        let router = Router {
            config,
            server_inboxes: inboxes,
            transport,
            epoch: Instant::now(),
        };
        (router, receivers)
    }

    /// The deployment configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The instant the cluster started; server clocks measure from this epoch so that
    /// their physical timestamps are mutually consistent.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Opens a transport port for a new client session.
    pub(crate) fn client_port(&self, client: ClientId) -> Box<dyn ClientPort> {
        self.transport.client_port(client)
    }

    /// Delivers a reply from server `from` to a client, dropping it silently if the
    /// session is gone.
    pub(crate) fn reply(&self, from: ServerId, client: ClientId, reply: ClientReply) {
        self.transport.reply(from, client, reply);
    }

    /// Routes a server-to-server message through the transport. The transport may stage
    /// the message until the next [`Router::flush`] from the same server.
    pub(crate) fn send_server(&self, from: ServerId, to: ServerId, message: ServerMessage) {
        self.transport.send_server(from, to, message);
    }

    /// Flushes everything `from` staged since the last flush.
    pub(crate) fn flush(&self, from: ServerId) {
        self.transport.flush(from);
    }

    /// The socket address of `server`, when the transport has one (TCP only).
    pub fn server_addr(&self, server: ServerId) -> Option<SocketAddr> {
        self.transport.addr(server)
    }

    /// Asks a server thread for an introspection snapshot, delivered on `reply`.
    pub(crate) fn probe(&self, to: ServerId, reply: Sender<ServerProbe>) {
        if let Some(tx) = self.server_inboxes.get(&to) {
            let _ = tx.send(Inbound::Probe { reply });
        }
    }

    /// Asks every server thread to shut down.
    pub(crate) fn broadcast_shutdown(&self) {
        for tx in self.server_inboxes.values() {
            let _ = tx.send(Inbound::Shutdown);
        }
    }

    /// Tears the transport down (stops its helper threads and closes its sockets).
    pub(crate) fn shutdown_transport(&self) {
        self.transport.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{DependencyVector, Key, LatencyMatrix, Timestamp};
    use std::time::Duration;

    fn config() -> Config {
        Config::builder()
            .num_replicas(2)
            .num_partitions(2)
            .latency(LatencyMatrix::uniform(
                2,
                Duration::from_micros(10),
                Duration::from_millis(20),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn client_replies_route_to_open_ports_only() {
        let (router, _inboxes) = Router::new(config(), TransportKind::Channel);
        let a = ServerId::new(0u16, 0u32);
        let mut port = router.client_port(ClientId(1));
        router.reply(
            a,
            ClientId(1),
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        assert!(port.recv_timeout(Duration::from_secs(1)).is_ok());
        // Unknown clients are dropped silently.
        router.reply(
            a,
            ClientId(2),
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        drop(port);
        router.shutdown_transport();
    }

    #[test]
    fn intra_dc_messages_deliver_directly() {
        let (router, inboxes) = Router::new(config(), TransportKind::Channel);
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(0u16, 1u32);
        router.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert!(matches!(
            inboxes[&b].try_recv().unwrap(),
            Inbound::FromServer { .. }
        ));
        router.shutdown_transport();
    }

    #[test]
    fn cross_dc_messages_arrive_delayed() {
        let (router, inboxes) = Router::new(config(), TransportKind::Channel);
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(1u16, 0u32);
        router.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        // Not yet: the 20ms WAN delay holds it in the delay thread.
        assert!(inboxes[&b].try_recv().is_err());
        assert!(matches!(
            inboxes[&b].recv_timeout(Duration::from_secs(2)).unwrap(),
            Inbound::FromServer { .. }
        ));
        router.shutdown_transport();
    }

    #[test]
    fn submit_and_shutdown_reach_server_inboxes() {
        let (router, inboxes) = Router::new(config(), TransportKind::Channel);
        let a = ServerId::new(0u16, 0u32);
        let mut port = router.client_port(ClientId(3));
        port.submit(
            a,
            ClientRequest::Get {
                key: Key(1),
                rdv: DependencyVector::zero(2),
            },
        )
        .unwrap();
        assert!(matches!(
            inboxes[&a].try_recv().unwrap(),
            Inbound::FromClient { .. }
        ));
        router.broadcast_shutdown();
        for rx in inboxes.values() {
            assert!(matches!(rx.try_recv().unwrap(), Inbound::Shutdown));
        }
        drop(port);
        router.shutdown_transport();
    }

    #[test]
    fn channel_transport_has_no_socket_addresses() {
        let (router, _inboxes) = Router::new(config(), TransportKind::Channel);
        assert!(router.server_addr(ServerId::new(0u16, 0u32)).is_none());
        router.shutdown_transport();
    }
}
