//! Message routing between server threads, client handles and the delay-injecting
//! network thread.

use crate::cluster::ServerProbe;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use pocc_proto::{ClientReply, ClientRequest, ServerMessage};
use pocc_types::{ClientId, Config, ServerId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An event delivered to a server thread's inbox.
#[derive(Debug)]
pub(crate) enum Inbound {
    /// A request from a client.
    FromClient {
        /// The issuing client.
        client: ClientId,
        /// The request.
        request: ClientRequest,
    },
    /// A message from another server.
    FromServer {
        /// The sending server.
        from: ServerId,
        /// The message.
        message: ServerMessage,
    },
    /// Ask the server thread for a consistent introspection snapshot.
    Probe {
        /// Where to send the snapshot.
        reply: Sender<ServerProbe>,
    },
    /// Ask the server thread to exit.
    Shutdown,
}

/// A message waiting in the network thread for its delivery deadline.
pub(crate) struct Delayed {
    pub deliver_at: Instant,
    pub from: ServerId,
    pub to: ServerId,
    pub message: ServerMessage,
}

/// The shared routing fabric of a [`crate::Cluster`]: per-server inboxes, per-client reply
/// channels and the channel into the delay-injecting network thread.
///
/// Cloning a `Router` is cheap (everything is behind `Arc`s); server threads, client
/// handles and the network thread all hold one.
#[derive(Clone)]
pub struct Router {
    config: Config,
    server_inboxes: Arc<HashMap<ServerId, Sender<Inbound>>>,
    client_replies: Arc<RwLock<HashMap<ClientId, Sender<ClientReply>>>>,
    network: Sender<Delayed>,
    epoch: Instant,
}

impl Router {
    /// Builds the router plus the receiving halves the cluster needs to wire up threads.
    pub(crate) fn new(
        config: Config,
    ) -> (
        Router,
        HashMap<ServerId, Receiver<Inbound>>,
        Receiver<Delayed>,
    ) {
        let mut inboxes = HashMap::new();
        let mut receivers = HashMap::new();
        for id in config.servers() {
            let (tx, rx) = unbounded();
            inboxes.insert(id, tx);
            receivers.insert(id, rx);
        }
        let (net_tx, net_rx) = unbounded();
        let router = Router {
            config,
            server_inboxes: Arc::new(inboxes),
            client_replies: Arc::new(RwLock::new(HashMap::new())),
            network: net_tx,
            epoch: Instant::now(),
        };
        (router, receivers, net_rx)
    }

    /// The deployment configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The instant the cluster started; server clocks measure from this epoch so that
    /// their physical timestamps are mutually consistent.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Registers the reply channel of a client session.
    pub(crate) fn register_client(&self, client: ClientId, tx: Sender<ClientReply>) {
        self.client_replies.write().insert(client, tx);
    }

    /// Removes a client session.
    pub(crate) fn unregister_client(&self, client: ClientId) {
        self.client_replies.write().remove(&client);
    }

    /// Sends a client request to a server's inbox.
    pub(crate) fn submit(&self, to: ServerId, client: ClientId, request: ClientRequest) {
        if let Some(tx) = self.server_inboxes.get(&to) {
            let _ = tx.send(Inbound::FromClient { client, request });
        }
    }

    /// Delivers a reply to a client, dropping it silently if the session is gone.
    pub(crate) fn reply(&self, client: ClientId, reply: ClientReply) {
        if let Some(tx) = self.client_replies.read().get(&client) {
            let _ = tx.send(reply);
        }
    }

    /// Routes a server-to-server message, going through the network thread (which injects
    /// the configured inter-DC delay) for messages that cross data centers and delivering
    /// intra-DC traffic directly.
    pub(crate) fn send_server(&self, from: ServerId, to: ServerId, message: ServerMessage) {
        let delay = self.config.latency.between(from.replica, to.replica);
        if delay <= Duration::from_micros(500) {
            self.deliver_server(from, to, message);
        } else {
            let _ = self.network.send(Delayed {
                deliver_at: Instant::now() + delay,
                from,
                to,
                message,
            });
        }
    }

    /// Delivers a server-to-server message immediately.
    pub(crate) fn deliver_server(&self, from: ServerId, to: ServerId, message: ServerMessage) {
        if let Some(tx) = self.server_inboxes.get(&to) {
            let _ = tx.send(Inbound::FromServer { from, message });
        }
    }

    /// Asks a server thread for an introspection snapshot, delivered on `reply`.
    pub(crate) fn probe(&self, to: ServerId, reply: Sender<ServerProbe>) {
        if let Some(tx) = self.server_inboxes.get(&to) {
            let _ = tx.send(Inbound::Probe { reply });
        }
    }

    /// Asks every server thread to shut down.
    pub(crate) fn broadcast_shutdown(&self) {
        for tx in self.server_inboxes.values() {
            let _ = tx.send(Inbound::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{LatencyMatrix, Timestamp};

    fn config() -> Config {
        Config::builder()
            .num_replicas(2)
            .num_partitions(2)
            .latency(LatencyMatrix::uniform(
                2,
                Duration::from_micros(10),
                Duration::from_millis(20),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn client_replies_route_to_registered_sessions_only() {
        let (router, _inboxes, _net) = Router::new(config());
        let (tx, rx) = unbounded();
        router.register_client(ClientId(1), tx);
        router.reply(
            ClientId(1),
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        assert!(rx.try_recv().is_ok());
        // Unknown clients are dropped silently.
        router.reply(
            ClientId(2),
            ClientReply::Put {
                update_time: Timestamp(1),
            },
        );
        router.unregister_client(ClientId(1));
        router.reply(
            ClientId(1),
            ClientReply::Put {
                update_time: Timestamp(2),
            },
        );
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn intra_dc_messages_bypass_the_network_thread() {
        let (router, inboxes, net_rx) = Router::new(config());
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(0u16, 1u32);
        router.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert!(matches!(
            inboxes[&b].try_recv().unwrap(),
            Inbound::FromServer { .. }
        ));
        assert!(net_rx.try_recv().is_err());
    }

    #[test]
    fn cross_dc_messages_go_through_the_network_thread() {
        let (router, inboxes, net_rx) = Router::new(config());
        let a = ServerId::new(0u16, 0u32);
        let b = ServerId::new(1u16, 0u32);
        router.send_server(
            a,
            b,
            ServerMessage::Heartbeat {
                clock: Timestamp(1),
            },
        );
        assert!(inboxes[&b].try_recv().is_err());
        let delayed = net_rx.try_recv().unwrap();
        assert_eq!(delayed.to, b);
        assert!(delayed.deliver_at > Instant::now());
    }

    #[test]
    fn submit_and_shutdown_reach_server_inboxes() {
        let (router, inboxes, _net) = Router::new(config());
        let a = ServerId::new(0u16, 0u32);
        router.submit(
            a,
            ClientId(3),
            ClientRequest::Get {
                key: pocc_types::Key(1),
                rdv: pocc_types::DependencyVector::zero(2),
            },
        );
        assert!(matches!(
            inboxes[&a].try_recv().unwrap(),
            Inbound::FromClient { .. }
        ));
        router.broadcast_shutdown();
        for rx in inboxes.values() {
            assert!(matches!(rx.try_recv().unwrap(), Inbound::Shutdown));
        }
    }
}
