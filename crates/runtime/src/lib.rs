//! An in-process, multi-threaded cluster runtime.
//!
//! `pocc-runtime` runs the very same protocol state machines as the discrete-event
//! simulator, but on real operating-system threads connected by channels: one thread per
//! server (`M` data centers × `N` partitions), a network thread that injects configurable
//! wide-area delays between data centers, and synchronous client handles that applications
//! call like an ordinary key-value store client library.
//!
//! This is the "local multi-node deployment" mode: it demonstrates the system end-to-end
//! in real time (the examples use it) and provides a second, independent driver for the
//! protocol code (the integration tests run the same workloads through it). The wire is
//! pluggable via [`TransportKind`]: the default in-process channel transport moves
//! messages between threads with emulated WAN delays, and the TCP transport runs the very
//! same servers behind real localhost sockets with length-prefixed codec frames, serving
//! both [`ClusterClient`] handles and external load generators.
//!
//! # Example
//!
//! ```
//! use pocc_runtime::{Cluster, RuntimeProtocol};
//! use pocc_types::{Config, Key, ReplicaId, Value};
//! use std::time::Duration;
//!
//! let config = Config::builder()
//!     .num_replicas(2)
//!     .num_partitions(2)
//!     .latency(pocc_types::LatencyMatrix::uniform(
//!         2,
//!         Duration::from_micros(100),
//!         Duration::from_millis(5),
//!     ))
//!     .build()
//!     .unwrap();
//! let cluster = Cluster::builder()
//!     .config(config)
//!     .protocol(RuntimeProtocol::Pocc)
//!     .start();
//! let mut client = cluster.client(ReplicaId(0));
//! client.put(Key(1), Value::from("hello")).unwrap();
//! assert_eq!(
//!     client.get(Key(1)).unwrap().unwrap().as_slice(),
//!     b"hello"
//! );
//! cluster.shutdown();
//! ```
//!
//! Setting `worker_lanes` to more than 1 (via [`ClusterBuilder::worker_lanes`] or the
//! configuration) switches every server from a single-threaded state machine to the
//! shard-parallel execution runtime of `pocc-exec`, where client operations are key-hash
//! routed to worker-lane threads and writes are pipelined.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod router;

pub use client::ClusterClient;
pub use cluster::{Cluster, ClusterBuilder, RuntimeProtocol, ServerProbe};
pub use pocc_net::transport::{ClientPort, TransportKind};
pub use router::Router;
