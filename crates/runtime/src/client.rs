//! Synchronous client handles for the threaded cluster.

use crate::cluster::server_for_key;
use pocc_net::transport::ClientPort;
use pocc_proto::{ClientReply, GetResponse, ProtocolClient, TxItem};
use pocc_protocol::Client;
use pocc_storage::partition_for_key;
use pocc_types::{ClientId, Config, Error, Key, Result, ServerId, Timestamp, Value};
use std::time::Duration;

/// A synchronous client session against a running [`crate::Cluster`].
///
/// The handle owns the protocol-level [`Client`] (dependency tracking of Algorithm 1) and
/// a transport [`ClientPort`]; each call routes the request to the server owning the
/// key's partition in the client's data center, blocks for the reply and folds it back
/// into the session — exactly the closed-loop behaviour of the paper's clients. Whether
/// the request crosses an in-process channel or a TCP socket is the port's business.
pub struct ClusterClient {
    session: Client,
    config: Config,
    port: Box<dyn ClientPort>,
    timeout: Duration,
    reinitializations: u64,
}

impl ClusterClient {
    pub(crate) fn new(
        id: ClientId,
        home: ServerId,
        config: Config,
        port: Box<dyn ClientPort>,
        snapshot_reads: bool,
    ) -> Self {
        let num_replicas = config.num_replicas;
        let session = if snapshot_reads {
            Client::new_snapshot_reads(id, home, num_replicas)
        } else {
            Client::new(id, home, num_replicas)
        };
        ClusterClient {
            session,
            config,
            port,
            timeout: Duration::from_secs(10),
            reinitializations: 0,
        }
    }

    /// The client id of this session.
    pub fn id(&self) -> ClientId {
        self.session.client_id()
    }

    /// The data center this session is attached to.
    pub fn replica(&self) -> pocc_types::ReplicaId {
        self.session.home_server().replica
    }

    /// How long calls wait for a reply before giving up. Blocked POCC operations can wait
    /// up to the server's partition-detection timeout, so this should be longer than that.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// How many times the session was re-initialised after a server-side abort.
    pub fn reinitializations(&self) -> u64 {
        self.reinitializations
    }

    /// Read access to the protocol-level session (dependency vectors).
    pub fn session(&self) -> &Client {
        &self.session
    }

    fn await_reply(&mut self) -> Result<ClientReply> {
        let reply = self.port.recv_timeout(self.timeout)?;
        match self.session.process_reply(&reply) {
            Ok(()) => Ok(reply),
            Err(err @ Error::SessionAborted { .. }) => {
                self.session.reinitialize();
                self.reinitializations += 1;
                Err(err)
            }
            Err(other) => Err(other),
        }
    }

    /// Writes `value` under `key`. Returns the update timestamp assigned by the server.
    pub fn put(&mut self, key: Key, value: Value) -> Result<Timestamp> {
        let target = server_for_key(&self.config, self.replica(), key);
        let request = self.session.put(key, value);
        self.port.submit(target, request)?;
        match self.await_reply()? {
            ClientReply::Put { update_time } => Ok(update_time),
            other => Err(Error::Codec {
                reason: format!("unexpected reply to PUT: {other:?}"),
            }),
        }
    }

    /// Reads the value of `key`, or `None` if it has never been written.
    pub fn get(&mut self, key: Key) -> Result<Option<Value>> {
        Ok(self.get_versioned(key)?.value)
    }

    /// Reads `key`, returning the full versioned response — value, update timestamp,
    /// dependency vector and source replica. Consistency checkers and the differential
    /// suite use this to record reads as protocol-level observations.
    pub fn get_versioned(&mut self, key: Key) -> Result<GetResponse> {
        let target = server_for_key(&self.config, self.replica(), key);
        let request = self.session.get(key);
        self.port.submit(target, request)?;
        match self.await_reply()? {
            ClientReply::Get(resp) => Ok(resp),
            other => Err(Error::Codec {
                reason: format!("unexpected reply to GET: {other:?}"),
            }),
        }
    }

    /// Reads several keys in one causally consistent snapshot. Returns `(key, value)`
    /// pairs in the order the server produced them; missing keys map to `None`.
    pub fn ro_tx(&mut self, keys: Vec<Key>) -> Result<Vec<(Key, Option<Value>)>> {
        Ok(self
            .ro_tx_versioned(keys)?
            .into_iter()
            .map(|item| (item.key, item.response.value))
            .collect())
    }

    /// Reads several keys in one causally consistent snapshot, returning the full
    /// versioned items (key plus the complete per-key [`GetResponse`]).
    pub fn ro_tx_versioned(&mut self, keys: Vec<Key>) -> Result<Vec<TxItem>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // The coordinator is the local server owning the first key's partition.
        let coordinator = ServerId::new(
            self.replica(),
            partition_for_key(keys[0], self.config.num_partitions),
        );
        let request = self.session.ro_tx(keys);
        self.port.submit(coordinator, request)?;
        match self.await_reply()? {
            ClientReply::RoTx { items } => Ok(items),
            other => Err(Error::Codec {
                reason: format!("unexpected reply to RO-TX: {other:?}"),
            }),
        }
    }
}
