//! The cluster: server threads over a pluggable transport, and lifecycle management.

use crate::client::ClusterClient;
use crate::router::{Inbound, Router};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use pocc_adaptive::AdaptiveServer;
use pocc_clock::{Clock, MonotonicClock, SystemClock};
use pocc_cure::CureServer;
use pocc_exec::{ExecProtocol, OutputSink, ParallelServer};
use pocc_ha::HaPoccServer;
use pocc_net::transport::{ClientPort, TransportKind};
use pocc_proto::{InstrumentedServer, MetricsSnapshot, ServerIntrospect, ServerOutput};
use pocc_protocol::PoccServer;
use pocc_storage::StoreStats;
use pocc_types::{ClientId, Config, Key, ReplicaId, ServerId, Timestamp};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which protocol the cluster's servers run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuntimeProtocol {
    /// The optimistic protocol (POCC).
    Pocc,
    /// The pessimistic baseline (Cure\*).
    Cure,
    /// POCC with the availability fall-back (HA-POCC).
    HaPocc,
    /// Per-key optimism with a GSS-stable fall-back for keys under remote churn.
    Adaptive,
}

/// A consistent snapshot of one server's introspection surface, taken on the server's own
/// thread (serial servers) or with the write pipeline fully drained (parallel servers).
#[derive(Clone, Debug)]
pub struct ServerProbe {
    /// The server's metric counters.
    pub metrics: MetricsSnapshot,
    /// `(key, update_time, source_replica)` of the latest visible version of every key.
    pub digest: Vec<(Key, Timestamp, ReplicaId)>,
    /// Aggregate version-store statistics.
    pub store_stats: StoreStats,
}

impl From<RuntimeProtocol> for ExecProtocol {
    fn from(protocol: RuntimeProtocol) -> ExecProtocol {
        match protocol {
            RuntimeProtocol::Pocc => ExecProtocol::Pocc,
            RuntimeProtocol::Cure => ExecProtocol::Cure,
            RuntimeProtocol::HaPocc => ExecProtocol::HaPocc,
            RuntimeProtocol::Adaptive => ExecProtocol::Adaptive,
        }
    }
}

/// How many additional inbox events a server thread drains greedily after a blocking
/// receive before writing out staged transport traffic. Bounds reply latency while
/// letting the TCP backend coalesce a burst into one `write` per peer.
const DRAIN_BUDGET: usize = 128;

/// Builder for [`Cluster`]. Defaults to [`Config::small_test`] running POCC with serial
/// servers on the in-process channel transport; set `worker_lanes` on the configuration
/// (or via [`ClusterBuilder::worker_lanes`]) to run the threaded shard-parallel servers,
/// and [`ClusterBuilder::transport`] to pick the transport backend.
///
/// ```
/// use pocc_runtime::{Cluster, RuntimeProtocol, TransportKind};
///
/// let cluster = Cluster::builder()
///     .protocol(RuntimeProtocol::Pocc)
///     .transport(TransportKind::Channel)
///     .worker_lanes(2)
///     .start();
/// # cluster.shutdown();
/// ```
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    config: Config,
    protocol: RuntimeProtocol,
    transport: TransportKind,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            config: Config::small_test(),
            protocol: RuntimeProtocol::Pocc,
            transport: TransportKind::Channel,
        }
    }
}

impl ClusterBuilder {
    /// Uses `config` as the deployment configuration.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Runs `protocol` on every server.
    pub fn protocol(mut self, protocol: RuntimeProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Connects the servers through `transport` (default: in-process channels).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Shortcut for setting `worker_lanes` on the configuration: `1` (the default) runs
    /// each server as a single thread, larger values run the shard-parallel execution
    /// runtime with that many worker lanes per server.
    pub fn worker_lanes(mut self, lanes: usize) -> Self {
        self.config.worker_lanes = lanes;
        self
    }

    /// Starts the cluster.
    pub fn start(self) -> Cluster {
        Cluster::start_inner(self.config, self.protocol, self.transport)
    }
}

/// A running in-process cluster: one thread per server (plus that server's worker lanes
/// when `worker_lanes > 1`) connected by the chosen transport backend.
///
/// Create it with [`Cluster::builder`], obtain client handles with [`Cluster::client`],
/// and stop it with [`Cluster::shutdown`] (also invoked on drop).
pub struct Cluster {
    router: Router,
    threads: Vec<JoinHandle<()>>,
    running: Arc<AtomicBool>,
    next_client: Arc<AtomicU64>,
    protocol: RuntimeProtocol,
    transport: TransportKind,
}

impl Cluster {
    /// Returns a builder for configuring and starting a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Starts a cluster of `config.num_servers()` server threads running `protocol`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Cluster::builder().config(..).protocol(..).start()`"
    )]
    pub fn start(config: Config, protocol: RuntimeProtocol) -> Cluster {
        Cluster::start_inner(config, protocol, TransportKind::Channel)
    }

    fn start_inner(config: Config, protocol: RuntimeProtocol, transport: TransportKind) -> Cluster {
        config.validate().expect("cluster configuration is valid");
        let (router, mut inboxes) = Router::new(config.clone(), transport);
        let running = Arc::new(AtomicBool::new(true));
        let mut threads = Vec::new();

        for id in config.servers() {
            let inbox = inboxes.remove(&id).expect("every server has an inbox");
            let thread_router = router.clone();
            let thread_config = config.clone();
            let thread_running = Arc::clone(&running);
            let handle = std::thread::Builder::new()
                .name(format!("pocc-server-{id}"))
                .spawn(move || {
                    server_thread(
                        id,
                        thread_config,
                        protocol,
                        thread_router,
                        inbox,
                        thread_running,
                    )
                })
                .expect("spawning a server thread succeeds");
            threads.push(handle);
        }

        Cluster {
            router,
            threads,
            running,
            next_client: Arc::new(AtomicU64::new(0)),
            protocol,
            transport,
        }
    }

    /// The protocol this cluster runs.
    pub fn protocol(&self) -> RuntimeProtocol {
        self.protocol
    }

    /// The transport backend this cluster runs on.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// The deployment configuration.
    pub fn config(&self) -> &Config {
        self.router.config()
    }

    /// The socket address of `server` — `Some` on the TCP transport (this is what
    /// external load generators connect to), `None` on the channel transport.
    pub fn server_addr(&self, server: ServerId) -> Option<SocketAddr> {
        self.router.server_addr(server)
    }

    /// Opens a client session in data center `replica`. The session is collocated with an
    /// arbitrary partition of that data center, like the clients of the paper's test-bed.
    pub fn client(&self, replica: ReplicaId) -> ClusterClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let partition = (id.raw() as usize % self.config().num_partitions) as u32;
        let home = ServerId::new(replica, partition);
        // Snapshot-serving protocols need the full session history in GET request
        // vectors (see `Client::new_snapshot_reads`).
        let snapshot_reads = matches!(
            self.protocol,
            RuntimeProtocol::Cure | RuntimeProtocol::Adaptive
        );
        let port = self.router.client_port(id);
        ClusterClient::new(id, home, self.config().clone(), port, snapshot_reads)
    }

    /// Opens a raw transport port paired with a fresh client id, for external drivers
    /// (load generators) that run their own protocol sessions and manage pipelining
    /// themselves. On the TCP transport the port dials real localhost sockets, exactly
    /// like an out-of-process client would.
    pub fn open_port(&self) -> (ClientId, Box<dyn ClientPort>) {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        (id, self.router.client_port(id))
    }

    /// Takes a consistent introspection snapshot of one server: metrics, convergence
    /// digest and store statistics. Works for both serial and shard-parallel servers (the
    /// latter drain their write pipeline first, so the snapshot is never mid-operation).
    pub fn probe(&self, server: ServerId) -> ServerProbe {
        let (tx, rx) = unbounded();
        self.router.probe(server, tx);
        rx.recv_timeout(Duration::from_secs(10))
            .expect("server answers introspection probes")
    }

    /// Probes every server of the cluster, in `config.servers()` order.
    pub fn probe_all(&self) -> Vec<(ServerId, ServerProbe)> {
        self.config()
            .servers()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| (id, self.probe(id)))
            .collect()
    }

    /// Stops every thread and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.running.swap(false, Ordering::SeqCst) {
            self.router.broadcast_shutdown();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.router.shutdown_transport();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The per-server thread body: build the protocol state machine, then loop between the
/// inbox and the periodic tick until shutdown. After every processed batch the staged
/// transport traffic is flushed, so the TCP backend's write coalescing never defers a
/// message past the handling of the inputs that produced it.
fn server_thread(
    id: ServerId,
    config: Config,
    protocol: RuntimeProtocol,
    router: Router,
    inbox: Receiver<Inbound>,
    running: Arc<AtomicBool>,
) {
    let clock = MonotonicClock::new(SystemClock::with_epoch(router.epoch()));
    if config.worker_lanes > 1 {
        parallel_server_thread(id, config, protocol, router, inbox, running, clock);
        return;
    }
    let mut server: Box<dyn InstrumentedServer> = match protocol {
        RuntimeProtocol::Pocc => Box::new(PoccServer::new(id, config.clone(), clock)),
        RuntimeProtocol::Cure => Box::new(CureServer::new(id, config.clone(), clock)),
        RuntimeProtocol::HaPocc => Box::new(HaPoccServer::new(id, config.clone(), clock)),
        RuntimeProtocol::Adaptive => Box::new(AdaptiveServer::new(id, config.clone(), clock)),
    };

    let tick_every = config.heartbeat_interval;
    let mut next_tick = Instant::now() + tick_every;

    while running.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= next_tick {
            let outputs = server.tick();
            dispatch(&router, id, outputs);
            router.flush(id);
            next_tick = now + tick_every;
            continue;
        }
        match inbox.recv_timeout(next_tick - now) {
            Ok(first) => {
                // Greedily drain whatever else is already queued (bounded), then flush
                // once: a burst of pipelined requests becomes one write per peer.
                let mut event = Some(first);
                let mut drained = 0;
                let mut shutdown = false;
                while let Some(ev) = event.take() {
                    match ev {
                        Inbound::FromClient { client, request } => {
                            let outputs = server.handle_client_request(client, request);
                            dispatch(&router, id, outputs);
                        }
                        Inbound::FromServer { from, message } => {
                            let outputs = server.handle_server_message(from, message);
                            dispatch(&router, id, outputs);
                        }
                        Inbound::Probe { reply } => {
                            let _ = reply.send(probe_of(server.as_ref()));
                        }
                        Inbound::Shutdown => {
                            shutdown = true;
                            break;
                        }
                    }
                    drained += 1;
                    if drained >= DRAIN_BUDGET {
                        break;
                    }
                    event = inbox.try_recv().ok();
                }
                router.flush(id);
                if shutdown {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    router.flush(id);
}

/// The server-thread body for `worker_lanes > 1`: the thread becomes the dispatcher in
/// front of a [`ParallelServer`], forwarding client operations to its lanes and handling
/// server messages, ticks and probes synchronously. Replies leave through the output sink
/// straight onto the transport (flushed immediately — a client is blocked on each);
/// replication staged by lanes is written out by this thread's tick/batch flushes.
fn parallel_server_thread<C: Clock + 'static>(
    id: ServerId,
    config: Config,
    protocol: RuntimeProtocol,
    router: Router,
    inbox: Receiver<Inbound>,
    running: Arc<AtomicBool>,
    clock: C,
) {
    let sink_router = router.clone();
    let sink: OutputSink = Arc::new(move |output| match output {
        ServerOutput::Reply { client, reply } => sink_router.reply(id, client, reply),
        ServerOutput::Send { to, message } => sink_router.send_server(id, to, message),
    });
    let server = ParallelServer::start(id, config.clone(), protocol.into(), clock, sink);

    let tick_every = config.heartbeat_interval;
    let mut next_tick = Instant::now() + tick_every;

    while running.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= next_tick {
            server.tick();
            router.flush(id);
            next_tick = now + tick_every;
            continue;
        }
        match inbox.recv_timeout(next_tick - now) {
            Ok(Inbound::FromClient { client, request }) => {
                if server.submit_client(client, request).is_err() {
                    // The lanes are gone: the server is shutting down, so stop
                    // dispatching instead of panicking on a shutdown race.
                    break;
                }
            }
            Ok(Inbound::FromServer { from, message }) => {
                server.handle_server_message(from, message);
                router.flush(id);
            }
            Ok(Inbound::Probe { reply }) => {
                let _ = reply.send(probe_of(&server));
            }
            Ok(Inbound::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    router.flush(id);
}

fn probe_of<S: ServerIntrospect + ?Sized>(server: &S) -> ServerProbe {
    ServerProbe {
        metrics: server.metrics(),
        digest: server.digest(),
        store_stats: server.store_stats(),
    }
}

fn dispatch(router: &Router, from: ServerId, outputs: Vec<ServerOutput>) {
    for output in outputs {
        match output {
            ServerOutput::Reply { client, reply } => router.reply(from, client, reply),
            ServerOutput::Send { to, message } => router.send_server(from, to, message),
        }
    }
}

/// Convenience: the server responsible for `key` in data center `replica`.
pub(crate) fn server_for_key(config: &Config, replica: ReplicaId, key: Key) -> ServerId {
    ServerId::new(
        replica,
        pocc_storage::partition_for_key(key, config.num_partitions),
    )
}

/// Convenience: a timestamp representing "now" relative to the cluster epoch, used by
/// tests that need to compare against update times returned by the cluster.
pub(crate) fn _now_since(epoch: Instant) -> Timestamp {
    Timestamp::from_micros(epoch.elapsed().as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{LatencyMatrix, Value};

    fn small_config() -> Config {
        Config::builder()
            .num_replicas(2)
            .num_partitions(2)
            .latency(LatencyMatrix::uniform(
                2,
                Duration::from_micros(50),
                Duration::from_millis(3),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn put_then_get_through_a_real_cluster() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .start();
        let mut client = cluster.client(ReplicaId(0));
        let ut = client.put(Key(7), Value::from("v")).unwrap();
        assert!(ut > Timestamp::ZERO);
        let got = client.get(Key(7)).unwrap();
        assert_eq!(got.unwrap().as_slice(), b"v");
        cluster.shutdown();
    }

    #[test]
    fn writes_replicate_across_data_centers() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .start();
        let mut writer = cluster.client(ReplicaId(0));
        let mut reader = cluster.client(ReplicaId(1));
        writer.put(Key(42), Value::from("geo")).unwrap();
        // Replication crosses the (emulated) WAN; poll briefly.
        let mut found = None;
        for _ in 0..100 {
            if let Some(v) = reader.get(Key(42)).unwrap() {
                found = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(found.expect("value replicates").as_slice(), b"geo");
        cluster.shutdown();
    }

    #[test]
    fn tcp_cluster_serves_clients_and_replicates() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .transport(TransportKind::Tcp)
            .start();
        assert!(cluster.server_addr(ServerId::new(0u16, 0u32)).is_some());
        let mut writer = cluster.client(ReplicaId(0));
        let mut reader = cluster.client(ReplicaId(1));
        let ut = writer.put(Key(7), Value::from("wire")).unwrap();
        assert!(ut > Timestamp::ZERO);
        assert_eq!(writer.get(Key(7)).unwrap().unwrap().as_slice(), b"wire");
        let mut found = None;
        for _ in 0..500 {
            if let Some(v) = reader.get(Key(7)).unwrap() {
                found = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(found.expect("value replicates").as_slice(), b"wire");
        cluster.shutdown();
    }

    #[test]
    fn adaptive_cluster_serves_the_same_api() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Adaptive)
            .start();
        let mut client = cluster.client(ReplicaId(0));
        client.put(Key(11), Value::from("adaptive")).unwrap();
        assert_eq!(
            client.get(Key(11)).unwrap().unwrap().as_slice(),
            b"adaptive"
        );
        let tx = client.ro_tx(vec![Key(11), Key(12)]).unwrap();
        assert_eq!(tx.len(), 2);
        cluster.shutdown();
    }

    #[test]
    fn cure_cluster_serves_the_same_api() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Cure)
            .start();
        let mut client = cluster.client(ReplicaId(0));
        client.put(Key(9), Value::from("cure")).unwrap();
        assert_eq!(client.get(Key(9)).unwrap().unwrap().as_slice(), b"cure");
        let tx = client.ro_tx(vec![Key(9), Key(10)]).unwrap();
        assert_eq!(tx.len(), 2);
        cluster.shutdown();
    }

    #[test]
    fn read_only_transactions_span_partitions() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .start();
        let mut client = cluster.client(ReplicaId(0));
        // Write to several keys so the transaction spans both partitions.
        for k in 0..6u64 {
            client.put(Key(k), Value::from(k)).unwrap();
        }
        // The transaction snapshot is bounded by the coordinator's version vector, which
        // learns about writes on *other* partitions through heartbeats (Algorithm 2 line
        // 32 uses RDV, which does not cover the client's own writes). Give the heartbeat
        // protocol a couple of intervals to advance before taking the snapshot.
        std::thread::sleep(Duration::from_millis(10));
        let results = client.ro_tx((0..6u64).map(Key).collect()).unwrap();
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|(_, v)| v.is_some()));
        cluster.shutdown();
    }

    #[test]
    fn parallel_servers_serve_clients_and_replicate() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .worker_lanes(4)
            .start();
        let mut writer = cluster.client(ReplicaId(0));
        let mut reader = cluster.client(ReplicaId(1));
        for k in 0..16u64 {
            writer.put(Key(k), Value::from(k)).unwrap();
        }
        assert_eq!(writer.get(Key(3)).unwrap().unwrap(), Value::from(3u64));
        let mut found = None;
        for _ in 0..200 {
            if let Some(v) = reader.get(Key(15)).unwrap() {
                found = Some(v);
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(found.expect("writes replicate"), Value::from(15u64));
        // Probes drain the write pipeline: the writer's home DC served all 16 PUTs.
        let served: u64 = cluster
            .probe_all()
            .into_iter()
            .filter(|(id, _)| id.replica == ReplicaId(0))
            .map(|(_, probe)| probe.metrics.puts_served)
            .sum();
        assert_eq!(served, 16);
        cluster.shutdown();
    }

    #[test]
    fn probes_reach_serial_servers() {
        let cluster = Cluster::builder()
            .config(small_config())
            .protocol(RuntimeProtocol::Pocc)
            .start();
        let mut client = cluster.client(ReplicaId(0));
        client.put(Key(1), Value::from("p")).unwrap();
        let target = server_for_key(cluster.config(), ReplicaId(0), Key(1));
        let probe = cluster.probe(target);
        assert_eq!(probe.metrics.puts_served, 1);
        assert_eq!(probe.store_stats.versions, 1);
        assert_eq!(probe.digest.len(), 1);
        cluster.shutdown();
    }

    #[test]
    fn server_for_key_matches_partitioning() {
        let config = small_config();
        let s = server_for_key(&config, ReplicaId(1), Key(5));
        assert_eq!(s.replica, ReplicaId(1));
        assert_eq!(
            s.partition,
            pocc_storage::partition_for_key(Key(5), config.num_partitions)
        );
    }
}
