//! A single shard of a partition's version storage.
//!
//! A [`crate::ShardedStore`] splits the key space its partition owns into `N` key-hashed
//! shards. Each [`StoreShard`] is an independent unit with its own version chains,
//! statistics and garbage-collection watermark, so shards can be worked on (inserted
//! into, read, collected) without touching — or in future work, without locking — any
//! sibling shard.

use crate::chain::{LookupOutcome, VersionChain};
use pocc_types::{DependencyVector, Key, Timestamp, Version};
use std::collections::HashMap;

/// Statistics of one shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of distinct keys with at least one version in this shard.
    pub keys: usize,
    /// Total number of versions retained across the shard's chains.
    pub versions: usize,
    /// Length of the longest version chain in this shard.
    pub max_chain_len: usize,
    /// Versions removed by garbage collection from this shard since creation.
    pub gc_removed: usize,
}

impl ShardStats {
    /// Accumulates another shard's statistics into this one (counts sum; chain length
    /// maxes). Used to combine the same shard index across servers.
    pub fn merge(&mut self, other: &ShardStats) {
        self.keys += other.keys;
        self.versions += other.versions;
        self.max_chain_len = self.max_chain_len.max(other.max_chain_len);
        self.gc_removed += other.gc_removed;
    }
}

/// One key-hashed shard: a collection of version chains plus per-shard GC state.
#[derive(Clone, Debug, Default)]
pub struct StoreShard {
    chains: HashMap<Key, VersionChain>,
    gc_removed: usize,
    /// The entry-wise maximum of every GC vector applied to this shard — the shard's
    /// garbage-collection watermark. Versions below it (except chain heads) are gone.
    watermark: Option<DependencyVector>,
}

impl StoreShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        StoreShard::default()
    }

    /// Number of distinct keys stored in this shard.
    pub fn num_keys(&self) -> usize {
        self.chains.len()
    }

    /// Inserts a version into the chain of its key.
    pub fn insert(&mut self, version: Version) {
        self.chains.entry(version.key).or_default().insert(version);
    }

    /// The chain of `key`, if any version of it exists.
    pub fn chain(&self, key: Key) -> Option<&VersionChain> {
        self.chains.get(&key)
    }

    /// The freshest version of `key`, regardless of stability.
    pub fn latest(&self, key: Key) -> Option<&Version> {
        self.chains.get(&key).and_then(|c| c.latest())
    }

    /// The freshest version of `key` within snapshot `tv`.
    pub fn latest_in_snapshot(&self, key: Key, tv: &DependencyVector) -> LookupOutcome {
        self.chains
            .get(&key)
            .map(|c| c.latest_in_snapshot(tv))
            .unwrap_or_default()
    }

    /// The freshest version of `key` visible under a stability predicate built from `gss`
    /// and the local replica (see [`VersionChain::latest_stable`]).
    pub fn latest_stable(
        &self,
        key: Key,
        gss: &DependencyVector,
        local: pocc_types::ReplicaId,
    ) -> LookupOutcome {
        self.chains
            .get(&key)
            .map(|c| c.latest_stable(gss, local))
            .unwrap_or_default()
    }

    /// Number of versions of `key` that are invisible under `visible`.
    pub fn count_invisible<F>(&self, key: Key, visible: F) -> usize
    where
        F: FnMut(&Version) -> bool,
    {
        self.chains
            .get(&key)
            .map(|c| c.count_invisible(visible))
            .unwrap_or(0)
    }

    /// Runs garbage collection with vector `gv` over every chain of this shard, advancing
    /// the shard watermark. Returns the number of versions removed.
    pub fn collect_garbage(&mut self, gv: &DependencyVector) -> usize {
        let mut removed = 0;
        for chain in self.chains.values_mut() {
            removed += chain.collect(gv);
        }
        self.gc_removed += removed;
        match &mut self.watermark {
            Some(w) => w.join(gv),
            none => *none = Some(gv.clone()),
        }
        removed
    }

    /// The shard's garbage-collection watermark: the entry-wise maximum of every GC
    /// vector applied so far, or `None` if GC has never run on this shard.
    pub fn watermark(&self) -> Option<&DependencyVector> {
        self.watermark.as_ref()
    }

    /// Statistics of this shard.
    pub fn stats(&self) -> ShardStats {
        let mut stats = ShardStats {
            keys: self.chains.len(),
            gc_removed: self.gc_removed,
            ..ShardStats::default()
        };
        for chain in self.chains.values() {
            stats.versions += chain.len();
            stats.max_chain_len = stats.max_chain_len.max(chain.len());
        }
        stats
    }

    /// Iterates over the keys stored in this shard (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.chains.keys().copied()
    }

    /// `(key, update time, source replica)` of the freshest version of every key in this
    /// shard, in arbitrary order (the store sorts the union across shards).
    pub fn digest_entries(
        &self,
    ) -> impl Iterator<Item = (Key, Timestamp, pocc_types::ReplicaId)> + '_ {
        self.chains
            .iter()
            .filter_map(|(k, c)| c.latest().map(|v| (*k, v.update_time, v.source_replica)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{ReplicaId, Value};

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&d| Timestamp(d)).collect())
    }

    fn version(key: u64, ut: u64, deps: &[u64]) -> Version {
        Version::new(
            Key(key),
            Value::from(ut),
            ReplicaId(0),
            Timestamp(ut),
            dv(deps),
        )
    }

    #[test]
    fn shard_tracks_chains_and_stats() {
        let mut shard = StoreShard::new();
        shard.insert(version(1, 10, &[0, 0]));
        shard.insert(version(1, 20, &[10, 0]));
        shard.insert(version(2, 15, &[0, 0]));
        assert_eq!(shard.num_keys(), 2);
        let stats = shard.stats();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.versions, 3);
        assert_eq!(stats.max_chain_len, 2);
        assert_eq!(shard.latest(Key(1)).unwrap().update_time, Timestamp(20));
        assert!(shard.latest(Key(9)).is_none());
        assert_eq!(shard.keys().count(), 2);
        assert_eq!(shard.digest_entries().count(), 2);
    }

    #[test]
    fn gc_advances_the_watermark_monotonically() {
        let mut shard = StoreShard::new();
        for i in 1..=4u64 {
            shard.insert(version(1, i * 10, &[(i - 1) * 10, 0]));
        }
        assert!(shard.watermark().is_none());

        let removed = shard.collect_garbage(&dv(&[25, 0]));
        assert_eq!(removed, 1);
        assert_eq!(shard.watermark(), Some(&dv(&[25, 0])));
        assert_eq!(shard.stats().gc_removed, 1);

        // A later GC vector joins entry-wise; an entry regressing does not move it back.
        shard.collect_garbage(&dv(&[20, 5]));
        assert_eq!(shard.watermark(), Some(&dv(&[25, 5])));
    }

    #[test]
    fn lookups_on_missing_keys_return_empty_outcomes() {
        let shard = StoreShard::new();
        assert!(shard
            .latest_in_snapshot(Key(1), &dv(&[9, 9]))
            .version
            .is_none());
        assert!(shard
            .latest_stable(Key(1), &dv(&[9, 9]), ReplicaId(0))
            .version
            .is_none());
        assert_eq!(shard.count_invisible(Key(1), |_| false), 0);
        assert!(shard.chain(Key(1)).is_none());
    }
}
