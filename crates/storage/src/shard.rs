//! A single shard of a partition's version storage.
//!
//! A [`crate::ShardedStore`] splits the key space its partition owns into `N` key-hashed
//! shards. Each [`StoreShard`] is an independent unit with its own version chains,
//! statistics and garbage-collection watermark, so shards can be worked on (inserted
//! into, read, collected) without touching — or in future work, without locking — any
//! sibling shard.
//!
//! # Memory layout
//!
//! Version payloads live in a per-shard **slab** ([`VersionSlab`]): one growable slot
//! array with a free list. A per-key chain is then just a newest-first list of `u32`
//! slot indices. Compared with storing `Version` structs directly inside per-key `Vec`s
//! this (a) turns the steady-state insert-after-GC path into free-list reuse with no
//! heap allocation at all, (b) makes the ordered insert shift 4-byte indices instead of
//! full `Version` structs, and (c) concentrates version memory in one allocation per
//! shard instead of one per key. Garbage collection returns slots to the free list, so
//! shard memory stops growing once the workload's live set stabilizes.

use crate::chain::{lookup_newest_first, LookupOutcome, VersionChain};
use pocc_types::{DependencyVector, Key, Timestamp, Version};
use std::collections::HashMap;

/// Statistics of one shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of distinct keys with at least one version in this shard.
    pub keys: usize,
    /// Total number of versions retained across the shard's chains.
    pub versions: usize,
    /// Length of the longest version chain in this shard.
    pub max_chain_len: usize,
    /// Versions removed by garbage collection from this shard since creation.
    pub gc_removed: usize,
    /// Approximate bytes of live version data (wire-size sum of retained versions).
    pub live_bytes: usize,
}

impl ShardStats {
    /// Accumulates another shard's statistics into this one (counts sum; chain length
    /// maxes). Used to combine the same shard index across servers.
    pub fn merge(&mut self, other: &ShardStats) {
        self.keys += other.keys;
        self.versions += other.versions;
        self.max_chain_len = self.max_chain_len.max(other.max_chain_len);
        self.gc_removed += other.gc_removed;
        self.live_bytes += other.live_bytes;
    }
}

/// Slot storage for the versions of one shard: a growable array of slots with a free
/// list. Indices are stable for the lifetime of the version they hold and are recycled
/// after release, so steady-state insert-after-GC traffic reuses slots instead of
/// growing the heap.
#[derive(Clone, Debug, Default)]
struct VersionSlab {
    slots: Vec<Option<Version>>,
    free: Vec<u32>,
}

impl VersionSlab {
    /// Stores a version, reusing a free slot when one exists.
    fn alloc(&mut self, version: Version) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(version);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX live versions in one shard");
                self.slots.push(Some(version));
                idx
            }
        }
    }

    /// Removes and returns the version in `idx`, putting the slot on the free list.
    fn release(&mut self, idx: u32) -> Version {
        let version = self.slots[idx as usize]
            .take()
            .expect("release of an empty slab slot");
        self.free.push(idx);
        version
    }

    /// The version stored in `idx`.
    #[inline]
    fn get(&self, idx: u32) -> &Version {
        self.slots[idx as usize]
            .as_ref()
            .expect("read of an empty slab slot")
    }
}

/// The newest-first chain of one key, as slot indices into the shard's slab.
#[derive(Clone, Debug, Default)]
struct SlabChain {
    idxs: Vec<u32>,
}

/// One key-hashed shard: slab-backed version chains plus per-shard GC state.
#[derive(Clone, Debug, Default)]
pub struct StoreShard {
    slab: VersionSlab,
    chains: HashMap<Key, SlabChain>,
    gc_removed: usize,
    /// Approximate bytes of live version data, maintained incrementally on insert/GC.
    live_bytes: usize,
    /// Length of the longest chain: bumped on insert, recomputed exactly during GC
    /// (which walks every chain anyway). Never underestimates between GC passes.
    longest_chain: usize,
    /// The entry-wise maximum of every GC vector applied to this shard — the shard's
    /// garbage-collection watermark. Versions below it (except chain heads) are gone.
    watermark: Option<DependencyVector>,
}

impl StoreShard {
    /// Creates an empty shard.
    pub fn new() -> Self {
        StoreShard::default()
    }

    /// Number of distinct keys stored in this shard.
    pub fn num_keys(&self) -> usize {
        self.chains.len()
    }

    /// Whether any version of `key` is stored in this shard.
    pub fn has_key(&self, key: Key) -> bool {
        self.chains.contains_key(&key)
    }

    /// Inserts a version into the chain of its key, keeping newest-first last-writer-wins
    /// order. Duplicate `(update_time, source replica)` pairs are ignored.
    pub fn insert(&mut self, version: Version) {
        let StoreShard { slab, chains, .. } = self;
        let chain = chains.entry(version.key).or_default();
        let pos = chain
            .idxs
            .partition_point(|&i| slab.get(i).wins_over(&version));
        if let Some(&at) = chain.idxs.get(pos) {
            let existing = slab.get(at);
            if existing.update_time == version.update_time
                && existing.source_replica == version.source_replica
            {
                return;
            }
        }
        self.live_bytes += version.wire_size();
        let idx = slab.alloc(version);
        chain.idxs.insert(pos, idx);
        self.longest_chain = self.longest_chain.max(chain.idxs.len());
    }

    /// Iterates the versions of one chain newest-first.
    fn chain_versions<'a>(
        &'a self,
        chain: &'a SlabChain,
    ) -> impl Iterator<Item = &'a Version> + 'a {
        chain.idxs.iter().map(move |&i| self.slab.get(i))
    }

    /// A materialized clone of the chain of `key`, if any version of it exists.
    /// This copies the chain's versions; it is a white-box inspection helper, not a
    /// hot-path read (the lookups below read the slab in place).
    pub fn chain(&self, key: Key) -> Option<VersionChain> {
        self.chains
            .get(&key)
            .map(|c| VersionChain::from_sorted(self.chain_versions(c).cloned().collect::<Vec<_>>()))
    }

    /// The freshest version of `key`, regardless of stability.
    pub fn latest(&self, key: Key) -> Option<&Version> {
        self.chains
            .get(&key)
            .and_then(|c| c.idxs.first())
            .map(|&i| self.slab.get(i))
    }

    /// The freshest version of `key` within snapshot `tv`.
    pub fn latest_in_snapshot(&self, key: Key, tv: &DependencyVector) -> LookupOutcome {
        match self.chains.get(&key) {
            Some(c) => lookup_newest_first(self.chain_versions(c), |v| {
                v.update_time <= tv.get(v.source_replica) && v.visible_under(tv)
            }),
            None => LookupOutcome::default(),
        }
    }

    /// The freshest version of `key` visible under Cure's pessimistic rule: local
    /// versions are always visible, remote versions only when covered by `gss`.
    pub fn latest_stable(
        &self,
        key: Key,
        gss: &DependencyVector,
        local: pocc_types::ReplicaId,
    ) -> LookupOutcome {
        match self.chains.get(&key) {
            Some(c) => lookup_newest_first(self.chain_versions(c), |v| {
                v.source_replica == local
                    || (v.update_time <= gss.get(v.source_replica) && v.visible_under(gss))
            }),
            None => LookupOutcome::default(),
        }
    }

    /// Number of versions of `key` that are invisible under `visible`.
    pub fn count_invisible<F>(&self, key: Key, mut visible: F) -> usize
    where
        F: FnMut(&Version) -> bool,
    {
        match self.chains.get(&key) {
            Some(c) => self.chain_versions(c).filter(|v| !visible(v)).count(),
            None => 0,
        }
    }

    /// Runs garbage collection with vector `gv` over every chain of this shard, advancing
    /// the shard watermark. Retains, per chain, every version down to and including the
    /// first one covered by `gv` (§IV-B); released versions go back to the slab free
    /// list. Returns the number of versions removed.
    pub fn collect_garbage(&mut self, gv: &DependencyVector) -> usize {
        let StoreShard { slab, chains, .. } = self;
        let mut removed = 0;
        let mut freed_bytes = 0;
        let mut longest = 0;
        for chain in chains.values_mut() {
            let keep = chain.idxs.iter().position(|&i| {
                let v = slab.get(i);
                v.update_time <= gv.get(v.source_replica) && v.visible_under(gv)
            });
            if let Some(idx) = keep {
                if idx + 1 < chain.idxs.len() {
                    for &i in &chain.idxs[idx + 1..] {
                        freed_bytes += slab.release(i).wire_size();
                        removed += 1;
                    }
                    chain.idxs.truncate(idx + 1);
                }
            }
            longest = longest.max(chain.idxs.len());
        }
        self.gc_removed += removed;
        self.live_bytes -= freed_bytes;
        self.longest_chain = longest;
        match &mut self.watermark {
            Some(w) => w.join(gv),
            none => *none = Some(gv.clone()),
        }
        removed
    }

    /// The shard's garbage-collection watermark: the entry-wise maximum of every GC
    /// vector applied so far, or `None` if GC has never run on this shard.
    pub fn watermark(&self) -> Option<&DependencyVector> {
        self.watermark.as_ref()
    }

    /// Approximate bytes of live version data in this shard (wire-size sum), maintained
    /// incrementally. This is the signal pressure-adaptive GC keys off.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Length of the longest chain in this shard. Exact after every GC pass; between
    /// passes it is an upper-bound watermark bumped on insert (chains only grow between
    /// GCs, so it is in fact exact whenever it matters for pressure checks).
    pub fn longest_chain(&self) -> usize {
        self.longest_chain
    }

    /// Statistics of this shard.
    pub fn stats(&self) -> ShardStats {
        let mut stats = ShardStats {
            keys: self.chains.len(),
            gc_removed: self.gc_removed,
            live_bytes: self.live_bytes,
            ..ShardStats::default()
        };
        for chain in self.chains.values() {
            stats.versions += chain.idxs.len();
            stats.max_chain_len = stats.max_chain_len.max(chain.idxs.len());
        }
        stats
    }

    /// Iterates over the keys stored in this shard (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.chains.keys().copied()
    }

    /// `(key, update time, source replica)` of the freshest version of every key in this
    /// shard, in arbitrary order (the store sorts the union across shards).
    pub fn digest_entries(
        &self,
    ) -> impl Iterator<Item = (Key, Timestamp, pocc_types::ReplicaId)> + '_ {
        self.chains.iter().filter_map(|(k, c)| {
            c.idxs
                .first()
                .map(|&i| self.slab.get(i))
                .map(|v| (*k, v.update_time, v.source_replica))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{ReplicaId, Value};

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&d| Timestamp(d)).collect())
    }

    fn version(key: u64, ut: u64, deps: &[u64]) -> Version {
        Version::new(
            Key(key),
            Value::from(ut),
            ReplicaId(0),
            Timestamp(ut),
            dv(deps),
        )
    }

    #[test]
    fn shard_tracks_chains_and_stats() {
        let mut shard = StoreShard::new();
        shard.insert(version(1, 10, &[0, 0]));
        shard.insert(version(1, 20, &[10, 0]));
        shard.insert(version(2, 15, &[0, 0]));
        assert_eq!(shard.num_keys(), 2);
        let stats = shard.stats();
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.versions, 3);
        assert_eq!(stats.max_chain_len, 2);
        assert_eq!(shard.latest(Key(1)).unwrap().update_time, Timestamp(20));
        assert!(shard.latest(Key(9)).is_none());
        assert_eq!(shard.keys().count(), 2);
        assert_eq!(shard.digest_entries().count(), 2);
        assert!(shard.has_key(Key(1)));
        assert!(!shard.has_key(Key(9)));
    }

    #[test]
    fn gc_advances_the_watermark_monotonically() {
        let mut shard = StoreShard::new();
        for i in 1..=4u64 {
            shard.insert(version(1, i * 10, &[(i - 1) * 10, 0]));
        }
        assert!(shard.watermark().is_none());

        let removed = shard.collect_garbage(&dv(&[25, 0]));
        assert_eq!(removed, 1);
        assert_eq!(shard.watermark(), Some(&dv(&[25, 0])));
        assert_eq!(shard.stats().gc_removed, 1);

        // A later GC vector joins entry-wise; an entry regressing does not move it back.
        shard.collect_garbage(&dv(&[20, 5]));
        assert_eq!(shard.watermark(), Some(&dv(&[25, 5])));
    }

    #[test]
    fn lookups_on_missing_keys_return_empty_outcomes() {
        let shard = StoreShard::new();
        assert!(shard
            .latest_in_snapshot(Key(1), &dv(&[9, 9]))
            .version
            .is_none());
        assert!(shard
            .latest_stable(Key(1), &dv(&[9, 9]), ReplicaId(0))
            .version
            .is_none());
        assert_eq!(shard.count_invisible(Key(1), |_| false), 0);
        assert!(shard.chain(Key(1)).is_none());
    }

    #[test]
    fn duplicate_inserts_do_not_grow_the_slab_or_live_bytes() {
        let mut shard = StoreShard::new();
        shard.insert(version(1, 10, &[0, 0]));
        let bytes_after_first = shard.live_bytes();
        assert!(bytes_after_first > 0);
        shard.insert(version(1, 10, &[0, 0]));
        assert_eq!(shard.stats().versions, 1);
        assert_eq!(shard.live_bytes(), bytes_after_first);
    }

    #[test]
    fn gc_returns_slots_to_the_free_list_and_live_bytes_shrink() {
        let mut shard = StoreShard::new();
        for i in 1..=8u64 {
            shard.insert(version(1, i * 10, &[(i - 1) * 10, 0]));
        }
        let slots_before = shard.slab.slots.len();
        let bytes_before = shard.live_bytes();
        let removed = shard.collect_garbage(&dv(&[100, 100]));
        assert_eq!(removed, 7);
        assert_eq!(shard.slab.free.len(), 7);
        assert!(shard.live_bytes() < bytes_before);
        assert_eq!(shard.longest_chain(), 1);

        // Re-inserting reuses the freed slots: the slot array does not grow.
        for i in 9..=15u64 {
            shard.insert(version(1, i * 10, &[(i - 1) * 10, 0]));
        }
        assert_eq!(shard.slab.slots.len(), slots_before);
        assert_eq!(shard.slab.free.len(), 0);
        assert_eq!(shard.stats().versions, 8);
    }

    #[test]
    fn longest_chain_is_bumped_on_insert_and_exact_after_gc() {
        let mut shard = StoreShard::new();
        for i in 1..=5u64 {
            shard.insert(version(1, i * 10, &[(i - 1) * 10, 0]));
        }
        shard.insert(version(2, 10, &[0, 0]));
        assert_eq!(shard.longest_chain(), 5);
        shard.collect_garbage(&dv(&[100, 100]));
        assert_eq!(shard.longest_chain(), 1);
    }

    #[test]
    fn materialized_chain_matches_slab_order() {
        let mut shard = StoreShard::new();
        shard.insert(version(1, 10, &[0, 0]));
        shard.insert(version(1, 30, &[0, 0]));
        shard.insert(version(1, 20, &[0, 0]));
        let chain = shard.chain(Key(1)).unwrap();
        let times: Vec<u64> = chain.iter().map(|v| v.update_time.as_micros()).collect();
        assert_eq!(times, vec![30, 20, 10]);
    }
}
