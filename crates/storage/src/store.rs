//! The per-server partition store: version chains split across key-hashed shards.

use crate::chain::LookupOutcome;
use crate::shard::{ShardStats, StoreShard};
use crate::{partition_for_key, shard_for_key};
use parking_lot::RwLock;
use pocc_types::{DependencyVector, Error, Key, PartitionId, ReplicaId, Result, Version};
use std::sync::Arc;

/// Aggregate statistics of a [`ShardedStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of distinct keys with at least one version.
    pub keys: usize,
    /// Total number of versions retained across all chains.
    pub versions: usize,
    /// Length of the longest version chain.
    pub max_chain_len: usize,
    /// Total number of versions removed by garbage collection since the store was created.
    pub gc_removed: usize,
    /// Approximate bytes of live version data (wire-size sum of retained versions).
    pub live_bytes: usize,
}

impl StoreStats {
    /// Accumulates another aggregate into this one (counts sum; chain length maxes).
    /// The single source of truth for combining store statistics — the per-store
    /// aggregation below and the simulator's cross-server aggregation both use it.
    pub fn merge(&mut self, other: &StoreStats) {
        self.keys += other.keys;
        self.versions += other.versions;
        self.max_chain_len = self.max_chain_len.max(other.max_chain_len);
        self.gc_removed += other.gc_removed;
        self.live_bytes += other.live_bytes;
    }

    /// Accumulates one shard's statistics into this aggregate.
    pub fn absorb_shard(&mut self, shard: &ShardStats) {
        self.merge(&StoreStats {
            keys: shard.keys,
            versions: shard.versions,
            max_chain_len: shard.max_chain_len,
            gc_removed: shard.gc_removed,
            live_bytes: shard.live_bytes,
        });
    }
}

/// The historical name of the store, kept for call sites that predate sharding.
/// `PartitionStore::new` builds a single-shard store, which behaves exactly like the
/// original one-`HashMap` implementation.
pub type PartitionStore = ShardedStore;

/// The storage of one server `p^m_n`: the version chains of every key owned by partition
/// `n`, as seen by the replica in data center `m`, split across `S` key-hashed
/// [`StoreShard`]s.
///
/// Sharding is an intra-partition scalability measure: each shard owns a disjoint slice
/// of the partition's keys with its own chains, statistics and GC watermark, keeping
/// per-shard hash maps small and giving future concurrent server loops independently
/// workable units. Shard routing ([`shard_for_key`]) is deterministic, so a store with
/// `S = 1` is observationally identical to the original unsharded store — the
/// equivalence tests in `tests/` of this crate pin that down.
///
/// The store validates that inserted keys actually belong to its partition (mis-routed
/// writes are a bug in the routing layer, reported as [`Error::WrongPartition`]).
///
/// Every shard sits behind its own reader-writer lock and every method takes `&self`,
/// so the threaded runtime's worker lanes can insert into disjoint shards concurrently
/// while readers serve lock-free-routed GETs from others. `Clone` produces a *handle* to
/// the same underlying shards (the shard vector is shared), which is what lets an
/// execution layer hand the store to reader threads while a writer pipeline keeps
/// appending. Lookups return owned data (cloned versions) rather than references, since
/// references cannot outlive the internal shard locks; version payloads are cheap,
/// refcounted byte buffers, so the clones are shallow.
#[derive(Clone, Debug)]
pub struct ShardedStore {
    partition: PartitionId,
    num_partitions: usize,
    shards: Arc<Vec<RwLock<StoreShard>>>,
}

impl ShardedStore {
    /// Creates an empty single-shard store for `partition` in a deployment of
    /// `num_partitions` partitions — the configuration equivalent to the original
    /// unsharded `PartitionStore`.
    pub fn new(partition: PartitionId, num_partitions: usize) -> Self {
        ShardedStore::with_shards(partition, num_partitions, 1)
    }

    /// Creates an empty store with `num_shards` key-hashed shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn with_shards(partition: PartitionId, num_partitions: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0, "a store has at least one shard");
        ShardedStore {
            partition,
            num_partitions,
            shards: Arc::new(
                (0..num_shards)
                    .map(|_| RwLock::new(StoreShard::new()))
                    .collect(),
            ),
        }
    }

    /// The partition this store belongs to.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Number of shards the key space of this partition is split into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The lock guarding the shard that owns `key`.
    fn shard(&self, key: Key) -> &RwLock<StoreShard> {
        &self.shards[shard_for_key(key, self.shards.len())]
    }

    /// Checks that `key` is owned by this partition.
    pub fn check_ownership(&self, key: Key) -> Result<()> {
        let owner = partition_for_key(key, self.num_partitions);
        if owner == self.partition {
            Ok(())
        } else {
            Err(Error::WrongPartition {
                key,
                expected: owner,
                actual: self.partition,
            })
        }
    }

    /// Inserts a version (a local PUT or a replicated update). Returns an error if the key
    /// is not owned by this partition.
    pub fn insert(&self, version: Version) -> Result<()> {
        self.check_ownership(version.key)?;
        self.shard(version.key).write().insert(version);
        Ok(())
    }

    /// The freshest version of `key`, regardless of stability (POCC GET, Algorithm 2
    /// line 3). Returns `None` for a key that has never been written.
    pub fn latest(&self, key: Key) -> Option<Version> {
        self.shard(key).read().latest(key).cloned()
    }

    /// The freshest version of `key` within snapshot `tv` (RO-TX slice read,
    /// Algorithm 2 lines 43–44).
    pub fn latest_in_snapshot(&self, key: Key, tv: &DependencyVector) -> LookupOutcome {
        self.shard(key).read().latest_in_snapshot(key, tv)
    }

    /// The freshest version of `key` visible under Cure's pessimistic rule (local versions
    /// always visible, remote versions only when covered by the GSS).
    pub fn latest_stable(
        &self,
        key: Key,
        gss: &DependencyVector,
        local: ReplicaId,
    ) -> LookupOutcome {
        self.shard(key).read().latest_stable(key, gss, local)
    }

    /// Whether the chain of `key` contains at least one version that is **not** stable
    /// under `gss` (the paper's "unmerged item" definition, §V-B: some version of the item
    /// is not stable yet, regardless of which version is returned).
    pub fn has_unmerged_versions(
        &self,
        key: Key,
        gss: &DependencyVector,
        local: ReplicaId,
    ) -> bool {
        self.unmerged_count(key, gss, local) > 0
    }

    /// Number of versions of `key` that are not stable under `gss`.
    pub fn unmerged_count(&self, key: Key, gss: &DependencyVector, local: ReplicaId) -> usize {
        self.shard(key).read().count_invisible(key, |v| {
            v.source_replica == local
                || (v.update_time <= gss.get(v.source_replica) && v.visible_under(gss))
        })
    }

    /// Whether a `None` result of [`latest_in_snapshot`](Self::latest_in_snapshot) for
    /// `key` under snapshot `tv` could be an artifact of garbage collection rather than
    /// the key's true state at `tv` ("snapshot too old").
    ///
    /// Garbage collection never empties a chain and only removes versions *older* than
    /// the newest version covered by the GC vector, so any version a lookup does return
    /// is still the correct freshest-in-snapshot answer. The one result GC can falsify
    /// is an empty one: the version `tv` needs may have been collected. That is possible
    /// only when the key has a chain, the owning shard has collected garbage, and `tv`
    /// does not cover the shard's GC watermark.
    pub fn snapshot_may_predate_gc(&self, key: Key, tv: &DependencyVector) -> bool {
        let shard = self.shard(key).read();
        match shard.watermark() {
            Some(w) => !tv.dominates(w) && shard.has_key(key),
            None => false,
        }
    }

    /// Whether any shard's retained history exceeds the given pressure bounds: a chain
    /// longer than `max_chain_len` versions, or more than `max_live_bytes` of live
    /// version data in one shard. Either signal means GC is overdue for that shard, so
    /// the check short-circuits on the first offender. Pressure-adaptive GC
    /// (`Config::gc_pressure`) polls this between interval-driven GC ticks.
    pub fn pressure_exceeded(&self, max_chain_len: usize, max_live_bytes: usize) -> bool {
        self.shards.iter().any(|shard| {
            let shard = shard.read();
            shard.longest_chain() > max_chain_len || shard.live_bytes() > max_live_bytes
        })
    }

    /// Runs garbage collection with vector `gv` over every shard (§IV-B), advancing each
    /// shard's watermark. Returns the number of versions removed in this pass.
    pub fn collect_garbage(&self, gv: &DependencyVector) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.write().collect_garbage(gv))
            .sum()
    }

    /// Aggregate statistics of the store, summed over all shards.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for shard in self.shards.iter() {
            stats.absorb_shard(&shard.read().stats());
        }
        stats
    }

    /// Per-shard statistics, indexed by shard. Useful to check how evenly the key space
    /// spreads (the ablation bench prints these).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| shard.read().stats())
            .collect()
    }

    /// A deterministic digest of the *latest* version of every key: `(key, update time,
    /// source replica)` triples sorted by key. Two replicas of the same partition have
    /// converged exactly when their digests are equal — the convergence tests rely on
    /// this. The digest is independent of the shard count.
    pub fn digest(&self) -> Vec<(Key, pocc_types::Timestamp, ReplicaId)> {
        let mut d: Vec<_> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().digest_entries().collect::<Vec<_>>())
            .collect();
        d.sort();
        d
    }

    /// All keys with at least one version (arbitrary order).
    pub fn keys(&self) -> Vec<Key> {
        self.shards
            .iter()
            .flat_map(|shard| shard.read().keys().collect::<Vec<_>>())
            .collect()
    }

    /// A materialized clone of the chain of `key`, if present (used by white-box tests).
    pub fn chain(&self, key: Key) -> Option<crate::VersionChain> {
        self.shard(key).read().chain(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{Timestamp, Value};

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&d| Timestamp(d)).collect())
    }

    /// A key owned by the given partition in a `num_partitions`-way deployment.
    fn key_in(partition: usize, num_partitions: usize) -> Key {
        (0u64..)
            .map(Key)
            .find(|k| partition_for_key(*k, num_partitions).index() == partition)
            .unwrap()
    }

    fn version(key: Key, ut: u64, sr: u16, deps: &[u64]) -> Version {
        Version::new(key, Value::from(ut), ReplicaId(sr), Timestamp(ut), dv(deps))
    }

    #[test]
    fn insert_and_read_back_latest() {
        let k = key_in(0, 4);
        let store = PartitionStore::new(PartitionId(0), 4);
        store.insert(version(k, 10, 0, &[0, 0, 0])).unwrap();
        store.insert(version(k, 30, 1, &[0, 0, 0])).unwrap();
        assert_eq!(store.latest(k).unwrap().update_time, Timestamp(30));
        assert_eq!(store.latest(Key(u64::MAX)), None);
    }

    #[test]
    fn misrouted_writes_are_rejected() {
        let num = 4;
        let k = key_in(1, num);
        let store = PartitionStore::new(PartitionId(0), num);
        let err = store.insert(version(k, 10, 0, &[0, 0, 0])).unwrap_err();
        match err {
            Error::WrongPartition {
                expected, actual, ..
            } => {
                assert_eq!(expected, PartitionId(1));
                assert_eq!(actual, PartitionId(0));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn snapshot_and_stable_lookups_delegate_to_the_chain() {
        let k = key_in(0, 2);
        let store = PartitionStore::new(PartitionId(0), 2);
        store.insert(version(k, 10, 1, &[0, 0, 0])).unwrap();
        store.insert(version(k, 50, 1, &[0, 40, 0])).unwrap();

        let snap = store.latest_in_snapshot(k, &dv(&[100, 20, 100]));
        assert_eq!(snap.version.unwrap().update_time, Timestamp(10));

        let stable = store.latest_stable(k, &dv(&[0, 10, 0]), ReplicaId(0));
        assert_eq!(stable.version.clone().unwrap().update_time, Timestamp(10));
        assert!(stable.is_old());

        // Unknown keys return empty outcomes rather than panicking.
        assert!(store
            .latest_in_snapshot(Key(u64::MAX), &dv(&[0, 0, 0]))
            .version
            .is_none());
    }

    #[test]
    fn unmerged_accounting_matches_definition() {
        let k = key_in(0, 2);
        let store = PartitionStore::new(PartitionId(0), 2);
        store.insert(version(k, 10, 1, &[0, 0, 0])).unwrap();
        store.insert(version(k, 50, 1, &[0, 40, 0])).unwrap();
        let gss = dv(&[0, 10, 0]);
        assert!(store.has_unmerged_versions(k, &gss, ReplicaId(0)));
        assert_eq!(store.unmerged_count(k, &gss, ReplicaId(0)), 1);
        let gss_all = dv(&[100, 100, 100]);
        assert!(!store.has_unmerged_versions(k, &gss_all, ReplicaId(0)));
        assert!(!store.has_unmerged_versions(Key(u64::MAX), &gss, ReplicaId(0)));
    }

    #[test]
    fn garbage_collection_updates_stats() {
        let k = key_in(0, 2);
        let store = PartitionStore::new(PartitionId(0), 2);
        for i in 1..=5u64 {
            store
                .insert(version(k, i * 10, 0, &[(i - 1) * 10, 0, 0]))
                .unwrap();
        }
        assert_eq!(store.stats().versions, 5);
        let removed = store.collect_garbage(&dv(&[35, 0, 0]));
        assert_eq!(removed, 2);
        let stats = store.stats();
        assert_eq!(stats.versions, 3);
        assert_eq!(stats.gc_removed, 2);
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.max_chain_len, 3);
    }

    #[test]
    fn digest_identifies_convergence() {
        let num = 2;
        let k1 = key_in(0, num);
        let k2 = (k1.raw() + 1..)
            .map(Key)
            .find(|k| partition_for_key(*k, num).index() == 0)
            .unwrap();

        let a = PartitionStore::new(PartitionId(0), num);
        let b = PartitionStore::new(PartitionId(0), num);
        for store in [&a, &b] {
            store.insert(version(k1, 10, 0, &[0, 0, 0])).unwrap();
            store.insert(version(k2, 20, 1, &[0, 0, 0])).unwrap();
        }
        assert_eq!(a.digest(), b.digest());

        // Diverge b.
        b.insert(version(k1, 30, 1, &[0, 0, 0])).unwrap();
        assert_ne!(a.digest(), b.digest());

        // Converge again by applying the same update to a (different arrival order).
        a.insert(version(k1, 30, 1, &[0, 0, 0])).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.keys().len(), 2);
    }

    #[test]
    fn chain_accessor_exposes_raw_chain() {
        let k = key_in(0, 2);
        let store = PartitionStore::new(PartitionId(0), 2);
        store.insert(version(k, 10, 0, &[0, 0, 0])).unwrap();
        assert_eq!(store.chain(k).unwrap().len(), 1);
        assert!(store.chain(Key(u64::MAX)).is_none());
    }

    #[test]
    fn sharded_store_spreads_keys_and_aggregates_stats() {
        let num_partitions = 1;
        let store = ShardedStore::with_shards(PartitionId(0), num_partitions, 4);
        assert_eq!(store.num_shards(), 4);
        for k in 0..256u64 {
            store.insert(version(Key(k), 10, 0, &[0, 0, 0])).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.keys, 256);
        assert_eq!(stats.versions, 256);

        let per_shard = store.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.keys).sum::<usize>(), 256);
        // Key-hashed routing spreads a dense key space across every shard.
        assert!(per_shard.iter().all(|s| s.keys > 0));
    }

    #[test]
    fn digest_is_shard_count_independent() {
        let one = ShardedStore::new(PartitionId(0), 1);
        let eight = ShardedStore::with_shards(PartitionId(0), 1, 8);
        for k in 0..64u64 {
            let v = version(Key(k), 10 + k, (k % 3) as u16, &[0, 0, 0]);
            one.insert(v.clone()).unwrap();
            eight.insert(v).unwrap();
        }
        assert_eq!(one.digest(), eight.digest());
        assert_eq!(one.stats(), eight.stats());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_a_programming_error() {
        let _ = ShardedStore::with_shards(PartitionId(0), 1, 0);
    }
}
