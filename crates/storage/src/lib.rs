//! Multi-version key-value storage for the POCC reproduction.
//!
//! The system model of the paper (§II-C) assumes a multiversion data store: every PUT
//! creates a new [`Version`](pocc_types::Version) of the item, versions of the same key form a *version chain*
//! ordered by the last-writer-wins rule, and the store is periodically garbage-collected.
//!
//! This crate provides:
//!
//! * [`partition_for_key`] / [`shard_for_key`] — the deterministic key → partition and
//!   key → shard assignments,
//! * [`VersionChain`] — the per-key chain with the lookups both protocols need:
//!   the freshest version (POCC GET), the freshest version visible under a snapshot
//!   vector (RO-TX slice reads, Algorithm 2 line 43), and the freshest version visible
//!   under Cure's Globally Stable Snapshot (pessimistic GET), together with the staleness
//!   statistics the evaluation reports (how many fresher/unmerged versions sit above the
//!   returned one),
//! * [`ShardedStore`] — the per-server store: the partition's chains split across
//!   key-hashed [`StoreShard`]s, each with its own statistics and GC watermark, with
//!   garbage collection (§IV-B) and the content digests used by convergence tests.
//!   [`PartitionStore`] is the historical single-shard alias.
//!
//! # Example
//!
//! ```
//! use pocc_storage::{shard_for_key, ShardedStore};
//! use pocc_types::{DependencyVector, Key, PartitionId, ReplicaId, Timestamp, Value, Version};
//!
//! // A store for partition 0 of a 1-partition deployment, split into 4 shards.
//! let store = ShardedStore::with_shards(PartitionId(0), 1, 4);
//!
//! // Every PUT creates a new version; versions of one key form a chain.
//! for t in [10, 20] {
//!     store.insert(Version::new(
//!         Key(7),
//!         Value::from(t),
//!         ReplicaId(0),
//!         Timestamp(t),
//!         DependencyVector::zero(3),
//!     )).unwrap();
//! }
//!
//! // A POCC GET returns the freshest version; snapshot reads respect the snapshot.
//! assert_eq!(store.latest(Key(7)).unwrap().update_time, Timestamp(20));
//! let tv = DependencyVector::from_entries(vec![Timestamp(15), Timestamp(15), Timestamp(15)]);
//! let in_snapshot = store.latest_in_snapshot(Key(7), &tv);
//! assert_eq!(in_snapshot.version.unwrap().update_time, Timestamp(10));
//!
//! // The key lives in exactly one shard; stats aggregate across shards.
//! assert!(shard_for_key(Key(7), 4) < 4);
//! assert_eq!(store.stats().versions, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod partitioning;
mod shard;
mod store;

pub use chain::{ChainReadStats, LookupOutcome, VersionChain};
pub use partitioning::{partition_for_key, shard_for_key};
pub use shard::{ShardStats, StoreShard};
pub use store::{PartitionStore, ShardedStore, StoreStats};
