//! Multi-version key-value storage for the POCC reproduction.
//!
//! The system model of the paper (§II-C) assumes a multiversion data store: every PUT
//! creates a new [`Version`] of the item, versions of the same key form a *version chain*
//! ordered by the last-writer-wins rule, and the store is periodically garbage-collected.
//!
//! This crate provides:
//!
//! * [`partition_for_key`] — the deterministic key → partition assignment,
//! * [`VersionChain`] — the per-key chain with the lookups both protocols need:
//!   the freshest version (POCC GET), the freshest version visible under a snapshot
//!   vector (RO-TX slice reads, Algorithm 2 line 43), and the freshest version visible
//!   under Cure's Globally Stable Snapshot (pessimistic GET), together with the staleness
//!   statistics the evaluation reports (how many fresher/unmerged versions sit above the
//!   returned one),
//! * [`PartitionStore`] — the per-server collection of chains with garbage collection
//!   (§IV-B) and content digests used by convergence tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod partitioning;
mod store;

pub use chain::{ChainReadStats, LookupOutcome, VersionChain};
pub use partitioning::partition_for_key;
pub use store::{PartitionStore, StoreStats};
