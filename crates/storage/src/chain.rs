//! Per-key version chains.

use pocc_types::{DependencyVector, Version};

/// Statistics about a single chain lookup, used by the evaluation to reproduce the
//  staleness metrics of Figures 2b and 3d.
/// * `traversed` — how many chain elements were inspected before the returned version was
///   found; Cure\* pays a CPU cost proportional to this, POCC GETs always return the head.
/// * `fresher_than_returned` — how many versions in the chain are fresher (win under
///   last-writer-wins) than the returned one: the paper's *"# Fresher vers."*.
/// * `unmerged_above` — how many of those fresher versions were invisible because they were
///   not yet stable: the paper's *"# Unmerged vers."*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainReadStats {
    /// Number of chain elements inspected by the lookup.
    pub traversed: usize,
    /// Number of versions fresher than the returned one.
    pub fresher_than_returned: usize,
    /// Number of fresher versions that were skipped because they were not visible.
    pub unmerged_above: usize,
}

/// The result of a chain lookup: the chosen version (if any) plus read statistics.
#[derive(Clone, Debug, Default)]
pub struct LookupOutcome {
    /// The version to return to the client, or `None` if no version qualifies.
    pub version: Option<Version>,
    /// Statistics about the lookup.
    pub stats: ChainReadStats,
}

impl LookupOutcome {
    /// Whether the returned version is *old*: at least one fresher version exists in the
    /// chain (the paper's definition of an "old" returned item, §V-B).
    pub fn is_old(&self) -> bool {
        self.version.is_some() && self.stats.fresher_than_returned > 0
    }
}

/// The multi-version chain of a single key, ordered newest-first under the
/// last-writer-wins order (highest update timestamp first, ties broken by lowest source
/// replica).
///
/// Insertion keeps the order and is idempotent: re-delivering the same `(update_time,
/// source_replica)` pair (e.g. a retransmitted replication message) leaves the chain
/// unchanged.
#[derive(Clone, Debug, Default)]
pub struct VersionChain {
    /// Versions ordered newest-first.
    versions: Vec<Version>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain holds no version.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Inserts a version, keeping newest-first order. Duplicate `(update_time, source
    /// replica)` pairs are ignored.
    pub fn insert(&mut self, version: Version) {
        let pos = self.versions.partition_point(|v| v.wins_over(&version));
        if let Some(existing) = self.versions.get(pos) {
            if existing.update_time == version.update_time
                && existing.source_replica == version.source_replica
            {
                return;
            }
        }
        self.versions.insert(pos, version);
    }

    /// The freshest version in the chain (the head). This is what a POCC GET returns
    /// (Algorithm 2 line 3): the version with the highest update timestamp, stable or not.
    pub fn latest(&self) -> Option<&Version> {
        self.versions.first()
    }

    /// The freshest version whose dependency vector is entry-wise `<=` the snapshot vector
    /// `tv` **and** whose own update time is covered by the snapshot entry of its source
    /// replica. This is the visible-version computation of the RO-TX slice handler
    /// (Algorithm 2 lines 43–44).
    pub fn latest_in_snapshot(&self, tv: &DependencyVector) -> LookupOutcome {
        self.lookup(|v| v.update_time <= tv.get(v.source_replica) && v.visible_under(tv))
    }

    /// The freshest version visible under Cure's pessimistic rule: versions originated at
    /// the local data center (`local` = the server's replica id) are always visible, remote
    /// versions are visible only when covered by the Globally Stable Snapshot `gss`
    /// (their source entry covers their update time and their dependency vector is
    /// entry-wise `<=` the GSS).
    pub fn latest_stable(
        &self,
        gss: &DependencyVector,
        local: pocc_types::ReplicaId,
    ) -> LookupOutcome {
        self.lookup(|v| {
            v.source_replica == local
                || (v.update_time <= gss.get(v.source_replica) && v.visible_under(gss))
        })
    }

    /// Generic newest-first lookup: returns the first (freshest) version satisfying
    /// `visible`, along with traversal and staleness statistics.
    pub fn lookup<F>(&self, visible: F) -> LookupOutcome
    where
        F: FnMut(&Version) -> bool,
    {
        lookup_newest_first(self.versions.iter(), visible)
    }

    /// Counts how many versions in the chain are **not** visible under the given predicate.
    /// Used to report the paper's "unmerged" statistics without performing a lookup.
    pub fn count_invisible<F>(&self, mut visible: F) -> usize
    where
        F: FnMut(&Version) -> bool,
    {
        self.versions.iter().filter(|v| !visible(v)).count()
    }

    /// Garbage collection (§IV-B): scanning newest-first, retain every version down to and
    /// including the first one whose dependency vector is `<=` the garbage-collection
    /// vector `gv` (the oldest version that can still be read by an active or future
    /// transaction); remove everything older. Returns the number of versions removed.
    pub fn collect(&mut self, gv: &DependencyVector) -> usize {
        let keep = self
            .versions
            .iter()
            .position(|v| v.update_time <= gv.get(v.source_replica) && v.visible_under(gv));
        match keep {
            Some(idx) if idx + 1 < self.versions.len() => {
                let removed = self.versions.len() - (idx + 1);
                self.versions.truncate(idx + 1);
                removed
            }
            _ => 0,
        }
    }

    /// Iterates the chain newest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Version> {
        self.versions.iter()
    }

    /// Builds a chain from versions already in newest-first last-writer-wins order.
    /// Used by the slab-backed shard to materialize a chain view for white-box callers.
    pub(crate) fn from_sorted(versions: Vec<Version>) -> Self {
        debug_assert!(versions
            .windows(2)
            .all(|w| w[0].wins_over(&w[1]) || w[0].lww_cmp(&w[1]) == std::cmp::Ordering::Equal));
        VersionChain { versions }
    }
}

/// Newest-first lookup over any version iterator: returns the first (freshest) version
/// satisfying `visible`, with traversal and staleness statistics. Shared by the
/// materialized [`VersionChain`] and the slab-backed shard storage, so both report the
/// paper's staleness metrics identically.
pub(crate) fn lookup_newest_first<'a, F>(
    iter: impl Iterator<Item = &'a Version>,
    mut visible: F,
) -> LookupOutcome
where
    F: FnMut(&Version) -> bool,
{
    let mut stats = ChainReadStats::default();
    let mut inspected = 0;
    for (i, v) in iter.enumerate() {
        inspected = i + 1;
        stats.traversed = inspected;
        if visible(v) {
            stats.fresher_than_returned = i;
            stats.unmerged_above = i;
            return LookupOutcome {
                version: Some(v.clone()),
                stats,
            };
        }
    }
    stats.fresher_than_returned = inspected;
    stats.unmerged_above = inspected;
    LookupOutcome {
        version: None,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pocc_types::{Key, ReplicaId, Timestamp, Value};

    fn version(ut: u64, sr: u16, deps: &[u64]) -> Version {
        Version::new(
            Key(1),
            Value::from(ut),
            ReplicaId(sr),
            Timestamp(ut),
            DependencyVector::from_entries(deps.iter().map(|&d| Timestamp(d)).collect()),
        )
    }

    fn dv(entries: &[u64]) -> DependencyVector {
        DependencyVector::from_entries(entries.iter().map(|&d| Timestamp(d)).collect())
    }

    #[test]
    fn empty_chain_returns_nothing() {
        let chain = VersionChain::new();
        assert!(chain.is_empty());
        assert!(chain.latest().is_none());
        let out = chain.latest_in_snapshot(&dv(&[100, 100, 100]));
        assert!(out.version.is_none());
        assert!(!out.is_old());
    }

    #[test]
    fn insert_keeps_newest_first_order() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 0, &[0, 0, 0]));
        chain.insert(version(30, 1, &[0, 0, 0]));
        chain.insert(version(20, 2, &[0, 0, 0]));
        let times: Vec<u64> = chain.iter().map(|v| v.update_time.as_micros()).collect();
        assert_eq!(times, vec![30, 20, 10]);
        assert_eq!(chain.latest().unwrap().update_time, Timestamp(30));
    }

    #[test]
    fn insert_is_idempotent_for_duplicates() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 0, &[0, 0, 0]));
        chain.insert(version(10, 0, &[0, 0, 0]));
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn concurrent_versions_with_equal_timestamp_order_by_replica() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 2, &[0, 0, 0]));
        chain.insert(version(10, 0, &[0, 0, 0]));
        // Lowest replica wins the tie, so it sits at the head.
        assert_eq!(chain.latest().unwrap().source_replica, ReplicaId(0));
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn snapshot_lookup_skips_versions_outside_the_snapshot() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 0, &[0, 0, 0]));
        chain.insert(version(20, 1, &[10, 0, 0]));
        chain.insert(version(30, 2, &[10, 20, 0]));
        // Snapshot covers only up to ts 20 on every replica.
        let out = chain.latest_in_snapshot(&dv(&[20, 20, 20]));
        let v = out.version.clone().unwrap();
        assert_eq!(v.update_time, Timestamp(20));
        assert!(out.is_old());
        assert_eq!(out.stats.fresher_than_returned, 1);
        assert_eq!(out.stats.traversed, 2);
    }

    #[test]
    fn snapshot_lookup_checks_own_timestamp_not_only_deps() {
        let mut chain = VersionChain::new();
        // Version with no dependencies but a timestamp beyond the snapshot: must be skipped.
        chain.insert(version(50, 1, &[0, 0, 0]));
        chain.insert(version(10, 0, &[0, 0, 0]));
        let out = chain.latest_in_snapshot(&dv(&[20, 20, 20]));
        assert_eq!(out.version.unwrap().update_time, Timestamp(10));
    }

    #[test]
    fn stable_lookup_always_sees_local_versions() {
        let local = ReplicaId(0);
        let mut chain = VersionChain::new();
        chain.insert(version(10, 1, &[0, 0, 0]));
        chain.insert(version(50, 0, &[0, 40, 0])); // local, depends on an unstable remote
        let gss = dv(&[0, 0, 0]);
        let out = chain.latest_stable(&gss, local);
        assert_eq!(out.version.clone().unwrap().update_time, Timestamp(50));
        assert!(!out.is_old());
    }

    #[test]
    fn stable_lookup_hides_unstable_remote_versions() {
        let local = ReplicaId(0);
        let mut chain = VersionChain::new();
        chain.insert(version(10, 1, &[0, 0, 0]));
        chain.insert(version(50, 1, &[0, 40, 0]));
        chain.insert(version(60, 2, &[0, 50, 0]));
        // GSS has seen everything from replica 1 up to 10 only.
        let gss = dv(&[0, 10, 0]);
        let out = chain.latest_stable(&gss, local);
        let v = out.version.clone().unwrap();
        assert_eq!(v.update_time, Timestamp(10));
        assert!(out.is_old());
        assert_eq!(out.stats.fresher_than_returned, 2);
    }

    #[test]
    fn lookup_outcome_reports_none_when_nothing_visible() {
        let mut chain = VersionChain::new();
        chain.insert(version(50, 1, &[0, 40, 0]));
        let out = chain.latest_stable(&dv(&[0, 0, 0]), ReplicaId(0));
        assert!(out.version.is_none());
        assert_eq!(out.stats.fresher_than_returned, 1);
    }

    #[test]
    fn count_invisible_counts_unstable_versions() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 1, &[0, 0, 0]));
        chain.insert(version(50, 1, &[0, 40, 0]));
        let gss = dv(&[0, 10, 0]);
        let n = chain.count_invisible(|v| {
            v.update_time <= gss.get(v.source_replica) && v.visible_under(&gss)
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn gc_keeps_versions_down_to_the_first_covered_one() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 0, &[0, 0, 0]));
        chain.insert(version(20, 0, &[10, 0, 0]));
        chain.insert(version(30, 0, &[20, 0, 0]));
        chain.insert(version(40, 0, &[30, 0, 0]));
        // GC vector covers up to 25: the first covered version (newest-first) is ts 20.
        let removed = chain.collect(&dv(&[25, 0, 0]));
        assert_eq!(removed, 1); // only ts 10 dropped
        let times: Vec<u64> = chain.iter().map(|v| v.update_time.as_micros()).collect();
        assert_eq!(times, vec![40, 30, 20]);
    }

    #[test]
    fn gc_is_a_noop_when_nothing_is_covered_or_chain_is_short() {
        let mut chain = VersionChain::new();
        chain.insert(version(40, 0, &[30, 0, 0]));
        assert_eq!(chain.collect(&dv(&[0, 0, 0])), 0);
        assert_eq!(chain.collect(&dv(&[100, 100, 100])), 0);
        assert_eq!(chain.len(), 1);
    }

    #[test]
    fn gc_never_empties_a_chain_with_a_covered_version() {
        let mut chain = VersionChain::new();
        chain.insert(version(10, 0, &[0, 0, 0]));
        chain.insert(version(20, 0, &[10, 0, 0]));
        chain.collect(&dv(&[100, 100, 100]));
        // The newest covered version is the head itself; nothing below it is retained.
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.latest().unwrap().update_time, Timestamp(20));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pocc_types::{Key, ReplicaId, Timestamp, Value};
    use proptest::prelude::*;

    fn arb_version() -> impl Strategy<Value = Version> {
        (
            0u64..1_000,
            0u16..3,
            proptest::collection::vec(0u64..1_000, 3),
        )
            .prop_map(|(ut, sr, deps)| {
                Version::new(
                    Key(7),
                    Value::from(ut),
                    ReplicaId(sr),
                    Timestamp(ut),
                    DependencyVector::from_entries(deps.into_iter().map(Timestamp).collect()),
                )
            })
    }

    proptest! {
        #[test]
        fn prop_chain_is_always_sorted_newest_first(vs in proptest::collection::vec(arb_version(), 0..50)) {
            let mut chain = VersionChain::new();
            for v in vs {
                chain.insert(v);
            }
            let collected: Vec<&Version> = chain.iter().collect();
            for w in collected.windows(2) {
                prop_assert!(w[0].wins_over(w[1]) || w[0].lww_cmp(w[1]) == std::cmp::Ordering::Equal);
            }
        }

        #[test]
        fn prop_latest_wins_over_every_other_version(vs in proptest::collection::vec(arb_version(), 1..50)) {
            let mut chain = VersionChain::new();
            for v in vs {
                chain.insert(v);
            }
            let head = chain.latest().unwrap();
            for v in chain.iter().skip(1) {
                prop_assert!(!v.wins_over(head));
            }
        }

        #[test]
        fn prop_insert_idempotent(vs in proptest::collection::vec(arb_version(), 0..30)) {
            let mut once = VersionChain::new();
            let mut twice = VersionChain::new();
            for v in &vs {
                once.insert(v.clone());
                twice.insert(v.clone());
                twice.insert(v.clone());
            }
            prop_assert_eq!(once.len(), twice.len());
        }

        #[test]
        fn prop_snapshot_lookup_result_is_visible_and_freshest(
            vs in proptest::collection::vec(arb_version(), 0..40),
            tv in proptest::collection::vec(0u64..1_000, 3),
        ) {
            let tv = DependencyVector::from_entries(tv.into_iter().map(Timestamp).collect());
            let mut chain = VersionChain::new();
            for v in vs {
                chain.insert(v);
            }
            let out = chain.latest_in_snapshot(&tv);
            if let Some(found) = &out.version {
                prop_assert!(found.visible_under(&tv));
                prop_assert!(found.update_time <= tv.get(found.source_replica));
                // No fresher visible version exists.
                for v in chain.iter() {
                    if v.wins_over(found) {
                        prop_assert!(
                            !(v.visible_under(&tv) && v.update_time <= tv.get(v.source_replica))
                        );
                    }
                }
            } else {
                for v in chain.iter() {
                    prop_assert!(
                        !(v.visible_under(&tv) && v.update_time <= tv.get(v.source_replica))
                    );
                }
            }
        }

        #[test]
        fn prop_gc_preserves_the_head_and_visibility(
            vs in proptest::collection::vec(arb_version(), 1..40),
            gv in proptest::collection::vec(0u64..1_000, 3),
        ) {
            let gv = DependencyVector::from_entries(gv.into_iter().map(Timestamp).collect());
            let mut chain = VersionChain::new();
            for v in vs {
                chain.insert(v);
            }
            let head_before = chain.latest().cloned();
            let visible_before = chain.latest_in_snapshot(&gv).version;
            chain.collect(&gv);
            prop_assert_eq!(chain.latest().cloned(), head_before);
            // GC never removes the version a transaction running at exactly GV would read.
            prop_assert_eq!(chain.latest_in_snapshot(&gv).version, visible_before);
        }
    }
}
