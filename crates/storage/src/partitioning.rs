//! Deterministic assignment of keys to partitions and of a partition's keys to shards.

use pocc_types::{Key, PartitionId};

/// Maps a key to the partition that owns it.
///
/// The paper's system model (§II-C) assigns each key to a single partition with a hash
/// function. We use the 64-bit finalizer of SplitMix64, which mixes all input bits into
/// the output so that dense key spaces (0, 1, 2, …) spread uniformly across partitions —
/// the workload generator allocates keys densely per partition.
pub fn partition_for_key(key: Key, num_partitions: usize) -> PartitionId {
    assert!(
        num_partitions > 0,
        "a deployment has at least one partition"
    );
    let mut z = key.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    PartitionId::from((z % num_partitions as u64) as usize)
}

/// Maps a key to the shard that stores it inside its partition's
/// [`crate::ShardedStore`].
///
/// Shard routing must be independent of [`partition_for_key`]: every key reaching a
/// store already hashed to the *same* partition, so reusing the partition hash would
/// correlate with the earlier `mod num_partitions` and skew the shard distribution. A
/// second finalizer round (Murmur3's, with different constants than the SplitMix64 round
/// above) re-mixes the bits before taking the shard index.
pub fn shard_for_key(key: Key, num_shards: usize) -> usize {
    assert!(num_shards > 0, "a store has at least one shard");
    let mut z = key.raw() ^ 0xA24B_AED4_963E_E407;
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^= z >> 33;
    (z % num_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic() {
        for k in 0..100u64 {
            assert_eq!(partition_for_key(Key(k), 32), partition_for_key(Key(k), 32));
        }
    }

    #[test]
    fn assignment_is_within_bounds() {
        for k in 0..10_000u64 {
            let p = partition_for_key(Key(k), 7);
            assert!(p.index() < 7);
        }
    }

    #[test]
    fn single_partition_gets_everything() {
        for k in 0..100u64 {
            assert_eq!(partition_for_key(Key(k), 1), PartitionId(0));
        }
    }

    #[test]
    fn dense_keys_spread_roughly_uniformly() {
        let n = 32usize;
        let total = 32_000u64;
        let mut counts = vec![0usize; n];
        for k in 0..total {
            counts[partition_for_key(Key(k), n).index()] += 1;
        }
        let expected = total as usize / n;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expected as i64).unsigned_abs() < (expected / 2) as u64,
                "partition {i} got {c} keys, expected about {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_is_a_programming_error() {
        partition_for_key(Key(1), 0);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_within_bounds() {
        for k in 0..1_000u64 {
            let s = shard_for_key(Key(k), 8);
            assert_eq!(s, shard_for_key(Key(k), 8));
            assert!(s < 8);
        }
        assert_eq!(shard_for_key(Key(7), 1), 0);
    }

    #[test]
    fn shards_spread_evenly_within_one_partition() {
        // The realistic setting: all keys of one partition of a 32-way deployment routed
        // across 8 shards. This is exactly where reusing the partition hash would skew.
        let num_partitions = 32;
        let num_shards = 8;
        let mut counts = vec![0usize; num_shards];
        let mut total = 0usize;
        for k in 0..320_000u64 {
            if partition_for_key(Key(k), num_partitions).index() == 0 {
                counts[shard_for_key(Key(k), num_shards)] += 1;
                total += 1;
            }
        }
        let expected = total / num_shards;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expected as i64).unsigned_abs() < (expected / 2) as u64,
                "shard {i} got {c} keys, expected about {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_a_programming_error_in_routing() {
        shard_for_key(Key(1), 0);
    }
}
