//! Property tests: a sharded store is observationally equivalent to the original
//! single-map store, and key routing is stable.
//!
//! The sharding refactor must be invisible to the protocols: for any write sequence, a
//! store with `N` shards answers every read, statistic and GC query exactly like the
//! single-shard store (which is the original one-`HashMap` implementation). These tests
//! drive both configurations with identical random write/GC sequences and compare every
//! observable surface.

use pocc_storage::{partition_for_key, shard_for_key, ShardedStore};
use pocc_types::{DependencyVector, Key, PartitionId, ReplicaId, Timestamp, Value, Version};
use proptest::prelude::*;

const REPLICAS: usize = 3;

fn dv(entries: Vec<u64>) -> DependencyVector {
    DependencyVector::from_entries(entries.into_iter().map(Timestamp).collect())
}

fn arb_version() -> impl Strategy<Value = Version> {
    (
        0u64..64,
        1u64..1_000,
        0u16..REPLICAS as u16,
        proptest::collection::vec(0u64..1_000, REPLICAS),
    )
        .prop_map(|(key, ut, sr, deps)| {
            Version::new(
                Key(key),
                Value::from(ut),
                ReplicaId(sr),
                Timestamp(ut),
                dv(deps),
            )
        })
}

fn arb_vector() -> impl Strategy<Value = DependencyVector> {
    proptest::collection::vec(0u64..1_000, REPLICAS).prop_map(dv)
}

/// Builds one single-shard and one `shards`-shard store and applies the same writes.
fn build_pair(writes: &[Version], shards: usize) -> (ShardedStore, ShardedStore) {
    let single = ShardedStore::new(PartitionId(0), 1);
    let sharded = ShardedStore::with_shards(PartitionId(0), 1, shards);
    for v in writes {
        single
            .insert(v.clone())
            .expect("partition 0 owns every key");
        sharded
            .insert(v.clone())
            .expect("partition 0 owns every key");
    }
    (single, sharded)
}

proptest! {
    #[test]
    fn reads_are_equivalent_after_identical_writes(
        writes in proptest::collection::vec(arb_version(), 0..80),
        shards in 2usize..9,
        tv in arb_vector(),
    ) {
        let (single, sharded) = build_pair(&writes, shards);

        for key in (0u64..64).map(Key) {
            // Head reads (POCC GET).
            prop_assert_eq!(single.latest(key), sharded.latest(key));
            // Snapshot reads (RO-TX slices), including the traversal statistics the
            // evaluation reports.
            let a = single.latest_in_snapshot(key, &tv);
            let b = sharded.latest_in_snapshot(key, &tv);
            prop_assert_eq!(a.version, b.version);
            prop_assert_eq!(a.stats, b.stats);
            // Stable reads (Cure* GET) and unmerged accounting.
            for local in (0..REPLICAS as u16).map(ReplicaId) {
                let a = single.latest_stable(key, &tv, local);
                let b = sharded.latest_stable(key, &tv, local);
                prop_assert_eq!(a.version, b.version);
                prop_assert_eq!(a.stats, b.stats);
                prop_assert_eq!(
                    single.unmerged_count(key, &tv, local),
                    sharded.unmerged_count(key, &tv, local)
                );
            }
        }
        prop_assert_eq!(single.digest(), sharded.digest());
        prop_assert_eq!(single.stats(), sharded.stats());
    }

    #[test]
    fn garbage_collection_is_equivalent(
        writes in proptest::collection::vec(arb_version(), 0..80),
        shards in 2usize..9,
        gvs in proptest::collection::vec(arb_vector(), 1..4),
    ) {
        let (single, sharded) = build_pair(&writes, shards);
        for gv in &gvs {
            prop_assert_eq!(single.collect_garbage(gv), sharded.collect_garbage(gv));
            prop_assert_eq!(single.stats(), sharded.stats());
            prop_assert_eq!(single.digest(), sharded.digest());
        }
        // Chains are identical version-by-version after GC, not just at the head.
        for key in (0u64..64).map(Key) {
            let a: Vec<_> = single.chain(key).map(|c| c.iter().cloned().collect()).unwrap_or_default();
            let b: Vec<_> = sharded.chain(key).map(|c| c.iter().cloned().collect()).unwrap_or_default();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn shard_routing_is_total_and_consistent(key in proptest::prelude::any::<u64>(), shards in 1usize..17) {
        let s = shard_for_key(Key(key), shards);
        prop_assert!(s < shards);
        prop_assert_eq!(s, shard_for_key(Key(key), shards));
    }
}

/// Routing stability: these values are load-bearing (replicas of the same partition must
/// agree on key placement across versions of this code), so changes to the hash
/// functions must be deliberate and show up as a failing test.
#[test]
fn routing_golden_values_are_stable() {
    let partitions: Vec<usize> = (0..8u64)
        .map(|k| partition_for_key(Key(k), 32).index())
        .collect();
    assert_eq!(partitions, vec![15, 1, 14, 13, 10, 26, 0, 23]);

    let shards: Vec<usize> = (0..8u64).map(|k| shard_for_key(Key(k), 8)).collect();
    assert_eq!(shards, vec![0, 6, 7, 1, 2, 4, 1, 1]);
}

/// A store keeps working through interleaved writes and GC passes with many shards, and
/// per-shard statistics always sum to the aggregate.
#[test]
fn shard_stats_always_sum_to_aggregate() {
    let store = ShardedStore::with_shards(PartitionId(0), 1, 8);
    for k in 0..512u64 {
        for round in 0..3u64 {
            store
                .insert(Version::new(
                    Key(k),
                    Value::from(round),
                    ReplicaId((k % 3) as u16),
                    Timestamp(10 + round * 10),
                    dv(vec![round * 10, 0, 0]),
                ))
                .unwrap();
        }
    }
    store.collect_garbage(&dv(vec![15, 15, 15]));

    let total = store.stats();
    let per_shard = store.shard_stats();
    assert_eq!(per_shard.iter().map(|s| s.keys).sum::<usize>(), total.keys);
    assert_eq!(
        per_shard.iter().map(|s| s.versions).sum::<usize>(),
        total.versions
    );
    assert_eq!(
        per_shard.iter().map(|s| s.gc_removed).sum::<usize>(),
        total.gc_removed
    );
    assert_eq!(
        per_shard.iter().map(|s| s.max_chain_len).max().unwrap(),
        total.max_chain_len
    );
}
