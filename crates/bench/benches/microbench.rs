//! Criterion micro-benchmarks of the building blocks: dependency-vector algebra, the wire
//! codec, and version-chain operations. These quantify the per-operation metadata cost the
//! paper argues is small (linear in the number of data centers).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pocc_proto::codec;
use pocc_proto::ClientRequest;
use pocc_storage::VersionChain;
use pocc_types::{DependencyVector, Key, ReplicaId, Timestamp, Value, Version, VersionVector};

fn bench_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_vector");
    for &m in &[3usize, 8, 16] {
        let a = DependencyVector::from_entries((0..m as u64).map(Timestamp).collect());
        let b = DependencyVector::from_entries((0..m as u64).rev().map(Timestamp).collect());
        group.bench_with_input(BenchmarkId::new("join", m), &m, |bench, _| {
            bench.iter(|| black_box(a.joined(&b)))
        });
        let vv = VersionVector::from_entries((0..m as u64).map(Timestamp).collect());
        group.bench_with_input(BenchmarkId::new("covers", m), &m, |bench, _| {
            bench.iter(|| black_box(vv.covers_dependencies_except_local(&a, ReplicaId(0))))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let get = ClientRequest::Get {
        key: Key(42),
        rdv: DependencyVector::from_entries(vec![Timestamp(1), Timestamp(2), Timestamp(3)]),
    };
    let put = ClientRequest::Put {
        key: Key(42),
        value: Value::from(7u64),
        dv: DependencyVector::from_entries(vec![Timestamp(1), Timestamp(2), Timestamp(3)]),
    };
    group.bench_function("encode_get", |b| b.iter(|| black_box(codec::encode_request(&get))));
    group.bench_function("encode_put", |b| b.iter(|| black_box(codec::encode_request(&put))));
    let encoded = codec::encode_request(&put);
    group.bench_function("decode_put", |b| {
        b.iter(|| black_box(codec::decode_request(encoded.clone()).unwrap()))
    });
    group.finish();
}

fn bench_version_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_chain");
    let deps = |ts: u64| DependencyVector::from_entries(vec![Timestamp(ts), Timestamp(0), Timestamp(0)]);
    let mk = |ts: u64| {
        Version::new(
            Key(1),
            Value::from(ts),
            ReplicaId((ts % 3) as u16),
            Timestamp(ts),
            deps(ts.saturating_sub(1)),
        )
    };
    for &len in &[4usize, 32, 128] {
        let mut chain = VersionChain::new();
        for i in 0..len as u64 {
            chain.insert(mk(i + 1));
        }
        group.bench_with_input(BenchmarkId::new("latest", len), &len, |b, _| {
            b.iter(|| black_box(chain.latest().cloned()))
        });
        // A snapshot in the middle of the chain forces a traversal (the Cure*-style cost).
        let tv = DependencyVector::from_entries(vec![
            Timestamp(len as u64 / 2),
            Timestamp(len as u64 / 2),
            Timestamp(len as u64 / 2),
        ]);
        group.bench_with_input(BenchmarkId::new("latest_in_snapshot", len), &len, |b, _| {
            b.iter(|| black_box(chain.latest_in_snapshot(&tv)))
        });
        group.bench_with_input(BenchmarkId::new("insert", len), &len, |b, _| {
            b.iter_batched(
                || chain.clone(),
                |mut chain| chain.insert(mk(len as u64 + 2)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vectors, bench_codec, bench_version_chain);
criterion_main!(benches);
