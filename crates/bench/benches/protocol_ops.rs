//! Criterion benchmarks of the protocol hot paths: serving a GET and a PUT on a POCC and
//! a Cure\* server. This is the per-operation CPU cost difference ("resource efficiency")
//! that underlies the throughput comparisons of the paper's evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pocc_clock::ManualClock;
use pocc_cure::CureServer;
use pocc_proto::{ClientRequest, ProtocolServer};
use pocc_protocol::PoccServer;
use pocc_storage::partition_for_key;
use pocc_types::{
    ClientId, Config, DependencyVector, Key, ServerId, Timestamp, Value,
};

fn key_for_partition_zero(num_partitions: usize) -> Key {
    (0u64..)
        .map(Key)
        .find(|k| partition_for_key(*k, num_partitions).index() == 0)
        .unwrap()
}

fn config() -> Config {
    Config::builder()
        .num_replicas(3)
        .num_partitions(1)
        .build()
        .unwrap()
}

fn bench_pocc_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("pocc_server");
    let cfg = config();
    let key = key_for_partition_zero(1);
    let clock = ManualClock::new(Timestamp::from_millis(10));
    let mut server = PoccServer::new(ServerId::new(0u16, 0u32), cfg.clone(), clock.clone());
    // Seed one version so GETs return data.
    server.handle_client_request(
        ClientId(0),
        ClientRequest::Put {
            key,
            value: Value::from(1u64),
            dv: DependencyVector::zero(3),
        },
    );

    group.bench_function("get", |b| {
        b.iter(|| {
            black_box(server.handle_client_request(
                ClientId(1),
                ClientRequest::Get {
                    key,
                    rdv: DependencyVector::zero(3),
                },
            ))
        })
    });
    let mut t = 10_000u64;
    group.bench_function("put", |b| {
        b.iter(|| {
            t += 1;
            clock.set(Timestamp::from_millis(t));
            black_box(server.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(t),
                    dv: DependencyVector::zero(3),
                },
            ))
        })
    });
    group.finish();
}

fn bench_cure_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cure_server");
    let cfg = config();
    let key = key_for_partition_zero(1);
    let clock = ManualClock::new(Timestamp::from_millis(10));
    let mut server = CureServer::new(ServerId::new(0u16, 0u32), cfg.clone(), clock.clone());
    server.handle_client_request(
        ClientId(0),
        ClientRequest::Put {
            key,
            value: Value::from(1u64),
            dv: DependencyVector::zero(3),
        },
    );

    group.bench_function("get", |b| {
        b.iter(|| {
            black_box(server.handle_client_request(
                ClientId(1),
                ClientRequest::Get {
                    key,
                    rdv: DependencyVector::zero(3),
                },
            ))
        })
    });
    let mut t = 10_000u64;
    group.bench_function("put", |b| {
        b.iter(|| {
            t += 1;
            clock.set(Timestamp::from_millis(t));
            black_box(server.handle_client_request(
                ClientId(1),
                ClientRequest::Put {
                    key,
                    value: Value::from(t),
                    dv: DependencyVector::zero(3),
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pocc_ops, bench_cure_ops);
criterion_main!(benches);
