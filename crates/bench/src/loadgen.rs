//! The open-loop load generator: wall-clock benchmarking of the cluster runtime.
//!
//! Unlike the closed-loop simulator clients (which wait for each reply before thinking
//! about the next request), the load generator issues requests on a *fixed arrival
//! schedule* computed before the run starts. Every operation has an **intended start
//! time**; its reported latency is `completion − intended start`, not `completion −
//! actual send`. When the system falls behind, queueing delay is therefore charged to
//! the operations that suffered it — the classic fix for coordinated omission.
//!
//! Each connection is one OS thread owning one transport port ([`Cluster::open_port`])
//! and one client session, pinned to a single home server so the per-connection reply
//! stream is FIFO and replies can be matched to in-flight operations by order. Up to
//! `pipeline` operations are outstanding per connection; when the pipeline is full,
//! sends are deferred but intended timestamps are not — the deferral shows up as
//! latency, as it should.
//!
//! Three arrival shapes are registered ([`scenarios`]):
//!
//! * `steady` — a constant aggregate rate, split evenly across connections;
//! * `burst` — alternating quiet and burst phases (4× the base rate one quarter of the
//!   time, same average rate as `steady`), exercising the transport's write coalescing
//!   and the coordinated-omission accounting;
//! * `churn` — the steady schedule, but every connection periodically drains its
//!   pipeline, drops its socket and session, and reconnects as a fresh client.
//!
//! The result is folded into the same [`ScenarioReport`] → `BENCH_<name>.json` pipeline
//! as the simulator scenarios, so the schema validator, `compare_bench`, and CI artifact
//! handling apply unchanged.

use crate::scenarios::{PointResult, ScenarioReport, SEED};
use crate::Scale;
use pocc_protocol::{Client, ProtocolClient};
use pocc_runtime::{ClientPort, Cluster, RuntimeProtocol, TransportKind};
use pocc_sim::{LatencyStats, ProtocolKind, SimConfig, SimReport};
use pocc_storage::{ShardStats, StoreStats};
use pocc_types::{Config, Key, LatencyMatrix, PartitionId, ServerId, Value};
use pocc_workload::KeySpace;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------------------

/// The arrival-schedule shape of a load scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    /// Constant rate.
    Steady,
    /// Alternating quiet/burst phases averaging the target rate.
    Burst,
    /// Constant rate with periodic reconnects (new socket, new session).
    Churn,
}

/// A named load-generator scenario (`loadgen --scenario <name>`).
pub struct LoadScenario {
    /// The registry name (also the `BENCH_<name>.json` stem).
    pub name: &'static str,
    /// One-line description for `--list` output and the report title.
    pub title: &'static str,
    shape: Shape,
}

/// Every registered load scenario.
pub fn scenarios() -> &'static [LoadScenario] {
    &[
        LoadScenario {
            name: "loadgen_steady",
            title: "open-loop fixed-rate load through the cluster runtime",
            shape: Shape::Steady,
        },
        LoadScenario {
            name: "loadgen_burst",
            title: "open-loop bursty load (4x rate bursts, 25% duty cycle)",
            shape: Shape::Burst,
        },
        LoadScenario {
            name: "loadgen_churn",
            title: "open-loop fixed-rate load with periodic connection churn",
            shape: Shape::Churn,
        },
    ]
}

/// Looks a scenario up by name (`loadgen_` prefix optional).
pub fn find_scenario(name: &str) -> Option<&'static LoadScenario> {
    scenarios()
        .iter()
        .find(|s| s.name == name || s.name.strip_prefix("loadgen_") == Some(name))
}

/// Parses a runtime protocol name for `--protocol`.
pub fn parse_protocol(name: &str) -> Option<RuntimeProtocol> {
    match name.to_ascii_lowercase().as_str() {
        "pocc" => Some(RuntimeProtocol::Pocc),
        "cure" => Some(RuntimeProtocol::Cure),
        "hapocc" | "ha-pocc" | "ha_pocc" => Some(RuntimeProtocol::HaPocc),
        "adaptive" => Some(RuntimeProtocol::Adaptive),
        _ => None,
    }
}

/// The registered protocol names, for error messages.
pub fn protocol_names() -> &'static [&'static str] {
    &["pocc", "cure", "hapocc", "adaptive"]
}

fn protocol_kind(protocol: RuntimeProtocol) -> ProtocolKind {
    match protocol {
        RuntimeProtocol::Pocc => ProtocolKind::Pocc,
        RuntimeProtocol::Cure => ProtocolKind::Cure,
        RuntimeProtocol::HaPocc => ProtocolKind::HaPocc,
        RuntimeProtocol::Adaptive => ProtocolKind::Adaptive,
    }
}

fn protocol_label(protocol: RuntimeProtocol) -> &'static str {
    match protocol {
        RuntimeProtocol::Pocc => "pocc",
        RuntimeProtocol::Cure => "cure",
        RuntimeProtocol::HaPocc => "hapocc",
        RuntimeProtocol::Adaptive => "adaptive",
    }
}

// ---------------------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------------------

/// A fully-specified load-generator run.
pub struct LoadOptions {
    /// The arrival-schedule scenario.
    pub scenario: &'static LoadScenario,
    /// The transport backend the cluster runs on.
    pub transport: TransportKind,
    /// The protocol under load.
    pub protocol: RuntimeProtocol,
    /// The scale label recorded in the report.
    pub scale: Scale,
    /// Number of data centers.
    pub replicas: usize,
    /// Number of partitions per data center.
    pub partitions: usize,
    /// Number of concurrent connections (threads); spread round-robin over all servers.
    pub conns: usize,
    /// Maximum in-flight operations per connection.
    pub pipeline: usize,
    /// Target aggregate arrival rate, operations per second.
    pub rate: f64,
    /// Warm-up: operations whose intended start falls in this window are not recorded.
    pub warmup: Duration,
    /// Measured window: the schedule covers `warmup + duration`.
    pub duration: Duration,
    /// GETs per PUT in the generated stream.
    pub gets_per_put: u32,
    /// Payload size of generated PUT values, in bytes.
    pub value_size: usize,
    /// Keys per partition (uniform popularity — the generator stresses the transport,
    /// not the cache hierarchy).
    pub keys_per_partition: u64,
    /// For the churn scenario: reconnect after this many operations per connection.
    pub churn_every: u64,
}

impl LoadOptions {
    /// Defaults sized for the CI smoke gate: a 2-DC deployment driven hard enough to
    /// exercise batching, finishing in a few seconds.
    pub fn smoke(scenario: &'static LoadScenario) -> LoadOptions {
        LoadOptions {
            scenario,
            transport: TransportKind::Tcp,
            protocol: RuntimeProtocol::Pocc,
            scale: Scale::Smoke,
            replicas: 2,
            partitions: 2,
            conns: 8,
            pipeline: 32,
            rate: 60_000.0,
            warmup: Duration::from_millis(300),
            duration: Duration::from_secs(2),
            gets_per_put: 4,
            value_size: 64,
            keys_per_partition: 500,
            churn_every: 2_000,
        }
    }
}

// ---------------------------------------------------------------------------------------
// Arrival schedules
// ---------------------------------------------------------------------------------------

/// Intended start offsets (from run start) for one connection.
fn build_schedule(shape: Shape, conn_rate: f64, total: Duration) -> Vec<Duration> {
    assert!(conn_rate > 0.0, "per-connection rate must be positive");
    let mut schedule = Vec::with_capacity((conn_rate * total.as_secs_f64()) as usize + 1);
    let mut t = 0.0f64;
    let end = total.as_secs_f64();
    while t < end {
        schedule.push(Duration::from_secs_f64(t));
        let rate = match shape {
            Shape::Steady | Shape::Churn => conn_rate,
            Shape::Burst => {
                // 200 ms period: 150 ms at half rate, 50 ms at 2.5x — averages 1x.
                let phase = t % 0.2;
                if phase < 0.15 {
                    conn_rate * 0.5
                } else {
                    conn_rate * 2.5
                }
            }
        };
        t += 1.0 / rate;
    }
    schedule
}

// ---------------------------------------------------------------------------------------
// Per-connection driver
// ---------------------------------------------------------------------------------------

/// What one connection measured.
struct ConnResult {
    all: LatencyStats,
    get: LatencyStats,
    put: LatencyStats,
    measured_ops: u64,
    measured_gets: u64,
    measured_puts: u64,
    reinitialized: u64,
    reconnects: u64,
    /// Operations abandoned because the run deadline passed without a reply.
    lost: u64,
    /// Offset (from run start) of the last reply, for the achieved-window computation.
    last_reply: Duration,
}

impl ConnResult {
    fn new() -> ConnResult {
        ConnResult {
            all: LatencyStats::new(),
            get: LatencyStats::new(),
            put: LatencyStats::new(),
            measured_ops: 0,
            measured_gets: 0,
            measured_puts: 0,
            reinitialized: 0,
            reconnects: 0,
            lost: 0,
            last_reply: Duration::ZERO,
        }
    }
}

struct ConnDriver<'a> {
    cluster: &'a Cluster,
    home: ServerId,
    snapshot_reads: bool,
    session: Client,
    port: Box<dyn ClientPort>,
    /// Intended start offsets, warmup included.
    schedule: &'a [Duration],
    start: Instant,
    warmup: Duration,
    pipeline: usize,
    /// Reconnect after this many sends (`None` outside the churn scenario).
    churn_every: Option<u64>,
    /// FIFO of in-flight operations: (intended start, is_put).
    inflight: VecDeque<(Duration, bool)>,
    keys: Vec<Key>,
    value: Value,
    gets_per_put: u32,
    result: ConnResult,
}

impl<'a> ConnDriver<'a> {
    /// Deterministic per-connection operation stream: operation `i` is a PUT every
    /// `gets_per_put + 1` slots, on a key chosen by a multiplicative hash of `i`.
    fn op(&self, i: usize) -> (Key, bool) {
        let h = (i as u64)
            .wrapping_add(SEED)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let key = self.keys[(h % self.keys.len() as u64) as usize];
        let is_put = (i as u64).is_multiple_of(self.gets_per_put as u64 + 1);
        (key, is_put)
    }

    fn reconnect(&mut self) {
        let (id, port) = self.cluster.open_port();
        self.session = if self.snapshot_reads {
            Client::new_snapshot_reads(id, self.home, self.cluster.config().num_replicas)
        } else {
            Client::new(id, self.home, self.cluster.config().num_replicas)
        };
        // Dropping the old port closes the socket / unregisters the reply route.
        self.port = port;
        self.result.reconnects += 1;
    }

    fn on_reply(&mut self, reply: pocc_proto::ClientReply, now: Duration) {
        let (intended, is_put) = self
            .inflight
            .pop_front()
            .expect("a reply implies an in-flight operation (FIFO per connection)");
        self.result.last_reply = now;
        match self.session.process_reply(&reply) {
            Ok(()) => {
                if intended >= self.warmup {
                    let latency = now.saturating_sub(intended);
                    self.result.all.record(latency);
                    self.result.measured_ops += 1;
                    if is_put {
                        self.result.put.record(latency);
                        self.result.measured_puts += 1;
                    } else {
                        self.result.get.record(latency);
                        self.result.measured_gets += 1;
                    }
                }
            }
            Err(_) => {
                // Session aborted by the server: re-initialise, as §III-B prescribes.
                self.session.reinitialize();
                self.result.reinitialized += 1;
            }
        }
    }

    fn run(mut self) -> ConnResult {
        let deadline = *self.schedule.last().unwrap() + Duration::from_secs(10);
        let mut sent = 0usize;
        let mut done = 0usize;
        // Operations sent since the last (re)connect, for the churn scenario.
        let mut since_reconnect = 0u64;
        while done < self.schedule.len() {
            let now = self.start.elapsed();
            if now > deadline {
                self.result.lost += (self.schedule.len() - done) as u64;
                break;
            }

            // A churn boundary reconnects only once the pipeline is drained, so no
            // in-flight reply is orphaned on the closed socket.
            let churn_due = self
                .churn_every
                .map(|every| since_reconnect >= every && sent < self.schedule.len())
                .unwrap_or(false);
            if churn_due {
                if self.inflight.is_empty() {
                    self.reconnect();
                    since_reconnect = 0;
                }
                // Draining: fall through to the receive side without sending.
            } else {
                // Send every operation that is due, up to the pipeline window. Intended
                // timestamps come from the schedule regardless of when the send happens.
                while sent < self.schedule.len()
                    && self.schedule[sent] <= now
                    && self.inflight.len() < self.pipeline
                {
                    let (key, is_put) = self.op(sent);
                    let request = if is_put {
                        self.session.put(key, self.value.clone())
                    } else {
                        self.session.get(key)
                    };
                    if self.port.submit(self.home, request).is_ok() {
                        self.inflight.push_back((self.schedule[sent], is_put));
                    } else {
                        // Broken socket: this operation and every in-flight reply are
                        // gone. Reconnect and move on.
                        self.result.lost += self.inflight.len() as u64 + 1;
                        done += self.inflight.len() + 1;
                        self.inflight.clear();
                        self.reconnect();
                        since_reconnect = 0;
                    }
                    sent += 1;
                    since_reconnect += 1;
                    if self
                        .churn_every
                        .map(|every| since_reconnect >= every)
                        .unwrap_or(false)
                    {
                        break;
                    }
                }
            }

            // Wait for a reply until the next send is due (capped so a quiet schedule
            // still polls the pipeline at least once a millisecond).
            let until_next = if sent < self.schedule.len() && self.inflight.len() < self.pipeline {
                self.schedule[sent].saturating_sub(now)
            } else {
                Duration::from_millis(1)
            };
            let timeout = until_next.min(Duration::from_millis(1));
            // On timeout, loop around and send what is due.
            if let Ok(reply) = self.port.recv_timeout(timeout) {
                self.on_reply(reply, self.start.elapsed());
                done += 1;
                // Drain whatever else is already queued before going back to sending.
                while done < self.schedule.len() {
                    match self.port.recv_timeout(Duration::ZERO) {
                        Ok(reply) => {
                            self.on_reply(reply, self.start.elapsed());
                            done += 1;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        self.result
    }
}

// ---------------------------------------------------------------------------------------
// The run: cluster + threads + report assembly
// ---------------------------------------------------------------------------------------

fn convergence_digests_agree(cluster: &Cluster) -> bool {
    let probes = cluster.probe_all();
    let config = cluster.config();
    for p in 0..config.num_partitions {
        let partition: Vec<_> = probes
            .iter()
            .filter(|(id, _)| id.partition == PartitionId(p as u32))
            .collect();
        if partition.windows(2).any(|w| w[0].1.digest != w[1].1.digest) {
            return false;
        }
    }
    true
}

/// Runs one load-generator point and folds the measurements into a [`ScenarioReport`]
/// (single point, `x` = target aggregate rate) that passes the BENCH schema validator.
pub fn run(options: &LoadOptions) -> ScenarioReport {
    assert!(options.replicas >= 1 && options.partitions >= 1);
    assert!(options.conns >= 1 && options.pipeline >= 1);

    let deployment = Config::builder()
        .num_replicas(options.replicas)
        .num_partitions(options.partitions)
        .latency(LatencyMatrix::uniform(
            options.replicas,
            Duration::from_micros(100),
            Duration::from_millis(5),
        ))
        .build()
        .expect("load-generator deployment is valid");

    let cluster = Cluster::builder()
        .config(deployment.clone())
        .protocol(options.protocol)
        .transport(options.transport)
        .start();

    let snapshot_reads = matches!(
        options.protocol,
        RuntimeProtocol::Cure | RuntimeProtocol::Adaptive
    );
    let keyspace = KeySpace::new(options.partitions, options.keys_per_partition);
    let servers: Vec<ServerId> = deployment.servers().collect();
    let conn_rate = options.rate / options.conns as f64;
    let total = options.warmup + options.duration;
    let churn_every = match options.scenario.shape {
        Shape::Churn => Some(options.churn_every),
        _ => None,
    };

    // Schedules are built before the clock starts: the arrival process is fixed
    // up front, which is what makes the latency capture coordinated-omission-safe.
    let schedules: Vec<Vec<Duration>> = (0..options.conns)
        .map(|_| build_schedule(options.scenario.shape, conn_rate, total))
        .collect();
    let value = Value::from(vec![0x5A_u8; options.value_size]);
    let start = Instant::now();

    let cluster = Arc::new(cluster);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .enumerate()
            .map(|(c, schedule)| {
                let home = servers[c % servers.len()];
                let cluster = Arc::clone(&cluster);
                let value = value.clone();
                scope.spawn(move || {
                    let (id, port) = cluster.open_port();
                    let session = if snapshot_reads {
                        Client::new_snapshot_reads(id, home, options.replicas)
                    } else {
                        Client::new(id, home, options.replicas)
                    };
                    // Each connection works the key range of its home partition only, so
                    // every request is served without cross-partition forwarding.
                    let keys: Vec<Key> = (0..keyspace.keys_per_partition())
                        .map(|rank| keyspace.key(home.partition, rank))
                        .collect();
                    ConnDriver {
                        cluster: &cluster,
                        home,
                        snapshot_reads,
                        session,
                        port,
                        schedule,
                        start,
                        warmup: options.warmup,
                        pipeline: options.pipeline,
                        churn_every,
                        inflight: VecDeque::new(),
                        keys,
                        value,
                        gets_per_put: options.gets_per_put,
                        result: ConnResult::new(),
                    }
                    .run()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load connection threads do not panic"))
            .collect()
    });

    // Achieved measurement window: warm-up end to the last recorded reply.
    let last_reply = results
        .iter()
        .map(|r| r.last_reply)
        .max()
        .unwrap_or(total)
        .max(total);
    let window = last_reply - options.warmup;

    let mut all = LatencyStats::new();
    let mut get = LatencyStats::new();
    let mut put = LatencyStats::new();
    let mut ops = 0u64;
    let mut gets = 0u64;
    let mut puts = 0u64;
    let mut reinitialized = 0u64;
    let mut lost = 0u64;
    for r in &results {
        all.merge(&r.all);
        get.merge(&r.get);
        put.merge(&r.put);
        ops += r.measured_ops;
        gets += r.measured_gets;
        puts += r.measured_puts;
        reinitialized += r.reinitialized;
        lost += r.lost;
    }
    if lost > 0 {
        eprintln!("warning: {lost} operations received no reply before the run deadline");
    }

    // Let replication drain, then check that every replica of every partition holds the
    // same latest-version digest — the load generator doubles as a convergence check.
    let converged = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if convergence_digests_agree(&cluster) {
                break true;
            }
            if Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };

    let probes = cluster.probe_all();
    let mut metrics = pocc_proto::MetricsSnapshot::default();
    let mut store = StoreStats::default();
    let mut store_shards: Vec<ShardStats> = Vec::with_capacity(probes.len());
    for (_, probe) in &probes {
        metrics.merge(&probe.metrics);
        store.merge(&probe.store_stats);
        // One pseudo-shard entry per server: shows how the load spread over servers.
        store_shards.push(ShardStats {
            keys: probe.store_stats.keys,
            versions: probe.store_stats.versions,
            max_chain_len: probe.store_stats.max_chain_len,
            gc_removed: probe.store_stats.gc_removed,
            live_bytes: probe.store_stats.live_bytes,
        });
    }
    // Wire-level traffic: the servers count replication/heartbeat/GC bytes; the channel
    // transport has no socket counters, so this is the comparable figure on both.
    let network = pocc_net::NetworkStats {
        messages_sent: metrics.replicate_sent
            + metrics.heartbeats_sent
            + metrics.stabilization_messages
            + metrics.gc_messages,
        wan_messages: metrics.replicate_sent + metrics.heartbeats_sent,
        bytes_sent: metrics.bytes_sent,
        held_messages: 0,
        dropped_messages: 0,
        duplicated_messages: 0,
    };

    let kind = protocol_kind(options.protocol);
    let report = SimReport {
        protocol: kind,
        replicas: options.replicas,
        partitions: options.partitions,
        clients: options.conns,
        measured_window: window,
        operations_completed: ops,
        gets_completed: gets,
        puts_completed: puts,
        rotx_completed: 0,
        sessions_reinitialized: reinitialized,
        throughput_ops_per_sec: ops as f64 / window.as_secs_f64(),
        latency_all: all,
        latency_get: get,
        latency_put: put,
        latency_rotx: LatencyStats::new(),
        server_metrics: metrics,
        network,
        store,
        store_shards,
        consistency_violations: 0,
        converged,
    };

    // The config block of the JSON point documents the run's actual dimensions.
    let config = SimConfig::builder()
        .protocol(kind)
        .deployment(deployment)
        .clients_per_partition(
            options
                .conns
                .div_ceil(options.partitions * options.replicas),
        )
        .mix(crate::get_put(options.gets_per_put as usize))
        .zipf_theta(0.0)
        .keys_per_partition(options.keys_per_partition)
        .value_size(options.value_size)
        .think_time(Duration::ZERO)
        .warmup(options.warmup)
        .duration(options.duration)
        .drain(Duration::ZERO)
        .seed(SEED)
        .build();

    let label = format!(
        "{}-{}-{}x{}",
        protocol_label(options.protocol),
        options.transport.name(),
        options.replicas,
        options.partitions,
    );

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => unreachable!("all connection threads joined before shutdown"),
    }

    ScenarioReport {
        scenario: options.scenario.name,
        title: options.scenario.title,
        x_axis: "target ops/sec",
        scale: options.scale,
        points: vec![PointResult {
            label,
            x: options.rate,
            config,
            report,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn tiny(scenario: &'static LoadScenario, transport: TransportKind) -> LoadOptions {
        LoadOptions {
            transport,
            rate: 2_000.0,
            conns: 2,
            pipeline: 8,
            warmup: Duration::from_millis(50),
            duration: Duration::from_millis(250),
            keys_per_partition: 64,
            churn_every: 100,
            ..LoadOptions::smoke(scenario)
        }
    }

    #[test]
    fn schedules_match_shape_and_rate() {
        let steady = build_schedule(Shape::Steady, 1_000.0, Duration::from_secs(1));
        assert!((999..=1001).contains(&steady.len()), "{}", steady.len());
        assert!(steady.windows(2).all(|w| w[0] < w[1]));
        // The burst schedule averages the same rate but is not evenly spaced.
        let burst = build_schedule(Shape::Burst, 1_000.0, Duration::from_secs(1));
        let diff = (burst.len() as i64 - steady.len() as i64).abs();
        assert!(diff < 100, "burst={} steady={}", burst.len(), steady.len());
        let gaps: Vec<Duration> = burst.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().max().unwrap() > gaps.iter().min().unwrap());
    }

    #[test]
    fn steady_channel_run_produces_valid_report() {
        let report = run(&tiny(
            find_scenario("steady").unwrap(),
            TransportKind::Channel,
        ));
        let point = &report.points[0];
        assert!(point.report.operations_completed > 0);
        assert!(point.report.converged, "replicas converged after the run");
        assert!(point.report.latency_all.count() > 0);
        json::validate_report(&report.to_json()).expect("loadgen report passes the schema");
    }

    #[test]
    fn churn_tcp_run_reconnects_and_validates() {
        let mut options = tiny(find_scenario("churn").unwrap(), TransportKind::Tcp);
        options.churn_every = 50;
        let report = run(&options);
        let point = &report.points[0];
        assert!(point.report.operations_completed > 0);
        json::validate_report(&report.to_json()).expect("loadgen report passes the schema");
    }

    #[test]
    fn registry_lookup_accepts_short_and_full_names() {
        assert!(find_scenario("steady").is_some());
        assert!(find_scenario("loadgen_burst").is_some());
        assert!(find_scenario("nope").is_none());
        assert_eq!(parse_protocol("HaPocc"), Some(RuntimeProtocol::HaPocc));
        assert_eq!(parse_protocol("nope"), None);
    }
}
