//! Figure 1a — Throughput while varying the number of partitions.
//!
//! Workload: GET:PUT = p:1 (p = number of partitions), zipf 0.99, 25 ms think time,
//! high client count so the servers operate near their maximum throughput.
//! Series: maximum achievable throughput for Cure\* and POCC.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 1a",
        "throughput vs number of partitions (GET:PUT = p:1)",
        scale,
    );
    let partitions: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 8, 16, 24, 32],
    };
    let clients = match scale {
        Scale::Quick => 256,
        Scale::Full => 192,
    };

    bench::row(&[
        "partitions".into(),
        "Cure* (ops/s)".into(),
        "POCC (ops/s)".into(),
        "POCC/Cure*".into(),
    ]);
    for &p in &partitions {
        let mut tput = Vec::new();
        for protocol in [ProtocolKind::Cure, ProtocolKind::Pocc] {
            let report = bench::run(
                bench::point(scale, protocol)
                    .deployment(bench::deployment(scale, p))
                    .clients_per_partition(clients)
                    .mix(bench::get_put(p)),
            );
            tput.push(report.throughput_ops_per_sec);
        }
        bench::row(&[
            p.to_string(),
            bench::fmt_tput(tput[0]),
            bench::fmt_tput(tput[1]),
            bench::fmt_f(tput[1] / tput[0].max(1.0)),
        ]);
    }
    println!("\nExpected shape: both systems scale with the number of partitions and the two");
    println!("curves nearly overlap (the paper reports 'basically the same throughput').");
}
