//! The open-loop load generator binary: wall-clock load against the cluster runtime.
//!
//! ```text
//! loadgen --list
//! loadgen --scenario steady --transport tcp --rate 60000 --duration 2
//! loadgen --scenario churn --protocol cure --out BENCH_loadgen_churn.json
//! ```
//!
//! Latencies are coordinated-omission-safe: every operation is timestamped by its
//! *intended* start on the precomputed arrival schedule, so queueing delay caused by a
//! slow server is charged to the operations that suffered it. Reports are validated
//! against the versioned BENCH schema before they are written.

use pocc_bench::{fmt_ms, fmt_tput, json, loadgen, Scale};
use pocc_runtime::TransportKind;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    options: loadgen::LoadOptions,
    out: Option<String>,
    list: bool,
}

const USAGE: &str = "\
USAGE: loadgen [OPTIONS]

OPTIONS:
  --list                 list registered load scenarios and exit
  --scenario <name>      load scenario (default: steady)
  --transport <name>     transport backend: channel | tcp (default: tcp)
  --protocol <name>      protocol: pocc | cure | hapocc | adaptive (default: pocc)
  --scale <scale>        smoke | quick | full (report label; default: smoke)
  --replicas <n>         data centers (default: 2)
  --partitions <n>       partitions per data center (default: 2)
  --conns <n>            concurrent connections (default: 8)
  --pipeline <n>         max in-flight operations per connection (default: 32)
  --rate <ops/sec>       target aggregate arrival rate (default: 60000)
  --warmup <seconds>     unrecorded warm-up window (default: 0.3)
  --duration <seconds>   measured window (default: 2)
  --churn-every <ops>    churn scenario: reconnect period per connection (default: 2000)
  --out <file>           output path (default: BENCH_<scenario>.json)
  -h, --help             show this help
";

fn list_scenarios() {
    eprintln!("registered load scenarios:");
    for s in loadgen::scenarios() {
        eprintln!("  {:<16} {}", s.name, s.title);
    }
}

fn list_transports() {
    eprintln!("registered transports:");
    for t in TransportKind::all() {
        eprintln!("  {}", t.name());
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        options: loadgen::LoadOptions::smoke(
            loadgen::find_scenario("steady").expect("steady scenario is registered"),
        ),
        out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| -> Result<f64, String> {
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            v.parse::<f64>()
                .map_err(|_| format!("{name}: invalid number {v:?}"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--scenario" => {
                let name = it.next().ok_or("--scenario needs a name")?;
                args.options.scenario = loadgen::find_scenario(&name).ok_or_else(|| {
                    list_scenarios();
                    format!("unknown scenario {name:?}")
                })?;
            }
            "--transport" => {
                let name = it.next().ok_or("--transport needs a name")?;
                args.options.transport = TransportKind::parse(&name).ok_or_else(|| {
                    list_transports();
                    format!("unknown transport {name:?}")
                })?;
            }
            "--protocol" => {
                let name = it.next().ok_or("--protocol needs a name")?;
                args.options.protocol = loadgen::parse_protocol(&name).ok_or_else(|| {
                    eprintln!("registered protocols:");
                    for p in loadgen::protocol_names() {
                        eprintln!("  {p}");
                    }
                    format!("unknown protocol {name:?}")
                })?;
            }
            "--scale" => {
                let name = it.next().ok_or("--scale needs a value")?;
                args.options.scale =
                    Scale::parse(&name).ok_or_else(|| format!("unknown scale {name:?}"))?;
            }
            "--replicas" => args.options.replicas = num("--replicas", &mut it)? as usize,
            "--partitions" => args.options.partitions = num("--partitions", &mut it)? as usize,
            "--conns" => args.options.conns = num("--conns", &mut it)? as usize,
            "--pipeline" => args.options.pipeline = num("--pipeline", &mut it)? as usize,
            "--rate" => args.options.rate = num("--rate", &mut it)?,
            "--warmup" => args.options.warmup = Duration::from_secs_f64(num("--warmup", &mut it)?),
            "--duration" => {
                args.options.duration = Duration::from_secs_f64(num("--duration", &mut it)?)
            }
            "--churn-every" => args.options.churn_every = num("--churn-every", &mut it)? as u64,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.options.replicas < 1
        || args.options.partitions < 1
        || args.options.conns < 1
        || args.options.pipeline < 1
        || args.options.rate <= 0.0
    {
        return Err("replicas, partitions, conns, pipeline and rate must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!("{:<16} DESCRIPTION", "NAME");
        for s in loadgen::scenarios() {
            println!("{:<16} {}", s.name, s.title);
        }
        println!("\ntransports: channel, tcp; protocols: pocc, cure, hapocc, adaptive");
        return ExitCode::SUCCESS;
    }

    let o = &args.options;
    println!(
        "=== {} — {} transport, {} protocol, {}x{} deployment",
        o.scenario.name,
        o.transport.name(),
        match o.protocol {
            pocc_runtime::RuntimeProtocol::Pocc => "pocc",
            pocc_runtime::RuntimeProtocol::Cure => "cure",
            pocc_runtime::RuntimeProtocol::HaPocc => "hapocc",
            pocc_runtime::RuntimeProtocol::Adaptive => "adaptive",
        },
        o.replicas,
        o.partitions,
    );
    println!(
        "    target {} ops/s over {} conns (pipeline {}), warmup {:.1}s + measured {:.1}s",
        fmt_tput(o.rate),
        o.conns,
        o.pipeline,
        o.warmup.as_secs_f64(),
        o.duration.as_secs_f64(),
    );

    let report = loadgen::run(&args.options);
    let point = &report.points[0];
    let r = &point.report;
    println!(
        "    achieved {} ops/s over {:.2}s ({} ops; {} gets, {} puts)",
        fmt_tput(r.throughput_ops_per_sec),
        r.measured_window.as_secs_f64(),
        r.operations_completed,
        r.gets_completed,
        r.puts_completed,
    );
    println!(
        "    latency (ms, CO-safe)  p50 {:>8}  p95 {:>8}  p99 {:>8}  p999 {:>8}  max {:>8}",
        fmt_ms(r.latency_all.p50()),
        fmt_ms(r.latency_all.p95()),
        fmt_ms(r.latency_all.p99()),
        fmt_ms(r.latency_all.p999()),
        fmt_ms(r.latency_all.max()),
    );
    println!(
        "    converged: {} (replica digests {})",
        r.converged,
        if r.converged { "agree" } else { "DIVERGED" },
    );

    let doc = report.to_json();
    if let Err(err) = json::validate_report(&doc) {
        eprintln!("error: schema validation failed: {err}");
        return ExitCode::FAILURE;
    }
    let path = args
        .out
        .unwrap_or_else(|| format!("BENCH_{}.json", report.scenario));
    if let Err(err) = std::fs::write(&path, doc.to_pretty()) {
        eprintln!("error: cannot write {path}: {err}");
        return ExitCode::FAILURE;
    }
    println!("    -> {path} (schema v{} OK)", json::SCHEMA_VERSION);

    if !r.converged {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
