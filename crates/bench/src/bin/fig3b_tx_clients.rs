//! Figure 3b — Throughput and average RO-TX response time while increasing the number of
//! clients per partition (transactions over half the partitions + PUTs).

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 3b",
        "throughput and RO-TX response time vs clients per partition",
        scale,
    );
    let tx_size = scale.max_partitions() / 2;
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64, 96, 128, 192],
        Scale::Full => vec![32, 64, 96, 128, 160, 192, 224],
    };

    bench::row(&[
        "clients/part".into(),
        "Cure* ops/s".into(),
        "Cure* RO-TX ms".into(),
        "POCC ops/s".into(),
        "POCC RO-TX ms".into(),
    ]);
    for &clients in &client_sweep {
        let mut cells = vec![clients.to_string()];
        for protocol in [ProtocolKind::Cure, ProtocolKind::Pocc] {
            let report = bench::run(
                bench::point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(bench::tx_put(tx_size)),
            );
            cells.push(bench::fmt_tput(report.throughput_ops_per_sec));
            cells.push(bench::fmt_ms(report.latency_rotx.mean()));
        }
        bench::row(&cells);
    }
    println!("\nExpected shape: similar peak throughput; past the peak POCC's RO-TX latency grows");
    println!("faster (blocking under overload) while Cure*'s throughput plateaus.");
}
