//! Allocation-aware micro-benchmarks of the hot paths: version-chain inserts, snapshot
//! reads, clock-vector lattice operations, version cloning (the replication fan-out
//! cost), wire-codec encode/decode and chain garbage collection.
//!
//! ```text
//! storage_microbench [--json <path>]
//! ```
//!
//! Every benchmark is deterministic (fixed keys, fixed timestamps, no randomness), and a
//! counting `#[global_allocator]` hook reports *allocations per operation* and *bytes
//! allocated per operation* next to the wall-clock throughput. The allocation columns
//! are machine-independent — heap-allocation counts of a deterministic workload do not
//! depend on CPU speed or load — which is what lets CI gate on them with a tight ratio
//! (`compare_bench --microbench`) while the ns/op column stays informational.
//!
//! With `--json`, a small versioned report is written for the CI gate; the checked-in
//! baseline lives at `MICROBENCH_baseline.json` in the repository root.

use pocc_bench::json::Json;
use pocc_exec::PublishedVector;
use pocc_proto::{codec, ClientRequest};
use pocc_storage::ShardedStore;
use pocc_types::{
    DependencyVector, Key, PartitionId, ReplicaId, Timestamp, Value, Version, VersionVector,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pocc_bench::json::MICROBENCH_SCHEMA_VERSION;

/// Number of data centers every vector in the workload carries (the paper's testbed
/// sizes are 2–8).
const REPLICAS: usize = 3;

// ---------------------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------------------

/// A pass-through allocator that counts every allocation (and reallocation) and the
/// bytes requested. Deallocations are not counted: the benchmarks report *allocation
/// pressure*, not net heap growth.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn counters() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------------------

/// One benchmark's measured numbers.
struct BenchResult {
    name: &'static str,
    ops: u64,
    elapsed_ns: u64,
    allocs: u64,
    bytes: u64,
}

impl BenchResult {
    fn ns_per_op(&self) -> f64 {
        self.elapsed_ns as f64 / self.ops as f64
    }

    fn ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    fn allocs_per_op(&self) -> f64 {
        self.allocs as f64 / self.ops as f64
    }

    fn bytes_per_op(&self) -> f64 {
        self.bytes as f64 / self.ops as f64
    }
}

/// Runs `work` (which performs `ops` operations) with allocation counting around it.
/// Setup belongs *outside* this call so its allocations are not charged to the hot path.
fn measure(name: &'static str, ops: u64, work: impl FnOnce()) -> BenchResult {
    let (a0, b0) = counters();
    let start = Instant::now();
    work();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let (a1, b1) = counters();
    BenchResult {
        name,
        ops,
        elapsed_ns,
        allocs: a1 - a0,
        bytes: b1 - b0,
    }
}

// ---------------------------------------------------------------------------------------
// Workload builders (deterministic)
// ---------------------------------------------------------------------------------------

const KEYS: u64 = 512;
const VERSIONS_PER_KEY: u64 = 32;
const INSERT_OPS: u64 = KEYS * VERSIONS_PER_KEY;
const READ_OPS: u64 = 50_000;
const VECTOR_OPS: u64 = 200_000;
const CODEC_OPS: u64 = 50_000;

fn dv(entries: [u64; REPLICAS]) -> DependencyVector {
    DependencyVector::from_entries(entries.iter().map(|&e| Timestamp(e)).collect())
}

/// A deterministic stream of versions: `KEYS` keys, `VERSIONS_PER_KEY` rounds, update
/// times increasing per round, source replicas rotating, small dependency vectors.
fn build_versions(base_ts: u64) -> Vec<Version> {
    let mut out = Vec::with_capacity(INSERT_OPS as usize);
    for round in 0..VERSIONS_PER_KEY {
        for key in 0..KEYS {
            let ts = base_ts + round * 1_000 + key;
            out.push(Version::new(
                Key(key),
                Value::from(ts),
                ReplicaId((key % REPLICAS as u64) as u16),
                Timestamp(ts),
                dv([ts.saturating_sub(500), ts.saturating_sub(700), 0]),
            ));
        }
    }
    out
}

fn fresh_store() -> ShardedStore {
    ShardedStore::with_shards(PartitionId(0), 1, 8)
}

// ---------------------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------------------

/// Pure insert path into empty chains: the cost a server pays applying a local PUT or a
/// replicated update the first time the chains grow.
fn bench_insert_fresh() -> BenchResult {
    let store = fresh_store();
    let versions = build_versions(1);
    measure("insert_fresh", INSERT_OPS, || {
        for v in versions {
            store.insert(v).expect("key owned by partition 0");
        }
    })
}

/// Insert after a full GC pass: the steady-state insert path where storage previously
/// held (and released) versions. This is the path slab free-list reuse targets.
fn bench_insert_after_gc() -> BenchResult {
    let store = fresh_store();
    for v in build_versions(1) {
        store.insert(v).expect("key owned by partition 0");
    }
    // Collect everything collectible: each chain keeps only its newest covered version.
    store.collect_garbage(&dv([u64::MAX, u64::MAX, u64::MAX]));
    let versions = build_versions(10_000_000);
    measure("insert_after_gc", INSERT_OPS, || {
        for v in versions {
            store.insert(v).expect("key owned by partition 0");
        }
    })
}

/// Head reads (the POCC GET path: freshest version, stable or not).
fn bench_get_latest() -> BenchResult {
    let store = fresh_store();
    for v in build_versions(1) {
        store.insert(v).expect("key owned by partition 0");
    }
    measure("get_latest", READ_OPS, || {
        for i in 0..READ_OPS {
            let out = store.latest(Key(i % KEYS));
            assert!(out.is_some());
        }
    })
}

/// Snapshot reads (the RO-TX slice / Cure* stable-read path): walk the chain to the
/// freshest version visible under a mid-history snapshot.
fn bench_snapshot_read() -> BenchResult {
    let store = fresh_store();
    for v in build_versions(1) {
        store.insert(v).expect("key owned by partition 0");
    }
    // A snapshot in the middle of the written history: reads traverse ~half the chain.
    let tv = dv([16_000, 16_000, 16_000]);
    measure("snapshot_read", READ_OPS, || {
        for i in 0..READ_OPS {
            let out = store.latest_in_snapshot(Key(i % KEYS), &tv);
            assert!(out.version.is_some());
        }
    })
}

/// The lane fast-path coverage check under concurrent publication: readers evaluate
/// `covers_dependencies_except_local` against the atomic epoch snapshot while a writer
/// thread continuously advances its entries — the contention shape the remote-apply
/// pipeline puts on the published vector. Both sides are allocation-free, which is the
/// property the CI gate pins (a lock-based snapshot would clone on every publication).
fn bench_snapshot_read_under_writes() -> BenchResult {
    let published = Arc::new(PublishedVector::new(&VersionVector::from_entries(
        (0..REPLICAS).map(|_| Timestamp(1)).collect(),
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let published = Arc::clone(&published);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut ts = 2u64;
            while !stop.load(Ordering::Relaxed) {
                for r in 0..REPLICAS as u16 {
                    published.advance(ReplicaId(r), Timestamp(ts));
                }
                ts += 1;
            }
        })
    };
    let deps = dv([1, 1, 1]);
    let result = measure("snapshot_read_under_writes", READ_OPS, || {
        let mut covered = 0u64;
        for _ in 0..READ_OPS {
            if published.covers_dependencies_except_local(&deps, ReplicaId(0)) {
                covered += 1;
            }
        }
        // The publication only ever advances past the fixed deps, so every check passes.
        assert_eq!(covered, READ_OPS);
    });
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    result
}

/// The GET-snapshot vector algebra of `EngineCore::serve_get_snapshot`:
/// `GSS ∨ RDV` then advance the local entry — one temporary vector per read.
fn bench_vector_join() -> BenchResult {
    let gss = dv([5_000, 6_000, 7_000]);
    let rdv = dv([5_500, 100, 6_900]);
    let vv =
        VersionVector::from_entries((0..REPLICAS as u64).map(|i| Timestamp(8_000 + i)).collect());
    let local = ReplicaId(0);
    measure("vector_join", VECTOR_OPS, || {
        let mut acc = Timestamp::ZERO;
        for _ in 0..VECTOR_OPS {
            let mut snapshot = gss.joined(&rdv);
            snapshot.advance(local, vv.get(local));
            acc = acc.max(snapshot.max_entry());
        }
        assert_eq!(acc, Timestamp(8_000));
    })
}

/// Version cloning: what the replication fan-out pays per sibling replica on every PUT.
fn bench_version_clone() -> BenchResult {
    let version = Version::new(
        Key(1),
        Value::from(42u64),
        ReplicaId(0),
        Timestamp(1_000),
        dv([900, 800, 0]),
    );
    measure("version_clone", VECTOR_OPS, || {
        let mut acc = 0u64;
        for _ in 0..VECTOR_OPS {
            let v = version.clone();
            acc = acc.wrapping_add(v.update_time.as_micros());
        }
        assert_eq!(acc, VECTOR_OPS.wrapping_mul(1_000));
    })
}

/// Wire-codec encode of a PUT request (the largest client-facing message).
fn bench_codec_encode() -> BenchResult {
    let put = ClientRequest::Put {
        key: Key(9),
        value: Value::from("sixteen bytes!!!"),
        dv: dv([4, 0, 6]),
    };
    measure("codec_encode", CODEC_OPS, || {
        let mut total = 0usize;
        for _ in 0..CODEC_OPS {
            let encoded = codec::encode_request(&put).expect("encodable message");
            total += encoded.len();
        }
        assert!(total > 0);
    })
}

/// Wire-codec encode of the same PUT into a reused scratch buffer — the steady-state
/// path a server loop takes once its per-connection buffer has warmed up.
fn bench_codec_encode_scratch() -> BenchResult {
    let put = ClientRequest::Put {
        key: Key(9),
        value: Value::from("sixteen bytes!!!"),
        dv: dv([4, 0, 6]),
    };
    let mut scratch = bytes::BytesMut::with_capacity(256);
    measure("codec_encode_scratch", CODEC_OPS, || {
        let mut total = 0usize;
        for _ in 0..CODEC_OPS {
            scratch.clear();
            codec::encode_request_into(&put, &mut scratch).expect("encodable message");
            total += scratch.len();
        }
        assert!(total > 0);
    })
}

/// Wire-codec decode of the same PUT request (zero-copy value path).
fn bench_codec_decode() -> BenchResult {
    let put = ClientRequest::Put {
        key: Key(9),
        value: Value::from("sixteen bytes!!!"),
        dv: dv([4, 0, 6]),
    };
    let encoded = codec::encode_request(&put).expect("encodable message");
    measure("codec_decode", CODEC_OPS, || {
        for _ in 0..CODEC_OPS {
            let decoded = codec::decode_request(encoded.clone()).expect("valid message");
            debug_assert!(matches!(decoded, ClientRequest::Put { .. }));
        }
    })
}

/// Chain garbage collection over the whole store (one full §IV-B pass).
fn bench_gc_collect() -> BenchResult {
    let store = fresh_store();
    for v in build_versions(1) {
        store.insert(v).expect("key owned by partition 0");
    }
    let gv = dv([u64::MAX, u64::MAX, u64::MAX]);
    measure("gc_collect", INSERT_OPS - KEYS, || {
        let removed = store.collect_garbage(&gv);
        assert_eq!(removed as u64, INSERT_OPS - KEYS);
    })
}

// ---------------------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------------------

fn render_table(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>14}\n",
        "benchmark", "ops", "ns/op", "ops/sec", "allocs/op", "bytes/op"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<22} {:>12} {:>12.1} {:>12.0} {:>12.3} {:>14.1}\n",
            r.name,
            r.ops,
            r.ns_per_op(),
            r.ops_per_sec(),
            r.allocs_per_op(),
            r.bytes_per_op()
        ));
    }
    out
}

fn to_json(results: &[BenchResult]) -> Json {
    Json::Obj(vec![
        (
            "microbench_schema_version".into(),
            Json::u64(MICROBENCH_SCHEMA_VERSION),
        ),
        (
            "benches".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(r.name)),
                            ("ops".into(), Json::u64(r.ops)),
                            ("ns_per_op".into(), Json::num(r.ns_per_op())),
                            ("ops_per_sec".into(), Json::num(r.ops_per_sec())),
                            ("allocs_per_op".into(), Json::num(r.allocs_per_op())),
                            ("bytes_per_op".into(), Json::num(r.bytes_per_op())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() -> ExitCode {
    let mut json_path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("USAGE: storage_microbench [--json <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let results = vec![
        bench_insert_fresh(),
        bench_insert_after_gc(),
        bench_get_latest(),
        bench_snapshot_read(),
        bench_snapshot_read_under_writes(),
        bench_vector_join(),
        bench_version_clone(),
        bench_codec_encode(),
        bench_codec_encode_scratch(),
        bench_codec_decode(),
        bench_gc_collect(),
    ];
    print!("{}", render_table(&results));

    if let Some(path) = json_path {
        let doc = to_json(&results);
        if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
