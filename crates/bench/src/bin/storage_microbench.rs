//! Micro-benchmark — raw [`ShardedStore`] operation throughput.
//!
//! Times the storage hot path in isolation (no protocol, no network): version inserts,
//! head reads, snapshot reads, and a GC pass, for `shards ∈ {1, 4, 8}`. With a single
//! thread the shard count mostly affects hash-map sizing (smaller per-shard tables, one
//! extra hash per access), so the figures should be within noise of each other — the
//! sharding payoff is per-shard independence, which the ablation harness
//! (`ablation_sharding`) measures at the system level. This bin exists to catch
//! regressions in the storage layer itself.
//!
//! Environment: `POCC_MICROBENCH_KEYS` (default 100_000) keys, 4 versions per key.

use pocc_storage::ShardedStore;
use pocc_types::{DependencyVector, Key, PartitionId, ReplicaId, Timestamp, Value, Version};
use std::time::Instant;

const VERSIONS_PER_KEY: u64 = 4;

fn keys_from_env() -> u64 {
    std::env::var("POCC_MICROBENCH_KEYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn version(key: u64, ut: u64) -> Version {
    Version::new(
        Key(key),
        Value::from(ut),
        ReplicaId((ut % 3) as u16),
        Timestamp(ut),
        DependencyVector::from_entries(vec![Timestamp(ut / 2), Timestamp(0), Timestamp(0)]),
    )
}

/// Million operations per second for `ops` operations over `elapsed`.
fn mops(ops: u64, elapsed: std::time::Duration) -> String {
    format!("{:.2}", ops as f64 / elapsed.as_secs_f64() / 1e6)
}

fn main() {
    let keys = keys_from_env();
    println!("=== Storage microbench — ShardedStore, {keys} keys x {VERSIONS_PER_KEY} versions");
    println!("    (single-threaded; Mop/s per operation kind)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>16} {:>12}",
        "shards", "insert Mop/s", "latest Mop/s", "snapshot Mop/s", "gc ms"
    );

    for &shards in &[1usize, 4, 8] {
        let mut store = ShardedStore::with_shards(PartitionId(0), 1, shards);

        let start = Instant::now();
        for round in 0..VERSIONS_PER_KEY {
            for k in 0..keys {
                store
                    .insert(version(k, 10 + round * 10 + (k % 7)))
                    .expect("single-partition deployment owns every key");
            }
        }
        let insert = start.elapsed();

        let start = Instant::now();
        let mut found = 0u64;
        for k in 0..keys {
            if store.latest(Key(k)).is_some() {
                found += 1;
            }
        }
        let latest = start.elapsed();
        assert_eq!(found, keys);

        let snapshot_vector =
            DependencyVector::from_entries(vec![Timestamp(25), Timestamp(25), Timestamp(25)]);
        let start = Instant::now();
        let mut visible = 0u64;
        for k in 0..keys {
            if store
                .latest_in_snapshot(Key(k), &snapshot_vector)
                .version
                .is_some()
            {
                visible += 1;
            }
        }
        let snapshot = start.elapsed();
        assert!(visible > 0);

        let gc_vector = DependencyVector::from_entries(vec![
            Timestamp(1_000),
            Timestamp(1_000),
            Timestamp(1_000),
        ]);
        let start = Instant::now();
        let removed = store.collect_garbage(&gc_vector);
        let gc = start.elapsed();
        assert!(removed as u64 >= keys * (VERSIONS_PER_KEY - 1) / 2);

        println!(
            "{:>8} {:>14} {:>14} {:>16} {:>12.2}",
            shards,
            mops(keys * VERSIONS_PER_KEY, insert),
            mops(keys, latest),
            mops(keys, snapshot),
            gc.as_secs_f64() * 1e3,
        );
    }
}
