//! Compares two `BENCH_*.json` reports and flags throughput regressions.
//!
//! ```text
//! compare_bench <baseline.json> <current.json> [--threshold 0.25]
//! compare_bench --validate <file.json>...
//! compare_bench --digests <baseline DIGESTS.json> <current DIGESTS.json>
//! compare_bench --scaling <report.json> [--min-ratio 1.5]
//! compare_bench --microbench <baseline.json> <current.json> [--max-alloc-ratio 1.1]
//! ```
//!
//! Exit codes: 0 = gate passed (no regression / all files valid / no digest drift /
//! scaling ratio reached), 1 = gate failed, 2 = usage or input error. CI runs the
//! comparisons as blocking gates: the simulator is seeded and deterministic, so a >25%
//! throughput regression of the baseline scenario is a real code-path change, not noise
//! — and any digest drift is a real behaviour change. Entries present only in the
//! *current* corpus (a new scenario, or a sweep axis the older baseline predates, such
//! as `core_scaling`'s worker-lane counts) are reported as notes, not failures. A
//! deliberate trade-off ships with a regenerated `BENCH_baseline.json` (or
//! `DIGESTS.json`) and an explanation in the PR.
//!
//! `--scaling` gates a wall-clock sweep on itself rather than on a baseline file:
//! throughput at the sweep's largest `x` must be at least `--min-ratio` times the
//! throughput at its smallest `x` (the `parallel-smoke` job runs it against
//! `BENCH_core_scaling.json`, where `x` is the worker-lane count).
//!
//! `--microbench` compares two `storage_microbench --json` reports and gates on
//! **allocations per operation** — deterministic under the harness's counting
//! allocator, so the gate holds on any machine; ns/op is printed but never gated.

use pocc_bench::compare::{
    compare, microbench, scaling, DEFAULT_MAX_ALLOC_RATIO, DEFAULT_THRESHOLD,
};
use pocc_bench::digest::DigestCorpus;
use pocc_bench::json;
use std::process::ExitCode;

/// The default `--min-ratio`: 4 worker lanes must beat 1 lane by at least this factor.
const DEFAULT_MIN_RATIO: f64 = 1.5;

const USAGE: &str = "\
USAGE:
  compare_bench <baseline.json> <current.json> [--threshold <fraction>]
  compare_bench --validate <file.json>...
  compare_bench --digests <baseline.json> <current.json>
  compare_bench --scaling <report.json> [--min-ratio <ratio>]
  compare_bench --microbench <baseline.json> <current.json> [--max-alloc-ratio <ratio>]
";

fn load(path: &str) -> Result<json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--validate") {
        if args.len() < 2 {
            eprintln!("error: --validate needs at least one file\n{USAGE}");
            return ExitCode::from(2);
        }
        for path in &args[1..] {
            let doc = match load(path) {
                Ok(doc) => doc,
                Err(err) => {
                    eprintln!("error: {err}");
                    return ExitCode::from(2);
                }
            };
            if let Err(err) = json::validate_report(&doc) {
                eprintln!("error: {path}: schema validation failed: {err}");
                return ExitCode::from(2);
            }
            println!("{path}: schema v{} OK", json::SCHEMA_VERSION);
        }
        return ExitCode::SUCCESS;
    }

    if args.first().map(String::as_str) == Some("--digests") {
        if args.len() != 3 {
            eprintln!("error: --digests needs a baseline and a current corpus\n{USAGE}");
            return ExitCode::from(2);
        }
        let corpus = |path: &str| -> Result<DigestCorpus, String> {
            DigestCorpus::from_json(&load(path)?).map_err(|e| format!("{path}: {e}"))
        };
        let (baseline, current) = match (corpus(&args[1]), corpus(&args[2])) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(err), _) | (_, Err(err)) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        };
        let diff = baseline.diff(&current);
        for line in &diff.notes {
            println!("note: {line}");
        }
        return if diff.is_clean() {
            println!(
                "digest corpora agree: {} scenarios, {} points{}",
                baseline.scenarios.len(),
                baseline
                    .scenarios
                    .iter()
                    .map(|s| s.points.len())
                    .sum::<usize>(),
                if diff.notes.is_empty() {
                    ""
                } else {
                    " (plus new coverage in the current corpus, listed above)"
                }
            );
            ExitCode::SUCCESS
        } else {
            for line in &diff.failures {
                println!("{line}");
            }
            println!(
                "\n{} digest difference(s): behaviour drifted from the checked-in corpus.",
                diff.failures.len()
            );
            println!(
                "If the change is intentional, regenerate with: \
                 runner --scenario all --scale {} --digests DIGESTS.json",
                baseline.scale
            );
            ExitCode::FAILURE
        };
    }

    if args.first().map(String::as_str) == Some("--scaling") {
        let mut path = None;
        let mut min_ratio = DEFAULT_MIN_RATIO;
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--min-ratio" => {
                    let v = it.next().and_then(|v| v.parse::<f64>().ok());
                    match v {
                        Some(v) if v > 0.0 => min_ratio = v,
                        _ => {
                            eprintln!("error: --min-ratio needs a positive number\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    }
                }
                other if path.is_none() => path = Some(other.to_string()),
                other => {
                    eprintln!("error: unexpected argument {other:?}\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
        let Some(path) = path else {
            eprintln!("error: --scaling needs a report file\n{USAGE}");
            return ExitCode::from(2);
        };
        let doc = match load(&path) {
            Ok(doc) => doc,
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        };
        let summary = match scaling(&doc) {
            Ok(summary) => summary,
            Err(err) => {
                eprintln!("error: {path}: {err}");
                return ExitCode::from(2);
            }
        };
        print!("{}", summary.render());
        return if summary.ratio() >= min_ratio {
            println!("scaling gate passed (minimum {min_ratio:.2}x)");
            ExitCode::SUCCESS
        } else {
            println!(
                "scaling gate FAILED: {:.2}x is below the {:.2}x minimum",
                summary.ratio(),
                min_ratio
            );
            ExitCode::FAILURE
        };
    }

    if args.first().map(String::as_str) == Some("--microbench") {
        let mut paths = Vec::new();
        let mut max_ratio = DEFAULT_MAX_ALLOC_RATIO;
        let mut it = args[1..].iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--max-alloc-ratio" => {
                    let v = it.next().and_then(|v| v.parse::<f64>().ok());
                    match v {
                        Some(v) if v >= 1.0 => max_ratio = v,
                        _ => {
                            eprintln!("error: --max-alloc-ratio needs a ratio >= 1\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    }
                }
                other => paths.push(other.to_string()),
            }
        }
        if paths.len() != 2 {
            eprintln!("error: --microbench needs a baseline and a current report\n{USAGE}");
            return ExitCode::from(2);
        }
        let (baseline, current) = match (load(&paths[0]), load(&paths[1])) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(err), _) | (_, Err(err)) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        };
        return match microbench(&baseline, &current, max_ratio) {
            Ok(cmp) => {
                print!("{}", cmp.render());
                if cmp.has_regressions() {
                    println!("allocation regressions beyond {max_ratio:.2}x the baseline detected");
                    ExitCode::FAILURE
                } else {
                    println!("no allocation regressions beyond {max_ratio:.2}x the baseline");
                    ExitCode::SUCCESS
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::from(2)
            }
        };
    }

    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it.next().and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(v) if v > 0.0 && v < 1.0 => threshold = v,
                    _ => {
                        eprintln!("error: --threshold needs a fraction in (0, 1)\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("error: expected a baseline and a current report\n{USAGE}");
        return ExitCode::from(2);
    }

    let (baseline, current) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    match compare(&baseline, &current, threshold) {
        Ok(cmp) => {
            print!("{}", cmp.render());
            if cmp.has_regressions() {
                println!(
                    "throughput regressions beyond {:.0}% detected",
                    threshold * 100.0
                );
                ExitCode::FAILURE
            } else {
                println!("no throughput regressions beyond {:.0}%", threshold * 100.0);
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
