//! Compares two `BENCH_*.json` reports and flags throughput regressions.
//!
//! ```text
//! compare_bench <baseline.json> <current.json> [--threshold 0.25]
//! compare_bench --validate <file.json>...
//! compare_bench --digests <baseline DIGESTS.json> <current DIGESTS.json>
//! ```
//!
//! Exit codes: 0 = no regression (or all files valid / no digest drift), 1 = regression
//! or digest drift found, 2 = usage or input error. CI runs the comparison as a blocking
//! gate: the simulator is seeded and deterministic, so a >25% throughput regression of
//! the baseline scenario is a real code-path change, not noise — and any digest drift is
//! a real behaviour change. A deliberate trade-off ships with a regenerated
//! `BENCH_baseline.json` (or `DIGESTS.json`) and an explanation in the PR.

use pocc_bench::compare::{compare, DEFAULT_THRESHOLD};
use pocc_bench::digest::DigestCorpus;
use pocc_bench::json;
use std::process::ExitCode;

const USAGE: &str = "\
USAGE:
  compare_bench <baseline.json> <current.json> [--threshold <fraction>]
  compare_bench --validate <file.json>...
  compare_bench --digests <baseline.json> <current.json>
";

fn load(path: &str) -> Result<json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--validate") {
        if args.len() < 2 {
            eprintln!("error: --validate needs at least one file\n{USAGE}");
            return ExitCode::from(2);
        }
        for path in &args[1..] {
            let doc = match load(path) {
                Ok(doc) => doc,
                Err(err) => {
                    eprintln!("error: {err}");
                    return ExitCode::from(2);
                }
            };
            if let Err(err) = json::validate_report(&doc) {
                eprintln!("error: {path}: schema validation failed: {err}");
                return ExitCode::from(2);
            }
            println!("{path}: schema v{} OK", json::SCHEMA_VERSION);
        }
        return ExitCode::SUCCESS;
    }

    if args.first().map(String::as_str) == Some("--digests") {
        if args.len() != 3 {
            eprintln!("error: --digests needs a baseline and a current corpus\n{USAGE}");
            return ExitCode::from(2);
        }
        let corpus = |path: &str| -> Result<DigestCorpus, String> {
            DigestCorpus::from_json(&load(path)?).map_err(|e| format!("{path}: {e}"))
        };
        let (baseline, current) = match (corpus(&args[1]), corpus(&args[2])) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(err), _) | (_, Err(err)) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        };
        let diff = baseline.diff(&current);
        return if diff.is_empty() {
            println!(
                "digest corpora agree: {} scenarios, {} points",
                baseline.scenarios.len(),
                baseline
                    .scenarios
                    .iter()
                    .map(|s| s.points.len())
                    .sum::<usize>()
            );
            ExitCode::SUCCESS
        } else {
            for line in &diff {
                println!("{line}");
            }
            println!(
                "\n{} digest difference(s): behaviour drifted from the checked-in corpus.",
                diff.len()
            );
            println!(
                "If the change is intentional, regenerate with: \
                 runner --scenario all --scale {} --digests DIGESTS.json",
                baseline.scale
            );
            ExitCode::FAILURE
        };
    }

    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it.next().and_then(|v| v.parse::<f64>().ok());
                match v {
                    Some(v) if v > 0.0 && v < 1.0 => threshold = v,
                    _ => {
                        eprintln!("error: --threshold needs a fraction in (0, 1)\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("error: expected a baseline and a current report\n{USAGE}");
        return ExitCode::from(2);
    }

    let (baseline, current) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    match compare(&baseline, &current, threshold) {
        Ok(cmp) => {
            print!("{}", cmp.render());
            if cmp.has_regressions() {
                println!(
                    "throughput regressions beyond {:.0}% detected",
                    threshold * 100.0
                );
                ExitCode::FAILURE
            } else {
                println!("no throughput regressions beyond {:.0}%", threshold * 100.0);
                ExitCode::SUCCESS
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
