//! Figure 1c — Throughput with different GET:PUT ratios (write-intensity sensitivity).

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header("Figure 1c", "throughput vs GET:PUT ratio", scale);
    let ratios: Vec<usize> = match scale {
        Scale::Quick => vec![8, 4, 2, 1],
        Scale::Full => vec![32, 16, 8, 4, 2, 1],
    };
    let clients = match scale {
        Scale::Quick => 256,
        Scale::Full => 192,
    };

    bench::row(&[
        "GET:PUT".into(),
        "Cure* (ops/s)".into(),
        "POCC (ops/s)".into(),
        "POCC/Cure*".into(),
    ]);
    for &ratio in &ratios {
        let mut tput = Vec::new();
        for protocol in [ProtocolKind::Cure, ProtocolKind::Pocc] {
            let report = bench::run(
                bench::point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(bench::get_put(ratio)),
            );
            tput.push(report.throughput_ops_per_sec);
        }
        bench::row(&[
            format!("{ratio}:1"),
            bench::fmt_tput(tput[0]),
            bench::fmt_tput(tput[1]),
            bench::fmt_f(tput[1] / tput[0].max(1.0)),
        ]);
    }
    println!("\nExpected shape: throughput decreases with write intensity for both systems;");
    println!("POCC loses slightly more (the paper reports at most ~10% at 2:1) because higher");
    println!("update rates increase the chance that an operation blocks on a missing dependency.");
}
