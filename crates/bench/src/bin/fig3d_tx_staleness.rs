//! Figure 3d — Data staleness under the transactional workload: percentage of old items
//! returned by POCC and Cure\*, and of unmerged items returned by Cure\*.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 3d",
        "staleness of transactional reads vs clients per partition",
        scale,
    );
    let tx_size = scale.max_partitions() / 2;
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64, 96, 128, 192],
        Scale::Full => vec![40, 80, 120, 160, 200],
    };

    bench::row(&[
        "clients/part".into(),
        "POCC % old".into(),
        "Cure* % old".into(),
        "Cure* % unm".into(),
    ]);
    for &clients in &client_sweep {
        let mut cells = vec![clients.to_string()];
        let pocc = bench::run(
            bench::point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(bench::tx_put(tx_size)),
        );
        let cure = bench::run(
            bench::point(scale, ProtocolKind::Cure)
                .clients_per_partition(clients)
                .mix(bench::tx_put(tx_size)),
        );
        cells.push(bench::fmt_pct(pocc.old_tx_fraction()));
        cells.push(bench::fmt_pct(cure.old_tx_fraction()));
        cells.push(bench::fmt_pct(cure.unmerged_tx_fraction()));
        bench::row(&cells);
    }
    println!("\nExpected shape: POCC's transactional staleness is one to two orders of magnitude");
    println!("lower than Cure*'s, because its snapshots are bounded by the items *received* at");
    println!("the coordinator rather than the items *stable* at the coordinator.");
}
