//! Figure 2b — Data staleness perceived by clients of Cure\* as the load increases
//! (% old and % unmerged GETs, plus the average number of fresher / unmerged versions).

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header("Figure 2b", "data staleness in Cure*", scale);
    let p = scale.max_partitions();
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64, 128, 192, 256, 320],
        Scale::Full => vec![32, 64, 128, 192, 256, 320, 384],
    };

    bench::row(&[
        "clients/part".into(),
        "tput (ops/s)".into(),
        "% old".into(),
        "% unmerged".into(),
        "# fresher".into(),
        "# unmerged".into(),
    ]);
    for &clients in &client_sweep {
        let report = bench::run(
            bench::point(scale, ProtocolKind::Cure)
                .clients_per_partition(clients)
                .mix(bench::get_put(p)),
        );
        bench::row(&[
            clients.to_string(),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_pct(report.old_get_fraction()),
            bench::fmt_pct(report.unmerged_get_fraction()),
            bench::fmt_f(report.server_metrics.avg_fresher_versions()),
            bench::fmt_f(report.server_metrics.avg_unmerged_versions()),
        ]);
    }
    println!("\nExpected shape: the fraction of stale (old/unmerged) GETs grows with the load as");
    println!("the stabilization protocol falls behind replication. POCC is immune by design:");
    println!("its GETs always return the freshest received version (0% old).");
}
