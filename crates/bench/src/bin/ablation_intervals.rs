//! Ablation (not in the paper): sensitivity of both systems to their protocol timers and
//! to clock skew.
//!
//! * Cure\*'s stabilization interval trades CPU/messages against data staleness
//!   (the paper mentions this trade-off when discussing Figure 2b).
//! * POCC's heartbeat interval `∆` bounds how long a blocked operation waits when the
//!   missing dependency's partition is idle.
//! * Clock skew inflates POCC's PUT clock-wait and its spurious blocking.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let p = scale.max_partitions();
    let clients = 64;

    bench::header(
        "Ablation A1.1",
        "Cure*: stabilization interval vs staleness",
        scale,
    );
    bench::row(&[
        "stab (ms)".into(),
        "tput (ops/s)".into(),
        "% old GETs".into(),
        "stab msgs".into(),
    ]);
    for stab_ms in [1u64, 5, 20, 50] {
        let mut deployment = bench::deployment(scale, p);
        deployment.stabilization_interval = Duration::from_millis(stab_ms);
        let report = bench::run(
            bench::point(scale, ProtocolKind::Cure)
                .deployment(deployment)
                .clients_per_partition(clients)
                .mix(bench::get_put(p)),
        );
        bench::row(&[
            stab_ms.to_string(),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_pct(report.old_get_fraction()),
            report.server_metrics.stabilization_messages.to_string(),
        ]);
    }

    println!();
    bench::header(
        "Ablation A1.2",
        "POCC: heartbeat interval vs blocking",
        scale,
    );
    bench::row(&[
        "heartbeat (ms)".into(),
        "tput (ops/s)".into(),
        "block prob".into(),
        "block time ms".into(),
    ]);
    for hb_us in [500u64, 1_000, 5_000, 10_000] {
        let mut deployment = bench::deployment(scale, p);
        deployment.heartbeat_interval = Duration::from_micros(hb_us);
        let report = bench::run(
            bench::point(scale, ProtocolKind::Pocc)
                .deployment(deployment)
                .clients_per_partition(clients)
                .mix(bench::get_put(p)),
        );
        bench::row(&[
            format!("{:.1}", hb_us as f64 / 1_000.0),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_prob(report.blocking_probability()),
            bench::fmt_ms(report.avg_block_time()),
        ]);
    }

    println!();
    bench::header("Ablation A1.3", "POCC: clock skew vs blocking", scale);
    bench::row(&[
        "skew (ms)".into(),
        "tput (ops/s)".into(),
        "block prob".into(),
        "clock wait ms".into(),
    ]);
    for skew_us in [0u64, 500, 2_000, 5_000] {
        let mut deployment = bench::deployment(scale, p);
        deployment.max_clock_skew = Duration::from_micros(skew_us);
        let report = bench::run(
            bench::point(scale, ProtocolKind::Pocc)
                .deployment(deployment)
                .clients_per_partition(clients)
                .mix(bench::get_put(p)),
        );
        bench::row(&[
            format!("{:.1}", skew_us as f64 / 1_000.0),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_prob(report.blocking_probability()),
            format!(
                "{:.3}",
                report.server_metrics.clock_wait_time.as_secs_f64() * 1e3
            ),
        ]);
    }
}
