//! Figure 3a — Throughput while varying the number of partitions contacted by each
//! read-only transaction (RO-TX + PUT workload).

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 3a",
        "throughput vs partitions contacted per RO-TX",
        scale,
    );
    let sweep: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4, 6, 8],
        Scale::Full => vec![2, 4, 8, 16, 24, 32],
    };
    let clients = match scale {
        Scale::Quick => 96,
        Scale::Full => 64,
    };

    bench::row(&[
        "parts/RO-TX".into(),
        "Cure* (ops/s)".into(),
        "POCC (ops/s)".into(),
        "POCC/Cure*".into(),
    ]);
    for &p in &sweep {
        let mut tput = Vec::new();
        for protocol in [ProtocolKind::Cure, ProtocolKind::Pocc] {
            let report = bench::run(
                bench::point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(bench::tx_put(p)),
            );
            tput.push(report.throughput_ops_per_sec);
        }
        bench::row(&[
            p.to_string(),
            bench::fmt_tput(tput[0]),
            bench::fmt_tput(tput[1]),
            bench::fmt_f(tput[1] / tput[0].max(1.0)),
        ]);
    }
    println!("\nExpected shape: comparable throughput for small transactions, with POCC pulling");
    println!("ahead (the paper reports up to ~15%) as transactions touch most partitions, thanks");
    println!("to its better resource efficiency (no stabilization, no chain searches).");
}
