//! Figure 1b — Average response time vs throughput (GET:PUT = p:1, all partitions).
//!
//! The load is increased by adding closed-loop clients; each row reports the achieved
//! throughput and the average operation response time for both systems.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header("Figure 1b", "avg. response time vs throughput", scale);
    let p = scale.max_partitions();
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64, 128, 192, 256, 320],
        Scale::Full => vec![32, 64, 128, 192, 256, 320, 384],
    };

    bench::row(&[
        "clients/part".into(),
        "Cure* ops/s".into(),
        "Cure* avg ms".into(),
        "POCC ops/s".into(),
        "POCC avg ms".into(),
    ]);
    for &clients in &client_sweep {
        let mut cells = vec![clients.to_string()];
        for protocol in [ProtocolKind::Cure, ProtocolKind::Pocc] {
            let report = bench::run(
                bench::point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(bench::get_put(p)),
            );
            cells.push(bench::fmt_tput(report.throughput_ops_per_sec));
            cells.push(bench::fmt_ms(report.latency_all.mean()));
        }
        bench::row(&cells);
    }
    println!("\nExpected shape: POCC's response time sits slightly below Cure*'s until the");
    println!("saturation point, beyond which POCC degrades slightly faster (blocking).");
}
