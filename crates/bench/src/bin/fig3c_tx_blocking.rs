//! Figure 3c — Blocking behaviour of POCC under the transactional workload, as a function
//! of the number of clients per partition.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 3c",
        "POCC blocking probability and blocking time vs clients per partition",
        scale,
    );
    let tx_size = scale.max_partitions() / 2;
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![16, 32, 64, 96, 128, 192],
        Scale::Full => vec![32, 64, 96, 128, 160, 192, 224],
    };

    bench::row(&[
        "clients/part".into(),
        "tput (ops/s)".into(),
        "block prob".into(),
        "block time ms".into(),
    ]);
    for &clients in &client_sweep {
        let report = bench::run(
            bench::point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(bench::tx_put(tx_size)),
        );
        bench::row(&[
            clients.to_string(),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_prob(report.blocking_probability()),
            bench::fmt_ms(report.avg_block_time()),
        ]);
    }
    println!("\nExpected shape: the blocking probability is higher than in the GET/PUT workload");
    println!("(transactional slices wait for their snapshot) and peaks around the throughput");
    println!("peak; the blocking time first shrinks with load, then grows under overload.");
}
