//! The unified benchmark runner: runs named scenarios and writes `BENCH_<name>.json`.
//!
//! ```text
//! runner --list
//! runner --scenario fig1a_scalability --out BENCH_fig1a_scalability.json
//! runner --scenario all --scale smoke --out-dir bench-out
//! ```
//!
//! Every report is validated against the versioned schema before it is written, so a
//! malformed report fails the run instead of poisoning downstream tooling.

use pocc_bench::digest::DigestCorpus;
use pocc_bench::scenarios::{self, PointResult, ScenarioKind};
use pocc_bench::{fmt_ms, fmt_tput, json, Scale};
use std::process::ExitCode;

struct Args {
    scenarios: Vec<String>,
    scale: Scale,
    out: Option<String>,
    out_dir: String,
    digests: Option<String>,
    list: bool,
}

const USAGE: &str = "\
USAGE: runner [OPTIONS]

OPTIONS:
  --list                 list registered scenarios and exit
  --scenario <sel>       scenario to run (repeatable); a selector is an exact name,
                         a trailing-* prefix glob such as 'chaos_*', or 'all'
  --scale <scale>        smoke | quick | full (default: POCC_BENCH_SCALE or quick)
  --out <file>           output path (single scenario only; default BENCH_<name>.json)
  --out-dir <dir>        directory for BENCH_<name>.json files (default: .)
  --digests <file>       also write a digest corpus (DIGESTS.json) covering every
                         scenario run
  -h, --help             show this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenarios: Vec::new(),
        scale: Scale::from_env(),
        out: None,
        out_dir: ".".into(),
        digests: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => args.list = true,
            "--scenario" => {
                let name = it.next().ok_or("--scenario needs a name")?;
                args.scenarios.push(name);
            }
            "--scale" => {
                let name = it.next().ok_or("--scale needs a value")?;
                args.scale =
                    Scale::parse(&name).ok_or_else(|| format!("unknown scale {name:?}"))?;
            }
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--digests" => args.digests = Some(it.next().ok_or("--digests needs a path")?),
            "--out-dir" => args.out_dir = it.next().ok_or("--out-dir needs a path")?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn print_point(result: &PointResult) {
    let r = &result.report;
    println!(
        "    {:<40} {:>12} ops/s   p50 {:>9} ms   p99 {:>9} ms   p999 {:>9} ms",
        result.label,
        fmt_tput(r.throughput_ops_per_sec),
        fmt_ms(r.latency_all.p50()),
        fmt_ms(r.latency_all.p99()),
        fmt_ms(r.latency_all.p999()),
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        println!(
            "{:<24} {:<22} {:<10} {:>7}  DESCRIPTION",
            "NAME", "X-AXIS", "KIND", "POINTS"
        );
        for scenario in scenarios::all() {
            println!(
                "{:<24} {:<22} {:<10} {:>7}  {}",
                scenario.name,
                scenario.x_axis,
                scenario.kind.name(),
                scenario.points(args.scale).len(),
                scenario.title
            );
        }
        println!(
            "\n(point counts at {} scale; wall-clock scenarios run on OS threads and \
             are excluded from --digests corpora)",
            args.scale.name()
        );
        return ExitCode::SUCCESS;
    }

    if args.scenarios.is_empty() {
        eprintln!("error: no --scenario given (use --list to see the registry)\n{USAGE}");
        return ExitCode::from(2);
    }

    let selected = match scenarios::select(&args.scenarios) {
        Ok(selected) => selected,
        Err(err) => {
            eprintln!("error: {err}\n\nregistered scenarios:");
            for scenario in scenarios::all() {
                eprintln!("  {:<24} {}", scenario.name, scenario.title);
            }
            eprintln!("\nuse 'all' to run the whole registry, or --list for details");
            return ExitCode::from(2);
        }
    };

    if args.out.is_some() && selected.len() != 1 {
        eprintln!("error: --out is only valid with exactly one scenario; use --out-dir");
        return ExitCode::from(2);
    }

    // Fail on an unwritable output directory *before* spending simulation time.
    if args.out.is_none() {
        if let Err(err) = std::fs::create_dir_all(&args.out_dir) {
            eprintln!("error: cannot create --out-dir {}: {err}", args.out_dir);
            return ExitCode::from(2);
        }
    }

    let mut corpus = DigestCorpus::new(args.scale.name());
    for scenario in &selected {
        println!(
            "=== {} ({} scale) — {}",
            scenario.name,
            args.scale.name(),
            scenario.title
        );
        let report = scenario.run(args.scale, print_point);
        match scenario.kind {
            ScenarioKind::Sim => corpus.add_report(&report),
            ScenarioKind::Parallel => {
                if args.digests.is_some() {
                    println!(
                        "    (wall-clock scenario: timing-dependent, left out of the \
                         digest corpus)"
                    );
                }
            }
        }
        let doc = report.to_json();
        if let Err(err) = json::validate_report(&doc) {
            eprintln!("error: {}: schema validation failed: {err}", scenario.name);
            return ExitCode::FAILURE;
        }
        let path = match &args.out {
            Some(path) => path.clone(),
            None => format!("{}/BENCH_{}.json", args.out_dir, scenario.name),
        };
        if let Err(err) = std::fs::write(&path, doc.to_pretty()) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("    -> {path} (schema v{} OK)\n", json::SCHEMA_VERSION);
    }
    if let Some(path) = &args.digests {
        if let Err(err) = std::fs::write(path, corpus.to_json().to_pretty()) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!(
            "digest corpus -> {path} ({} scenarios, digest schema v{})",
            corpus.scenarios.len(),
            pocc_bench::digest::DIGEST_SCHEMA_VERSION
        );
    }
    ExitCode::SUCCESS
}
