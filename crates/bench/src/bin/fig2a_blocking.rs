//! Figure 2a — Blocking behaviour of POCC (probability and average blocking time) as the
//! load increases (GET:PUT = p:1 workload).

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Figure 2a",
        "blocking probability and blocking time in POCC",
        scale,
    );
    let p = scale.max_partitions();
    let client_sweep: Vec<usize> = match scale {
        Scale::Quick => vec![32, 64, 128, 192, 256, 320],
        Scale::Full => vec![32, 64, 128, 192, 256, 320, 384],
    };

    bench::row(&[
        "clients/part".into(),
        "tput (ops/s)".into(),
        "block prob".into(),
        "block time ms".into(),
    ]);
    for &clients in &client_sweep {
        let report = bench::run(
            bench::point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(bench::get_put(p)),
        );
        bench::row(&[
            clients.to_string(),
            bench::fmt_tput(report.throughput_ops_per_sec),
            bench::fmt_prob(report.blocking_probability()),
            bench::fmt_ms(report.avg_block_time()),
        ]);
    }
    println!("\nExpected shape: the blocking probability is negligible (<1e-3) below saturation");
    println!("and only becomes noticeable as the system approaches its maximum throughput;");
    println!("blocking times stay in the sub-millisecond range until saturation.");
}
