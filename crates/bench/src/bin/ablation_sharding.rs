//! Ablation — storage sharding and replication batching.
//!
//! Sweeps the two knobs introduced by the sharded-storage refactor over a write-heavy
//! workload (GET:PUT = 2:1, the regime where replication traffic and store-insert
//! pressure dominate):
//!
//! * `shards ∈ {1, 4, 8}` — intra-partition key-hashed shards per store
//!   (`Config::storage_shards`; `1` is the original unsharded store),
//! * `batching ∈ {off, on}` — per-destination coalescing of replication/GC messages
//!   into one batch per peer per tick (`Config::replication_batching`).
//!
//! The first row (1 shard, batching off) is the seed configuration; every other row
//! should match or beat its throughput. Batching shows up directly in the "msgs" and
//! "bytes" columns: the inter-DC links carry one envelope per peer per tick instead of
//! one message per write.

use pocc_bench as bench;
use pocc_bench::Scale;
use pocc_sim::ProtocolKind;

fn main() {
    let scale = Scale::from_env();
    bench::header(
        "Ablation",
        "storage shards x replication batching (POCC, GET:PUT = 2:1)",
        scale,
    );
    bench::row(&[
        "shards".into(),
        "batching".into(),
        "tput (op/s)".into(),
        "p50 resp (ms)".into(),
        "repl msgs".into(),
        "batches".into(),
        "MB sent".into(),
    ]);

    for &shards in &[1usize, 4, 8] {
        for &batching in &[false, true] {
            let report = bench::run(
                bench::point(scale, ProtocolKind::Pocc)
                    .storage_shards(shards)
                    .replication_batching(batching)
                    .clients_per_partition(24)
                    .mix(bench::get_put(2)),
            );
            let m = &report.server_metrics;
            bench::row(&[
                shards.to_string(),
                if batching { "on" } else { "off" }.into(),
                bench::fmt_tput(report.throughput_ops_per_sec),
                bench::fmt_ms(report.latency_all.quantile(0.50)),
                m.replicate_sent.to_string(),
                m.batches_sent.to_string(),
                format!("{:.2}", m.bytes_sent as f64 / 1e6),
            ]);
        }
    }
}
