//! Wall-clock benchmark driver for the threaded shard-parallel execution runtime.
//!
//! The simulator measures protocol behaviour in virtual time; this module measures the
//! real thing: a [`ParallelServer`] running on OS threads, fed a pre-generated
//! write-heavy operation stream and timed with a wall clock. The `core_scaling`
//! scenario sweeps the worker-lane count over the same stream and reports throughput
//! per lane count — the number CI's `parallel-smoke` job gates with
//! `compare_bench --scaling`.
//!
//! Two drivers share this module. `core_scaling` runs a single-replica server and
//! measures pure client throughput. `replication_scaling` configures the server as one
//! replica of a multi-replica deployment and feeds it *replicated remote versions* —
//! batched `Replicate` envelopes from synthetic sibling origins, at twice the local
//! write volume — alongside the client stream, measuring how the per-origin remote
//! apply pipeline scales with the lane count.
//!
//! Wall-clock runs are timing-dependent, so scenarios of this kind
//! ([`crate::scenarios::ScenarioKind::Parallel`]) are excluded from the digest corpus.
//! Their reports serialise to the same versioned `BENCH_*.json` schema with empty
//! latency blocks: lanes reply through an asynchronous sink, so per-operation latency
//! is not measured — throughput over the measured stream is the figure of merit.

use crate::scenarios::ScenarioPoint;
use crate::Scale;
use pocc_clock::{MonotonicClock, SystemClock};
use pocc_exec::{ExecProtocol, OutputSink, ParallelServer};
use pocc_net::NetworkStats;
use pocc_proto::{ClientReply, ClientRequest, ServerIntrospect, ServerMessage, ServerOutput};
use pocc_sim::{LatencyStats, ProtocolKind, SimReport};
use pocc_types::{
    ClientId, DependencyVector, Key, PartitionId, ReplicaId, ServerId, Timestamp, Value, Version,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Remote versions per injected `Batch` envelope (matches the batcher's typical fill).
const REMOTE_BATCH: usize = 32;

/// Operations in the measured stream per point. Wall-clock points need enough work for
/// the lane ratio to be stable against scheduler noise, but the smoke size still has to
/// finish in well under a second per point so the scenario tests and CI stay fast.
fn measured_ops(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 160_000,
        Scale::Quick => 480_000,
        Scale::Full => 1_600_000,
    }
}

/// Consecutive operations of one class before switching: submitting GETs and PUTs in
/// short runs (rather than strictly alternating) lets lanes drain snapshot-covered
/// GET-only batches without touching the write spine.
const RUN_LENGTH: u64 = 16;

fn exec_protocol(kind: ProtocolKind) -> ExecProtocol {
    match kind {
        ProtocolKind::Pocc => ExecProtocol::Pocc,
        ProtocolKind::Cure => ExecProtocol::Cure,
        ProtocolKind::HaPocc => ExecProtocol::HaPocc,
        ProtocolKind::Adaptive => ExecProtocol::Adaptive,
    }
}

/// The pre-generated operation stream: a 1:1 GET:PUT mix (the repo's "write-heavy" mix)
/// in runs of [`RUN_LENGTH`], keys scattered over the keyspace by a multiplicative hash
/// so every lane sees an even share of both classes.
fn generate_ops(
    n: u64,
    keys: u64,
    value_size: usize,
    num_replicas: usize,
) -> Vec<(ClientId, ClientRequest)> {
    let payload = Value::from(vec![0x5a_u8; value_size.max(1)]);
    (0..n)
        .map(|i| {
            let key = Key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % keys.max(1));
            let request = if (i / RUN_LENGTH).is_multiple_of(2) {
                ClientRequest::Put {
                    key,
                    value: payload.clone(),
                    dv: DependencyVector::zero(num_replicas),
                }
            } else {
                ClientRequest::Get {
                    key,
                    rdv: DependencyVector::zero(num_replicas),
                }
            };
            (ClientId(i), request)
        })
        .collect()
}

/// Pre-generated replication traffic from one synthetic sibling origin: `Batch`
/// envelopes of [`REMOTE_BATCH`] versions each, update times strictly increasing (the
/// FIFO order a real sibling's replication channel guarantees).
fn generate_remote_batches(
    origin: ReplicaId,
    n: u64,
    keys: u64,
    value_size: usize,
    num_replicas: usize,
) -> Vec<ServerMessage> {
    let payload = Value::from(vec![0xa5_u8; value_size.max(1)]);
    (0..n)
        .collect::<Vec<_>>()
        .chunks(REMOTE_BATCH)
        .map(|chunk| ServerMessage::Batch {
            messages: chunk
                .iter()
                .map(|&i| {
                    let key = Key((i.wrapping_add(u64::from(origin.0) << 32))
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        % keys.max(1));
                    ServerMessage::Replicate {
                        version: Version::new(
                            key,
                            payload.clone(),
                            origin,
                            Timestamp::from_micros(i + 1),
                            DependencyVector::zero(num_replicas),
                        ),
                    }
                })
                .collect(),
        })
        .collect()
}

fn wait_for(done: &AtomicU64, target: u64) {
    while done.load(Ordering::Acquire) < target {
        std::thread::yield_now();
    }
}

/// Runs one wall-clock point: a single-replica, single-partition [`ParallelServer`]
/// with `point.config.deployment.worker_lanes` lanes, fed the pre-generated stream, and
/// reports real throughput in the `SimReport` shape the `BENCH_*.json` pipeline expects.
///
/// Panics if the server loses or duplicates operations — a wall-clock benchmark run
/// doubles as a smoke-level correctness check of the threaded runtime.
pub fn run_point(scale: Scale, point: &ScenarioPoint) -> SimReport {
    if point.config.deployment.num_replicas > 1 {
        return run_replication_point(scale, point);
    }
    run_client_point(scale, point)
}

/// The single-replica client-throughput driver behind `core_scaling`.
fn run_client_point(scale: Scale, point: &ScenarioPoint) -> SimReport {
    let cfg = &point.config;
    let deployment = cfg.deployment.clone();
    let n = measured_ops(scale);
    let warmup_n = n / 8;
    let ops = generate_ops(warmup_n + n, cfg.keys_per_partition, cfg.value_size, 1);
    let issued_puts = ops
        .iter()
        .filter(|(_, r)| matches!(r, ClientRequest::Put { .. }))
        .count() as u64;
    let measured_puts = ops[warmup_n as usize..]
        .iter()
        .filter(|(_, r)| matches!(r, ClientRequest::Put { .. }))
        .count() as u64;

    let done = Arc::new(AtomicU64::new(0));
    let put_replies = Arc::new(AtomicU64::new(0));
    let sink: OutputSink = {
        let done = Arc::clone(&done);
        let put_replies = Arc::clone(&put_replies);
        Arc::new(move |out| {
            if let ServerOutput::Reply { reply, .. } = out {
                if matches!(reply, ClientReply::Put { .. }) {
                    put_replies.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Release);
            }
        })
    };

    let mut server = ParallelServer::start(
        ServerId::new(ReplicaId(0), PartitionId(0)),
        deployment,
        exec_protocol(cfg.protocol),
        MonotonicClock::new(SystemClock::new()),
        sink,
    );

    let (warm, measured) = ops.split_at(warmup_n as usize);
    for (client, request) in warm {
        server
            .submit_client(*client, request.clone())
            .expect("benchmark server is running");
    }
    wait_for(&done, warmup_n);

    let started = Instant::now();
    for (client, request) in measured {
        server
            .submit_client(*client, request.clone())
            .expect("benchmark server is running");
    }
    wait_for(&done, warmup_n + n);
    let measured_window = started.elapsed();

    assert_eq!(
        put_replies.load(Ordering::Relaxed),
        issued_puts,
        "{}: every issued PUT must be acknowledged exactly once",
        point.label
    );
    let server_metrics = server.metrics();
    assert_eq!(
        server_metrics.puts_served, issued_puts,
        "{}: every issued PUT must be published on the spine",
        point.label
    );
    let store = server.store_stats();
    let store_shards = server.shard_stats();
    server.shutdown();

    SimReport {
        protocol: cfg.protocol,
        replicas: cfg.deployment.num_replicas,
        partitions: cfg.deployment.num_partitions,
        clients: 1,
        measured_window,
        operations_completed: n,
        gets_completed: n - measured_puts,
        puts_completed: measured_puts,
        rotx_completed: 0,
        sessions_reinitialized: 0,
        throughput_ops_per_sec: n as f64 / measured_window.as_secs_f64(),
        latency_all: LatencyStats::new(),
        latency_get: LatencyStats::new(),
        latency_put: LatencyStats::new(),
        latency_rotx: LatencyStats::new(),
        server_metrics,
        network: NetworkStats::default(),
        store,
        store_shards,
        consistency_violations: 0,
        converged: true,
    }
}

/// The multi-replica remote-apply driver behind `replication_scaling`: one
/// [`ParallelServer`] acting as replica 0 of an `R`-replica deployment, fed a client
/// stream interleaved with batched `Replicate` traffic from the `R−1` synthetic sibling
/// origins at twice the client PUT volume — the ratio a real replica sees when every
/// replica writes at the same rate. Throughput counts client operations *and* applied
/// remote versions; the window closes only once every injected version has been
/// absorbed (the final metrics probe drains the pipeline).
fn run_replication_point(scale: Scale, point: &ScenarioPoint) -> SimReport {
    let cfg = &point.config;
    let deployment = cfg.deployment.clone();
    let replicas = deployment.num_replicas;
    let n = measured_ops(scale) / 2;
    let warmup_n = n / 8;
    let ops = generate_ops(
        warmup_n + n,
        cfg.keys_per_partition,
        cfg.value_size,
        replicas,
    );
    let issued_puts = ops
        .iter()
        .filter(|(_, r)| matches!(r, ClientRequest::Put { .. }))
        .count() as u64;

    // Twice the measured client PUT volume, split evenly over the sibling origins.
    let remote_per_origin = n / (replicas as u64 - 1);
    let origins: Vec<(ServerId, Vec<ServerMessage>)> = (1..replicas as u16)
        .map(|r| {
            let origin = ReplicaId(r);
            (
                ServerId::new(origin, PartitionId(0)),
                generate_remote_batches(
                    origin,
                    remote_per_origin,
                    cfg.keys_per_partition,
                    cfg.value_size,
                    replicas,
                ),
            )
        })
        .collect();
    let remote_total: u64 = remote_per_origin * (replicas as u64 - 1);

    let done = Arc::new(AtomicU64::new(0));
    let put_replies = Arc::new(AtomicU64::new(0));
    let sink: OutputSink = {
        let done = Arc::clone(&done);
        let put_replies = Arc::clone(&put_replies);
        Arc::new(move |out| {
            // Replication fan-out of local PUTs (`Send` outputs) has no receiver here.
            if let ServerOutput::Reply { reply, .. } = out {
                if matches!(reply, ClientReply::Put { .. }) {
                    put_replies.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Release);
            }
        })
    };

    let mut server = ParallelServer::start(
        ServerId::new(ReplicaId(0), PartitionId(0)),
        deployment,
        exec_protocol(cfg.protocol),
        MonotonicClock::new(SystemClock::new()),
        sink,
    );

    let (warm, measured) = ops.split_at(warmup_n as usize);
    for (client, request) in warm {
        server
            .submit_client(*client, request.clone())
            .expect("benchmark server is running");
    }
    wait_for(&done, warmup_n);

    // Interleave: one round-robin pass over the origins' batch streams per
    // [`REMOTE_BATCH`]-sized run of client operations, so remote apply and client
    // traffic genuinely contend the way they do on a live replica.
    let started = Instant::now();
    let mut remote_iters: Vec<_> = origins
        .iter()
        .map(|(origin, batches)| (*origin, batches.iter()))
        .collect();
    for (i, (client, request)) in measured.iter().enumerate() {
        if i % REMOTE_BATCH == 0 {
            for (origin, iter) in &mut remote_iters {
                if let Some(batch) = iter.next() {
                    server.handle_server_message(*origin, batch.clone());
                }
            }
        }
        server
            .submit_client(*client, request.clone())
            .expect("benchmark server is running");
    }
    // The client stream can outpace the batch interleave; flush the stragglers.
    for (origin, iter) in &mut remote_iters {
        for batch in iter {
            server.handle_server_message(*origin, batch.clone());
        }
    }
    wait_for(&done, warmup_n + n);
    // The probe drains the remote pipeline, so the window covers every applied version.
    let server_metrics = server.metrics();
    let measured_window = started.elapsed();

    assert_eq!(
        put_replies.load(Ordering::Relaxed),
        issued_puts,
        "{}: every issued PUT must be acknowledged exactly once",
        point.label
    );
    assert_eq!(
        server_metrics.replicate_received, remote_total,
        "{}: every injected remote version must be absorbed",
        point.label
    );
    assert_eq!(
        server_metrics.puts_served, issued_puts,
        "{}: every issued PUT must be published on the spine",
        point.label
    );
    let store = server.store_stats();
    let store_shards = server.shard_stats();
    server.shutdown();

    let measured_puts = measured
        .iter()
        .filter(|(_, r)| matches!(r, ClientRequest::Put { .. }))
        .count() as u64;
    let total = n + remote_total;
    SimReport {
        protocol: cfg.protocol,
        replicas,
        partitions: cfg.deployment.num_partitions,
        clients: 1,
        measured_window,
        operations_completed: total,
        gets_completed: n - measured_puts,
        // Remote applies are write work; count them with the local PUTs.
        puts_completed: measured_puts + remote_total,
        rotx_completed: 0,
        sessions_reinitialized: 0,
        throughput_ops_per_sec: total as f64 / measured_window.as_secs_f64(),
        latency_all: LatencyStats::new(),
        latency_get: LatencyStats::new(),
        latency_put: LatencyStats::new(),
        latency_rotx: LatencyStats::new(),
        server_metrics,
        network: NetworkStats::default(),
        store,
        store_shards,
        consistency_violations: 0,
        converged: true,
    }
}
