//! A minimal JSON model, writer, parser and the versioned `BENCH_*.json` schema.
//!
//! The workspace builds fully offline (no `serde_json`), so the benchmark harness
//! carries its own JSON layer: a [`Json`] value model with a deterministic pretty
//! printer (object keys keep insertion order, floats use Rust's shortest round-trip
//! formatting) and a recursive-descent parser for the subset of JSON the harness emits.
//! Determinism matters: the simulator is seeded, so the same scenario at the same scale
//! produces byte-identical `BENCH_*.json` on every machine, which is what lets CI diff a
//! fresh run against the checked-in baseline.
//!
//! The schema of a benchmark report is versioned ([`SCHEMA_VERSION`]) and enforced by
//! [`validate_report`]; the runner validates every report before writing it, and the
//! scenario round-trip test validates every registered scenario's output.

use std::fmt::Write as _;

/// The version of the `BENCH_*.json` schema emitted by this crate. The validator matches
/// the schema exactly (every documented field is required), so *any* shape change —
/// adding, renaming or removing a field — bumps the version; consumers comparing across
/// versions must regenerate the older report. v2 added
/// `staleness.stable_fallback_gets` (the Adaptive protocol's fall-back counter); v3
/// added `store.live_bytes` (approximate bytes of retained version data, the signal
/// pressure-adaptive GC keys off); v4 added the `contention` block (lane fast-path
/// hit/miss counts, spine-mutex acquisitions and pipeline-drain spins of the threaded
/// runtime — all zero for simulated scenarios).
pub const SCHEMA_VERSION: u64 = 4;

/// The version of the `MICROBENCH_*.json` schema emitted by `storage_microbench --json`
/// and gated by `compare_bench --microbench`. Distinct from [`SCHEMA_VERSION`]: the
/// microbench report is a flat list of harness-level measurements (ns/op, allocs/op),
/// not a scenario report.
pub const MICROBENCH_SCHEMA_VERSION: u64 = 1;

/// A JSON value. Object keys keep insertion order so output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; benchmark counters are well below 2^53, so `f64` is lossless here.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from anything convertible to `f64`.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// A number from a `u64` counter (lossless for counters below 2^53, which every
    /// metric this crate emits is).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value as pretty-printed JSON (2-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; benchmark metrics never produce them, but never emit
        // invalid JSON if one slips through.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's shortest round-trip float formatting: deterministic across platforms.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------------------

/// Parses a JSON document. Returns a readable error with a byte offset on malformed
/// input; trailing content after the top-level value is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8")?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..len]).unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

// ---------------------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------------------

/// The required shape of one latency block (all values in microseconds).
const LATENCY_FIELDS: [&str; 7] = ["count", "mean", "p50", "p95", "p99", "p999", "max"];

fn require<'j>(obj: &'j Json, path: &str, key: &str) -> Result<&'j Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{path}: missing required field {key:?}"))
}

fn require_num(obj: &Json, path: &str, key: &str) -> Result<f64, String> {
    let v = require(obj, path, key)?
        .as_f64()
        .ok_or_else(|| format!("{path}.{key}: expected a number"))?;
    // Every numeric field of the schema is a non-negative quantity (a count, duration,
    // throughput, probability or sweep coordinate). NaN and infinities additionally
    // have no JSON representation, so they would poison the written file.
    if !v.is_finite() {
        return Err(format!("{path}.{key}: expected a finite number, found {v}"));
    }
    if v < 0.0 {
        return Err(format!(
            "{path}.{key}: expected a non-negative number, found {v}"
        ));
    }
    Ok(v)
}

fn require_str(obj: &Json, path: &str, key: &str) -> Result<(), String> {
    require(obj, path, key)?
        .as_str()
        .map(|_| ())
        .ok_or_else(|| format!("{path}.{key}: expected a string"))
}

fn require_bool(obj: &Json, path: &str, key: &str) -> Result<(), String> {
    require(obj, path, key)?
        .as_bool()
        .map(|_| ())
        .ok_or_else(|| format!("{path}.{key}: expected a bool"))
}

fn validate_latency_block(block: &Json, path: &str) -> Result<(), String> {
    for field in LATENCY_FIELDS {
        require_num(block, path, field)?;
    }
    let p50 = require_num(block, path, "p50")?;
    let p95 = require_num(block, path, "p95")?;
    let p99 = require_num(block, path, "p99")?;
    let p999 = require_num(block, path, "p999")?;
    let max = require_num(block, path, "max")?;
    if !(p50 <= p95 && p95 <= p99 && p99 <= p999 && p999 <= max) {
        return Err(format!(
            "{path}: percentiles must be ordered (p50 {p50} <= p95 {p95} <= p99 {p99} <= p999 {p999} <= max {max})"
        ));
    }
    Ok(())
}

/// Validates a `BENCH_*.json` document against schema [`SCHEMA_VERSION`].
///
/// Checks the presence and JSON type of every required field, that percentiles are
/// ordered within each latency block, and that at least one point is present. Unknown
/// extra fields are allowed (the schema is forward extensible).
pub fn validate_report(report: &Json) -> Result<(), String> {
    let version = require_num(report, "$", "schema_version")? as u64;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "$.schema_version: expected {SCHEMA_VERSION}, found {version}"
        ));
    }
    require_str(report, "$", "scenario")?;
    require_str(report, "$", "title")?;
    require_str(report, "$", "x_axis")?;
    require_str(report, "$", "scale")?;
    require_num(report, "$", "seed")?;

    let points = require(report, "$", "points")?
        .as_array()
        .ok_or("$.points: expected an array")?;
    if points.is_empty() {
        return Err("$.points: a report must contain at least one point".into());
    }
    for (i, point) in points.iter().enumerate() {
        validate_point(point, &format!("$.points[{i}]"))?;
    }
    Ok(())
}

fn validate_point(point: &Json, path: &str) -> Result<(), String> {
    require_str(point, path, "label")?;
    require_num(point, path, "x")?;
    require_str(point, path, "protocol")?;

    let config = require(point, path, "config")?;
    for key in [
        "replicas",
        "partitions",
        "clients",
        "storage_shards",
        "keys_per_partition",
        "value_size",
        "zipf_theta",
        "measured_window_s",
    ] {
        require_num(config, &format!("{path}.config"), key)?;
    }
    require_bool(config, &format!("{path}.config"), "replication_batching")?;

    require_num(point, path, "throughput_ops_per_sec")?;

    let ops = require(point, path, "operations")?;
    for key in ["total", "gets", "puts", "rotx", "sessions_reinitialized"] {
        require_num(ops, &format!("{path}.operations"), key)?;
    }

    let latency = require(point, path, "latency_us")?;
    for class in ["all", "get", "put", "rotx"] {
        let block = require(latency, &format!("{path}.latency_us"), class)?;
        validate_latency_block(block, &format!("{path}.latency_us.{class}"))?;
    }

    let blocking = require(point, path, "blocking")?;
    for key in [
        "probability",
        "blocked_operations",
        "avg_block_time_us",
        "clock_wait_time_us",
    ] {
        require_num(blocking, &format!("{path}.blocking"), key)?;
    }

    let staleness = require(point, path, "staleness")?;
    for key in [
        "old_get_fraction",
        "unmerged_get_fraction",
        "old_tx_fraction",
        "unmerged_tx_fraction",
        "stable_fallback_gets",
    ] {
        require_num(staleness, &format!("{path}.staleness"), key)?;
    }

    let network = require(point, path, "network")?;
    for key in [
        "messages_sent",
        "wan_messages",
        "bytes_sent",
        "held_messages",
    ] {
        require_num(network, &format!("{path}.network"), key)?;
    }

    let replication = require(point, path, "replication")?;
    for key in [
        "replicate_sent",
        "batches_sent",
        "heartbeats_sent",
        "stabilization_messages",
        "gc_messages",
        "gc_versions_removed",
        "sessions_aborted",
    ] {
        require_num(replication, &format!("{path}.replication"), key)?;
    }

    let store = require(point, path, "store")?;
    for key in [
        "keys",
        "versions",
        "max_chain_len",
        "gc_removed",
        "live_bytes",
    ] {
        require_num(store, &format!("{path}.store"), key)?;
    }
    require(store, &format!("{path}.store"), "per_shard_versions")?
        .as_array()
        .ok_or_else(|| format!("{path}.store.per_shard_versions: expected an array"))?;

    let contention = require(point, path, "contention")?;
    for key in [
        "lane_fast_path_hits",
        "lane_fast_path_misses",
        "spine_acquisitions",
        "drain_spins",
    ] {
        require_num(contention, &format!("{path}.contention"), key)?;
    }

    let consistency = require(point, path, "consistency")?;
    require_num(consistency, &format!("{path}.consistency"), "violations")?;
    require_bool(consistency, &format!("{path}.consistency"), "converged")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_deterministic_pretty_output() {
        let doc = Json::Obj(vec![
            ("b".into(), Json::u64(2)),
            ("a".into(), Json::num(1.5)),
            (
                "nested".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\"y")]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        // Insertion order is preserved; keys are not sorted.
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(text.contains("1.5"));
        assert!(text.contains("\\\""));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::Obj(vec![
            ("count".into(), Json::u64(12345)),
            ("ratio".into(), Json::num(0.3333333333333333)),
            ("name".into(), Json::str("fig1a — sweep\n\"quoted\"")),
            (
                "points".into(),
                Json::Arr(vec![Json::num(1), Json::num(-2.5), Json::Bool(false)]),
            ),
            ("none".into(), Json::Null),
        ]);
        let parsed = parse(&doc.to_pretty()).expect("writer output parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "{} extra", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_escapes_and_numbers() {
        let v = parse(r#"{"s": "aA\n", "n": -1.25e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "aA\n");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -125.0);
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn validation_rejects_missing_fields_and_bad_percentiles() {
        let err = validate_report(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");

        let mut block = Json::Obj(
            LATENCY_FIELDS
                .iter()
                .map(|f| (f.to_string(), Json::num(10)))
                .collect(),
        );
        assert!(validate_latency_block(&block, "$").is_ok());
        if let Json::Obj(members) = &mut block {
            for (k, v) in members.iter_mut() {
                if k == "p95" {
                    *v = Json::num(99999);
                }
            }
        }
        let err = validate_latency_block(&block, "$").unwrap_err();
        assert!(err.contains("ordered"), "{err}");
    }
}
