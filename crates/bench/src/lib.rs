//! Shared harness code for the figure-reproduction binaries.
//!
//! Every figure of the paper's evaluation (§V) has a binary in `src/bin/` that sweeps the
//! same parameter the paper sweeps and prints the same series as an ASCII table. The
//! binaries share the sweep/printing machinery defined here.
//!
//! Two scales are supported, selected by the `POCC_BENCH_SCALE` environment variable:
//!
//! * `quick` (default) — a scaled-down deployment (8 partitions, shorter runs) that
//!   finishes in a couple of minutes on a laptop and reproduces the *shape* of every
//!   figure;
//! * `full` — the paper's deployment size (32 partitions per DC, 1 M keys per partition,
//!   longer measurement windows). Expect long run times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pocc_sim::{ProtocolKind, SimConfig, SimConfigBuilder, SimReport};
use pocc_workload::WorkloadMix;
use std::time::Duration;

/// The sweep scale, selected by the `POCC_BENCH_SCALE` environment variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Scaled-down deployment; minutes of wall-clock time for the whole figure set.
    Quick,
    /// The paper's deployment dimensions; hours of wall-clock time.
    Full,
}

impl Scale {
    /// Reads the scale from the environment (`POCC_BENCH_SCALE=quick|full`).
    pub fn from_env() -> Scale {
        match std::env::var("POCC_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Number of partitions per data center at this scale (the paper uses 32).
    pub fn max_partitions(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 32,
        }
    }

    /// Keys per partition at this scale (the paper uses one million).
    pub fn keys_per_partition(self) -> u64 {
        match self {
            Scale::Quick => 10_000,
            Scale::Full => 1_000_000,
        }
    }

    /// Measured window per point.
    pub fn duration(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(1),
            Scale::Full => Duration::from_secs(10),
        }
    }

    /// Warm-up per point.
    pub fn warmup(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(300),
            Scale::Full => Duration::from_secs(2),
        }
    }
}

/// The deployment used by the figure harnesses at the given scale and partition count:
/// 3 data centers with AWS-like latencies, the paper's protocol timers, and a per-request
/// CPU service time chosen so that the scaled-down deployment saturates within the client
/// counts the sweeps use (the full scale uses a faster per-op cost, matching the larger
/// fleet).
pub fn deployment(scale: Scale, partitions: usize) -> pocc_types::Config {
    pocc_types::Config::builder()
        .num_replicas(3)
        .num_partitions(partitions)
        .op_service_time(match scale {
            Scale::Quick => Duration::from_micros(100),
            Scale::Full => Duration::from_micros(40),
        })
        .build()
        .expect("benchmark deployment is valid")
}

/// One point of a sweep: a fully-specified simulation configuration.
pub fn point(scale: Scale, protocol: ProtocolKind) -> SimConfigBuilder {
    SimConfig::builder()
        .protocol(protocol)
        .deployment(deployment(scale, scale.max_partitions()))
        .keys_per_partition(scale.keys_per_partition())
        .zipf_theta(0.99)
        .think_time(Duration::from_millis(25))
        .warmup(scale.warmup())
        .duration(scale.duration())
        .drain(Duration::from_millis(200))
        .seed(42)
}

/// Runs one configured point and returns the report.
pub fn run(builder: SimConfigBuilder) -> SimReport {
    pocc_sim::Simulation::new(builder.build()).run()
}

/// Convenience: the GET:PUT mix of §V-B with `n` GETs per PUT.
pub fn get_put(n: usize) -> WorkloadMix {
    WorkloadMix::GetPut { gets_per_put: n }
}

/// Convenience: the transactional mix of §V-C with `p` partitions per RO-TX.
pub fn tx_put(p: usize) -> WorkloadMix {
    WorkloadMix::TxPut {
        partitions_per_tx: p,
    }
}

/// Prints a figure header.
pub fn header(figure: &str, caption: &str, scale: Scale) {
    println!("=== {figure} — {caption}");
    println!("    (scale: {scale:?}; set POCC_BENCH_SCALE=full for the paper's deployment size)\n");
}

/// Prints one table row of `columns` width-14 cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with 3 significant decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an ops/sec throughput.
pub fn fmt_tput(v: f64) -> String {
    format!("{:.0}", v)
}

/// Formats a duration in milliseconds with decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Formats a probability in scientific notation.
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".into()
    } else {
        format!("{p:.2e}")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{:.2}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // The environment variable is not set in the test environment.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.max_partitions(), 8);
        assert_eq!(Scale::Full.max_partitions(), 32);
        assert!(Scale::Full.keys_per_partition() > Scale::Quick.keys_per_partition());
    }

    #[test]
    fn formatting_helpers_are_stable() {
        assert_eq!(fmt_tput(1234.56), "1235");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_pct(0.1234), "12.34%");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert!(fmt_prob(0.01).contains('e'));
    }

    #[test]
    fn point_builder_produces_paper_like_defaults() {
        let cfg = point(Scale::Quick, ProtocolKind::Pocc)
            .clients_per_partition(2)
            .mix(get_put(4))
            .build();
        assert_eq!(cfg.deployment.num_replicas, 3);
        assert_eq!(cfg.deployment.num_partitions, 8);
        assert_eq!(cfg.think_time, Duration::from_millis(25));
        assert_eq!(cfg.zipf_theta, 0.99);
    }

    #[test]
    fn quick_point_runs_end_to_end() {
        let report = run(point(Scale::Quick, ProtocolKind::Pocc)
            .partitions(2)
            .clients_per_partition(1)
            .keys_per_partition(100)
            .warmup(Duration::from_millis(50))
            .duration(Duration::from_millis(200))
            .drain(Duration::from_millis(100))
            .mix(get_put(4)));
        assert!(report.operations_completed > 0);
    }
}
