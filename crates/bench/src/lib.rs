//! The scenario-driven benchmark harness of the POCC reproduction.
//!
//! Every evidence-producing run goes through one pipeline:
//!
//! * [`scenarios`] — a named registry of benchmark scenarios: the paper's figures
//!   (Fig. 1–3), the timer/sharding ablations, and workloads beyond the paper (hot-key
//!   skew, large values, read/write-heavy mixes, transaction-size sweeps, a
//!   partition-and-heal fault scenario). Each scenario expands to a list of
//!   fully-specified simulation points at a chosen [`Scale`].
//! * [`json`] — the versioned, machine-readable `BENCH_<scenario>.json` schema
//!   ([`json::SCHEMA_VERSION`]), plus the offline JSON writer/parser and the schema
//!   validator the runner and CI use.
//! * [`compare`] — regression detection between two benchmark reports (used by CI to
//!   diff a fresh smoke run against the checked-in `BENCH_baseline.json`).
//! * [`digest`] — one behaviour digest per scenario point, collected into the versioned
//!   `DIGESTS.json` corpus; `compare_bench --digests` diffs two corpora and CI runs that
//!   diff as a blocking drift gate.
//! * [`loadgen`] — the open-loop load generator behind the `loadgen` binary: drives the
//!   cluster runtime (channel or TCP transport) on a fixed arrival schedule with
//!   pipelined connections and coordinated-omission-safe latency capture, reporting
//!   through the same `BENCH_*.json` schema.
//! * [`parallel`] — the wall-clock driver behind `core_scaling`: runs the threaded
//!   shard-parallel server runtime (`pocc-exec`) on real OS threads and reports measured
//!   throughput per worker-lane count. Wall-clock scenarios are excluded from the digest
//!   corpus; CI gates their lane-scaling ratio with `compare_bench --scaling`.
//!
//! The `runner` binary drives it all: `cargo run --release -p pocc-bench --bin runner --
//! --scenario <name> --out BENCH_<name>.json`. The simulator is deterministic, so the
//! same scenario at the same scale produces byte-identical JSON on every machine.
//!
//! Three scales are supported, selected by `--scale` or the `POCC_BENCH_SCALE`
//! environment variable:
//!
//! * `smoke` — a tiny deployment (2 partitions, sub-second windows) that runs every
//!   scenario in seconds; used by the CI `bench-smoke` gate and the scenario tests;
//! * `quick` (default) — a scaled-down deployment (8 partitions, shorter runs) that
//!   finishes in a couple of minutes per figure and reproduces the *shape* of every
//!   figure;
//! * `full` — the paper's deployment size (32 partitions per DC, 1 M keys per
//!   partition, longer measurement windows). Expect long run times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod digest;
pub mod json;
pub mod loadgen;
pub mod parallel;
pub mod scenarios;

use pocc_sim::{ProtocolKind, SimConfig, SimConfigBuilder, SimReport};
use pocc_workload::WorkloadMix;
use std::time::Duration;

/// The sweep scale, selected by `--scale` or the `POCC_BENCH_SCALE` environment variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny deployment for CI smoke runs and tests; seconds of wall-clock for the whole
    /// scenario registry.
    Smoke,
    /// Scaled-down deployment; minutes of wall-clock time for the whole figure set.
    Quick,
    /// The paper's deployment dimensions; hours of wall-clock time.
    Full,
}

impl Scale {
    /// Reads the scale from the environment (`POCC_BENCH_SCALE=smoke|quick|full`).
    pub fn from_env() -> Scale {
        std::env::var("POCC_BENCH_SCALE")
            .ok()
            .and_then(|v| Scale::parse(&v))
            .unwrap_or(Scale::Quick)
    }

    /// Parses a scale name (case-insensitive).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The lower-case name of the scale, as it appears in `BENCH_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Number of partitions per data center at this scale (the paper uses 32).
    pub fn max_partitions(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 8,
            Scale::Full => 32,
        }
    }

    /// Keys per partition at this scale, via the key-space presets (the paper uses one
    /// million; the smoke preset is small enough that hot keys collide often).
    pub fn keys_per_partition(self) -> u64 {
        match self {
            Scale::Smoke => pocc_workload::KeySpace::smoke(1).keys_per_partition(),
            Scale::Quick => 10_000,
            Scale::Full => pocc_workload::KeySpace::paper(1).keys_per_partition(),
        }
    }

    /// Measured window per point.
    pub fn duration(self) -> Duration {
        match self {
            Scale::Smoke => Duration::from_millis(250),
            Scale::Quick => Duration::from_secs(1),
            Scale::Full => Duration::from_secs(10),
        }
    }

    /// Warm-up per point.
    pub fn warmup(self) -> Duration {
        match self {
            Scale::Smoke => Duration::from_millis(80),
            Scale::Quick => Duration::from_millis(300),
            Scale::Full => Duration::from_secs(2),
        }
    }

    /// Drain period after the measured window.
    pub fn drain(self) -> Duration {
        match self {
            Scale::Smoke | Scale::Quick => Duration::from_millis(200),
            Scale::Full => Duration::from_millis(500),
        }
    }

    /// Client think time between operations (25 ms in the paper; smoke runs shrink it so
    /// a handful of clients still produce thousands of samples per sub-second window).
    pub fn think_time(self) -> Duration {
        match self {
            Scale::Smoke => Duration::from_millis(2),
            Scale::Quick | Scale::Full => Duration::from_millis(25),
        }
    }
}

/// The deployment used by the scenarios at the given scale and partition count:
/// 3 data centers with AWS-like latencies, the paper's protocol timers, and a per-request
/// CPU service time chosen so that the scaled-down deployment saturates within the client
/// counts the sweeps use (the full scale uses a faster per-op cost, matching the larger
/// fleet).
pub fn deployment(scale: Scale, partitions: usize) -> pocc_types::Config {
    pocc_types::Config::builder()
        .num_replicas(3)
        .num_partitions(partitions)
        .op_service_time(match scale {
            Scale::Smoke | Scale::Quick => Duration::from_micros(100),
            Scale::Full => Duration::from_micros(40),
        })
        .build()
        .expect("benchmark deployment is valid")
}

/// One point of a sweep: a fully-specified simulation configuration.
pub fn point(scale: Scale, protocol: ProtocolKind) -> SimConfigBuilder {
    SimConfig::builder()
        .protocol(protocol)
        .deployment(deployment(scale, scale.max_partitions()))
        .keys_per_partition(scale.keys_per_partition())
        .zipf_theta(0.99)
        .think_time(scale.think_time())
        .warmup(scale.warmup())
        .duration(scale.duration())
        .drain(scale.drain())
        .seed(42)
}

/// Runs one configured point and returns the report.
pub fn run(builder: SimConfigBuilder) -> SimReport {
    pocc_sim::Simulation::new(builder.build()).run()
}

/// Convenience: the GET:PUT mix of §V-B with `n` GETs per PUT.
pub fn get_put(n: usize) -> WorkloadMix {
    WorkloadMix::GetPut { gets_per_put: n }
}

/// Convenience: the transactional mix of §V-C with `p` partitions per RO-TX.
pub fn tx_put(p: usize) -> WorkloadMix {
    WorkloadMix::TxPut {
        partitions_per_tx: p,
    }
}

/// Formats a float with 3 significant decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an ops/sec throughput.
pub fn fmt_tput(v: f64) -> String {
    format!("{:.0}", v)
}

/// Formats a duration in milliseconds with decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // The environment variable is not set in the test environment.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.max_partitions(), 8);
        assert_eq!(Scale::Full.max_partitions(), 32);
        assert_eq!(Scale::Smoke.max_partitions(), 2);
        assert!(Scale::Full.keys_per_partition() > Scale::Quick.keys_per_partition());
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Full] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
        assert_eq!(Scale::parse("SMOKE"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn formatting_helpers_are_stable() {
        assert_eq!(fmt_tput(1234.56), "1235");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(fmt_f(1.23456), "1.235");
    }

    #[test]
    fn point_builder_produces_paper_like_defaults() {
        let cfg = point(Scale::Quick, ProtocolKind::Pocc)
            .clients_per_partition(2)
            .mix(get_put(4))
            .build();
        assert_eq!(cfg.deployment.num_replicas, 3);
        assert_eq!(cfg.deployment.num_partitions, 8);
        assert_eq!(cfg.think_time, Duration::from_millis(25));
        assert_eq!(cfg.zipf_theta, 0.99);
    }

    #[test]
    fn quick_point_runs_end_to_end() {
        let report = run(point(Scale::Quick, ProtocolKind::Pocc)
            .partitions(2)
            .clients_per_partition(1)
            .keys_per_partition(100)
            .warmup(Duration::from_millis(50))
            .duration(Duration::from_millis(200))
            .drain(Duration::from_millis(100))
            .mix(get_put(4)));
        assert!(report.operations_completed > 0);
    }
}
