//! Regression detection between two `BENCH_*.json` reports.
//!
//! CI runs the `baseline` scenario at smoke scale on every push and compares it against
//! the checked-in `BENCH_baseline.json` with `compare_bench`. The simulator is
//! deterministic, so any throughput difference is a real behavioural change of the
//! code, not noise; the comparison still allows a tolerance band so intentional
//! small shifts (e.g. an extra heartbeat) don't page anyone, and flags only changes
//! beyond the threshold (25% by default).

use crate::json::Json;

/// The default regression threshold: flag points whose throughput drops by more than
/// this fraction relative to the baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// The comparison of one scenario point across two runs.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// The point's label (aligned by label across runs).
    pub label: String,
    /// Throughput in the baseline run.
    pub baseline_tput: f64,
    /// Throughput in the candidate run.
    pub current_tput: f64,
    /// Relative change: `(current - baseline) / baseline`.
    pub delta: f64,
    /// Whether the point regressed beyond the threshold.
    pub regressed: bool,
}

/// The comparison of two benchmark reports.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The scenario name (must match between the two reports).
    pub scenario: String,
    /// Per-point rows, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Labels present in only one of the two runs (a sweep change, not a regression).
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// Whether any point regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// A human-readable report table.
    pub fn render(&self) -> String {
        let mut out = format!("scenario {}:\n", self.scenario);
        out.push_str(&format!(
            "  {:<40} {:>14} {:>14} {:>9}\n",
            "point", "baseline", "current", "delta"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<40} {:>14.0} {:>14.0} {:>+8.1}%{}\n",
                row.label,
                row.baseline_tput,
                row.current_tput,
                row.delta * 100.0,
                if row.regressed { "  << REGRESSION" } else { "" }
            ));
        }
        for label in &self.unmatched {
            out.push_str(&format!("  {label:<40} (present in only one run)\n"));
        }
        out
    }
}

fn point_throughputs(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let points = report
        .get("points")
        .and_then(Json::as_array)
        .ok_or("report has no points array")?;
    points
        .iter()
        .map(|p| {
            let label = p
                .get("label")
                .and_then(Json::as_str)
                .ok_or("point without label")?
                .to_string();
            let tput = p
                .get("throughput_ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or("point without throughput")?;
            Ok((label, tput))
        })
        .collect()
}

/// Compares a candidate report against a baseline report of the same scenario. Points
/// are aligned by label; a throughput drop larger than `threshold` (fractional, e.g.
/// `0.25`) marks the row as regressed.
pub fn compare(baseline: &Json, current: &Json, threshold: f64) -> Result<Comparison, String> {
    let scenario = baseline
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("baseline has no scenario name")?;
    let current_scenario = current
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("candidate has no scenario name")?;
    if scenario != current_scenario {
        return Err(format!(
            "scenario mismatch: baseline {scenario:?} vs candidate {current_scenario:?}"
        ));
    }

    let base_points = point_throughputs(baseline)?;
    let cur_points = point_throughputs(current)?;

    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (label, baseline_tput) in &base_points {
        match cur_points.iter().find(|(l, _)| l == label) {
            Some((_, current_tput)) => {
                let delta = if *baseline_tput > 0.0 {
                    (current_tput - baseline_tput) / baseline_tput
                } else {
                    0.0
                };
                rows.push(CompareRow {
                    label: label.clone(),
                    baseline_tput: *baseline_tput,
                    current_tput: *current_tput,
                    delta,
                    regressed: delta < -threshold,
                });
            }
            None => unmatched.push(label.clone()),
        }
    }
    for (label, _) in &cur_points {
        if !base_points.iter().any(|(l, _)| l == label) {
            unmatched.push(label.clone());
        }
    }

    Ok(Comparison {
        scenario: scenario.to_string(),
        rows,
        unmatched,
    })
}

/// The scaling summary of one report (`compare_bench --scaling`): throughput at the
/// sweep's smallest and largest `x`, taken from a single report rather than from a
/// baseline/current pair. Built for wall-clock sweeps like `core_scaling`, where `x` is
/// the worker-lane count and the gate is "top of the sweep ÷ bottom of the sweep".
#[derive(Clone, Debug)]
pub struct ScalingSummary {
    /// The scenario name.
    pub scenario: String,
    /// What `x` means (the report's `x_axis`).
    pub x_axis: String,
    /// Label of the smallest-`x` point.
    pub base_label: String,
    /// The smallest `x`.
    pub base_x: f64,
    /// Throughput at the smallest `x`.
    pub base_tput: f64,
    /// Label of the largest-`x` point.
    pub top_label: String,
    /// The largest `x`.
    pub top_x: f64,
    /// Throughput at the largest `x`.
    pub top_tput: f64,
}

impl ScalingSummary {
    /// Throughput at the largest `x` over throughput at the smallest `x`.
    pub fn ratio(&self) -> f64 {
        if self.base_tput > 0.0 {
            self.top_tput / self.base_tput
        } else {
            0.0
        }
    }

    /// A human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "scenario {}: {} {} -> {}\n  {:<40} {:>14.0} ops/s\n  {:<40} {:>14.0} ops/s\n  scaling ratio: {:.2}x\n",
            self.scenario,
            self.x_axis,
            self.base_x,
            self.top_x,
            self.base_label,
            self.base_tput,
            self.top_label,
            self.top_tput,
            self.ratio(),
        )
    }
}

/// Extracts the scaling summary of a report: the points with the smallest and largest
/// `x`. Errors if the report has fewer than two distinct `x` values (no sweep to gate).
pub fn scaling(report: &Json) -> Result<ScalingSummary, String> {
    let scenario = report
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("report has no scenario name")?
        .to_string();
    let x_axis = report
        .get("x_axis")
        .and_then(Json::as_str)
        .unwrap_or("x")
        .to_string();
    let points = report
        .get("points")
        .and_then(Json::as_array)
        .ok_or("report has no points array")?;
    let mut parsed = Vec::new();
    for p in points {
        let label = p
            .get("label")
            .and_then(Json::as_str)
            .ok_or("point without label")?
            .to_string();
        let x = p.get("x").and_then(Json::as_f64).ok_or("point without x")?;
        let tput = p
            .get("throughput_ops_per_sec")
            .and_then(Json::as_f64)
            .ok_or("point without throughput")?;
        parsed.push((label, x, tput));
    }
    let (base_label, base_x, base_tput) = parsed
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .cloned()
        .ok_or("report has no points")?;
    let (top_label, top_x, top_tput) = parsed
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .cloned()
        .ok_or("report has no points")?;
    if base_x == top_x {
        return Err(format!(
            "scenario {scenario}: all points share x = {base_x}; nothing to gate"
        ));
    }
    Ok(ScalingSummary {
        scenario,
        x_axis,
        base_label,
        base_x,
        base_tput,
        top_label,
        top_x,
        top_tput,
    })
}

/// The default `--max-alloc-ratio`: a bench's allocations per operation may grow to at
/// most this multiple of the baseline before the gate fails.
pub const DEFAULT_MAX_ALLOC_RATIO: f64 = 1.10;

/// Absolute slack (in allocations per operation) added on top of the ratio bound, so
/// near-zero baselines are not impossible to meet: a bench pinned at `0.000` allocs/op
/// may drift up to this amount before it counts as a regression.
pub const ALLOC_SLACK: f64 = 0.01;

/// The comparison of one micro-benchmark across two `MICROBENCH_*.json` reports.
#[derive(Clone, Debug)]
pub struct MicrobenchRow {
    /// The bench name (aligned by name across runs).
    pub name: String,
    /// Allocations per operation in the baseline run.
    pub baseline_allocs: f64,
    /// Allocations per operation in the candidate run.
    pub current_allocs: f64,
    /// Nanoseconds per operation in the candidate run (informational only: wall-clock
    /// times are machine-dependent, so the gate never keys off them).
    pub current_ns: f64,
    /// Whether the bench's allocation count regressed beyond the allowed ratio.
    pub regressed: bool,
}

/// The comparison of two micro-benchmark reports (`compare_bench --microbench`).
///
/// Unlike the throughput comparison above, the gated quantity is **allocations per
/// operation**: the counting allocator makes it deterministic and machine-independent,
/// so any increase is a real code-path change, never noise. ns/op is reported but not
/// gated.
#[derive(Clone, Debug)]
pub struct MicrobenchComparison {
    /// Per-bench rows, in baseline order.
    pub rows: Vec<MicrobenchRow>,
    /// Bench names present in only one of the two runs (a harness change, not a
    /// regression).
    pub unmatched: Vec<String>,
}

impl MicrobenchComparison {
    /// Whether any bench's allocation count regressed beyond the allowed ratio.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// A human-readable report table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<24} {:>16} {:>16} {:>12}\n",
            "benchmark", "base allocs/op", "cur allocs/op", "cur ns/op"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<24} {:>16.3} {:>16.3} {:>12.1}{}\n",
                row.name,
                row.baseline_allocs,
                row.current_allocs,
                row.current_ns,
                if row.regressed { "  << REGRESSION" } else { "" }
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("{name:<24} (present in only one run)\n"));
        }
        out
    }
}

fn microbench_rows(report: &Json) -> Result<Vec<(String, f64, f64)>, String> {
    let version = report
        .get("microbench_schema_version")
        .and_then(Json::as_u64)
        .ok_or("report has no microbench_schema_version")?;
    if version != crate::json::MICROBENCH_SCHEMA_VERSION {
        return Err(format!(
            "microbench_schema_version: expected {}, found {version}",
            crate::json::MICROBENCH_SCHEMA_VERSION
        ));
    }
    let benches = report
        .get("benches")
        .and_then(Json::as_array)
        .ok_or("report has no benches array")?;
    benches
        .iter()
        .map(|b| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("bench without name")?
                .to_string();
            let allocs = b
                .get("allocs_per_op")
                .and_then(Json::as_f64)
                .ok_or("bench without allocs_per_op")?;
            let ns = b
                .get("ns_per_op")
                .and_then(Json::as_f64)
                .ok_or("bench without ns_per_op")?;
            Ok((name, allocs, ns))
        })
        .collect()
}

/// Compares a candidate micro-benchmark report against a baseline. Benches are aligned
/// by name; a bench regresses when its allocations per operation exceed
/// `baseline * max_alloc_ratio + ALLOC_SLACK`.
pub fn microbench(
    baseline: &Json,
    current: &Json,
    max_alloc_ratio: f64,
) -> Result<MicrobenchComparison, String> {
    let base = microbench_rows(baseline)?;
    let cur = microbench_rows(current)?;

    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (name, baseline_allocs, _) in &base {
        match cur.iter().find(|(n, _, _)| n == name) {
            Some((_, current_allocs, current_ns)) => rows.push(MicrobenchRow {
                name: name.clone(),
                baseline_allocs: *baseline_allocs,
                current_allocs: *current_allocs,
                current_ns: *current_ns,
                regressed: *current_allocs > baseline_allocs * max_alloc_ratio + ALLOC_SLACK,
            }),
            None => unmatched.push(name.clone()),
        }
    }
    for (name, _, _) in &cur {
        if !base.iter().any(|(n, _, _)| n == name) {
            unmatched.push(name.clone());
        }
    }

    Ok(MicrobenchComparison { rows, unmatched })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenario: &str, points: &[(&str, f64)]) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::str(scenario)),
            (
                "points".into(),
                Json::Arr(
                    points
                        .iter()
                        .map(|(label, tput)| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(*label)),
                                ("throughput_ops_per_sec".into(), Json::num(*tput)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn flags_only_regressions_beyond_the_threshold() {
        let base = report("baseline", &[("a", 1000.0), ("b", 1000.0), ("c", 1000.0)]);
        let cur = report("baseline", &[("a", 1000.0), ("b", 760.0), ("c", 600.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(cmp.has_regressions());
        let by_label: Vec<(String, bool)> = cmp
            .rows
            .iter()
            .map(|r| (r.label.clone(), r.regressed))
            .collect();
        assert_eq!(
            by_label,
            vec![
                ("a".into(), false),
                ("b".into(), false), // -24%: inside the band
                ("c".into(), true),  // -40%: regression
            ]
        );
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn improvements_never_flag() {
        let base = report("s", &[("a", 100.0)]);
        let cur = report("s", &[("a", 10_000.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.has_regressions());
        assert!(cmp.rows[0].delta > 0.0);
    }

    #[test]
    fn unmatched_points_are_reported_not_flagged() {
        let base = report("s", &[("a", 100.0), ("gone", 100.0)]);
        let cur = report("s", &[("a", 100.0), ("new", 100.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.unmatched, vec!["gone".to_string(), "new".to_string()]);
    }

    #[test]
    fn scenario_mismatch_is_an_error() {
        let base = report("a", &[]);
        let cur = report("b", &[]);
        assert!(compare(&base, &cur, 0.25).is_err());
    }

    fn sweep_report(scenario: &str, points: &[(&str, f64, f64)]) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::str(scenario)),
            ("x_axis".into(), Json::str("worker_lanes")),
            (
                "points".into(),
                Json::Arr(
                    points
                        .iter()
                        .map(|(label, x, tput)| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(*label)),
                                ("x".into(), Json::num(*x)),
                                ("throughput_ops_per_sec".into(), Json::num(*tput)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn scaling_takes_the_sweeps_extremes() {
        let doc = sweep_report(
            "core_scaling",
            &[
                ("POCC/lanes=1", 1.0, 100_000.0),
                ("POCC/lanes=2", 2.0, 170_000.0),
                ("POCC/lanes=4", 4.0, 210_000.0),
            ],
        );
        let summary = scaling(&doc).unwrap();
        assert_eq!(summary.base_label, "POCC/lanes=1");
        assert_eq!(summary.top_label, "POCC/lanes=4");
        assert!((summary.ratio() - 2.1).abs() < 1e-9);
        assert!(summary.render().contains("2.10x"));
    }

    #[test]
    fn scaling_rejects_sweeps_without_an_axis() {
        let doc = sweep_report("s", &[("a", 1.0, 10.0), ("b", 1.0, 20.0)]);
        assert!(scaling(&doc).is_err());
        let doc = sweep_report("s", &[]);
        assert!(scaling(&doc).is_err());
        assert!(scaling(&Json::Obj(vec![("scenario".into(), Json::str("s"))])).is_err());
    }

    #[test]
    fn scaling_with_zero_base_throughput_never_passes() {
        let doc = sweep_report("s", &[("a", 1.0, 0.0), ("b", 4.0, 100.0)]);
        assert_eq!(scaling(&doc).unwrap().ratio(), 0.0);
    }

    fn microbench_report(benches: &[(&str, f64, f64)]) -> Json {
        Json::Obj(vec![
            (
                "microbench_schema_version".into(),
                Json::u64(crate::json::MICROBENCH_SCHEMA_VERSION),
            ),
            (
                "benches".into(),
                Json::Arr(
                    benches
                        .iter()
                        .map(|(name, allocs, ns)| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(*name)),
                                ("allocs_per_op".into(), Json::num(*allocs)),
                                ("ns_per_op".into(), Json::num(*ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn microbench_gates_alloc_counts_not_wall_clock() {
        let base = microbench_report(&[("insert", 1.0, 100.0), ("read", 0.0, 50.0)]);
        // Wall-clock doubled but allocations held: no regression.
        let cur = microbench_report(&[("insert", 1.0, 200.0), ("read", 0.0, 100.0)]);
        let cmp = microbench(&base, &cur, DEFAULT_MAX_ALLOC_RATIO).unwrap();
        assert!(!cmp.has_regressions());

        // Allocations grew past the ratio: regression, and render flags it.
        let cur = microbench_report(&[("insert", 2.0, 100.0), ("read", 0.0, 50.0)]);
        let cmp = microbench(&base, &cur, DEFAULT_MAX_ALLOC_RATIO).unwrap();
        assert!(cmp.has_regressions());
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn microbench_zero_baselines_get_absolute_slack() {
        let base = microbench_report(&[("read", 0.0, 50.0)]);
        // A ratio bound alone would make any nonzero count fail a 0.000 baseline; the
        // absolute slack tolerates harmless jitter...
        let cur = microbench_report(&[("read", 0.005, 50.0)]);
        assert!(!microbench(&base, &cur, DEFAULT_MAX_ALLOC_RATIO)
            .unwrap()
            .has_regressions());
        // ...but a real new allocation per op still fails.
        let cur = microbench_report(&[("read", 1.0, 50.0)]);
        assert!(microbench(&base, &cur, DEFAULT_MAX_ALLOC_RATIO)
            .unwrap()
            .has_regressions());
    }

    #[test]
    fn microbench_unmatched_and_bad_schema_handling() {
        let base = microbench_report(&[("gone", 1.0, 1.0), ("kept", 1.0, 1.0)]);
        let cur = microbench_report(&[("kept", 1.0, 1.0), ("new", 1.0, 1.0)]);
        let cmp = microbench(&base, &cur, DEFAULT_MAX_ALLOC_RATIO).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.unmatched, vec!["gone".to_string(), "new".to_string()]);

        let bad = Json::Obj(vec![("microbench_schema_version".into(), Json::u64(999))]);
        assert!(microbench(&bad, &cur, DEFAULT_MAX_ALLOC_RATIO).is_err());
        assert!(microbench(&Json::Obj(vec![]), &cur, DEFAULT_MAX_ALLOC_RATIO).is_err());
    }
}
