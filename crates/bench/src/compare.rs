//! Regression detection between two `BENCH_*.json` reports.
//!
//! CI runs the `baseline` scenario at smoke scale on every push and compares it against
//! the checked-in `BENCH_baseline.json` with `compare_bench`. The simulator is
//! deterministic, so any throughput difference is a real behavioural change of the
//! code, not noise; the comparison still allows a tolerance band so intentional
//! small shifts (e.g. an extra heartbeat) don't page anyone, and flags only changes
//! beyond the threshold (25% by default).

use crate::json::Json;

/// The default regression threshold: flag points whose throughput drops by more than
/// this fraction relative to the baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// The comparison of one scenario point across two runs.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// The point's label (aligned by label across runs).
    pub label: String,
    /// Throughput in the baseline run.
    pub baseline_tput: f64,
    /// Throughput in the candidate run.
    pub current_tput: f64,
    /// Relative change: `(current - baseline) / baseline`.
    pub delta: f64,
    /// Whether the point regressed beyond the threshold.
    pub regressed: bool,
}

/// The comparison of two benchmark reports.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The scenario name (must match between the two reports).
    pub scenario: String,
    /// Per-point rows, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Labels present in only one of the two runs (a sweep change, not a regression).
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// Whether any point regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// A human-readable report table.
    pub fn render(&self) -> String {
        let mut out = format!("scenario {}:\n", self.scenario);
        out.push_str(&format!(
            "  {:<40} {:>14} {:>14} {:>9}\n",
            "point", "baseline", "current", "delta"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<40} {:>14.0} {:>14.0} {:>+8.1}%{}\n",
                row.label,
                row.baseline_tput,
                row.current_tput,
                row.delta * 100.0,
                if row.regressed { "  << REGRESSION" } else { "" }
            ));
        }
        for label in &self.unmatched {
            out.push_str(&format!("  {label:<40} (present in only one run)\n"));
        }
        out
    }
}

fn point_throughputs(report: &Json) -> Result<Vec<(String, f64)>, String> {
    let points = report
        .get("points")
        .and_then(Json::as_array)
        .ok_or("report has no points array")?;
    points
        .iter()
        .map(|p| {
            let label = p
                .get("label")
                .and_then(Json::as_str)
                .ok_or("point without label")?
                .to_string();
            let tput = p
                .get("throughput_ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or("point without throughput")?;
            Ok((label, tput))
        })
        .collect()
}

/// Compares a candidate report against a baseline report of the same scenario. Points
/// are aligned by label; a throughput drop larger than `threshold` (fractional, e.g.
/// `0.25`) marks the row as regressed.
pub fn compare(baseline: &Json, current: &Json, threshold: f64) -> Result<Comparison, String> {
    let scenario = baseline
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("baseline has no scenario name")?;
    let current_scenario = current
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or("candidate has no scenario name")?;
    if scenario != current_scenario {
        return Err(format!(
            "scenario mismatch: baseline {scenario:?} vs candidate {current_scenario:?}"
        ));
    }

    let base_points = point_throughputs(baseline)?;
    let cur_points = point_throughputs(current)?;

    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    for (label, baseline_tput) in &base_points {
        match cur_points.iter().find(|(l, _)| l == label) {
            Some((_, current_tput)) => {
                let delta = if *baseline_tput > 0.0 {
                    (current_tput - baseline_tput) / baseline_tput
                } else {
                    0.0
                };
                rows.push(CompareRow {
                    label: label.clone(),
                    baseline_tput: *baseline_tput,
                    current_tput: *current_tput,
                    delta,
                    regressed: delta < -threshold,
                });
            }
            None => unmatched.push(label.clone()),
        }
    }
    for (label, _) in &cur_points {
        if !base_points.iter().any(|(l, _)| l == label) {
            unmatched.push(label.clone());
        }
    }

    Ok(Comparison {
        scenario: scenario.to_string(),
        rows,
        unmatched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenario: &str, points: &[(&str, f64)]) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::str(scenario)),
            (
                "points".into(),
                Json::Arr(
                    points
                        .iter()
                        .map(|(label, tput)| {
                            Json::Obj(vec![
                                ("label".into(), Json::str(*label)),
                                ("throughput_ops_per_sec".into(), Json::num(*tput)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn flags_only_regressions_beyond_the_threshold() {
        let base = report("baseline", &[("a", 1000.0), ("b", 1000.0), ("c", 1000.0)]);
        let cur = report("baseline", &[("a", 1000.0), ("b", 760.0), ("c", 600.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(cmp.has_regressions());
        let by_label: Vec<(String, bool)> = cmp
            .rows
            .iter()
            .map(|r| (r.label.clone(), r.regressed))
            .collect();
        assert_eq!(
            by_label,
            vec![
                ("a".into(), false),
                ("b".into(), false), // -24%: inside the band
                ("c".into(), true),  // -40%: regression
            ]
        );
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn improvements_never_flag() {
        let base = report("s", &[("a", 100.0)]);
        let cur = report("s", &[("a", 10_000.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.has_regressions());
        assert!(cmp.rows[0].delta > 0.0);
    }

    #[test]
    fn unmatched_points_are_reported_not_flagged() {
        let base = report("s", &[("a", 100.0), ("gone", 100.0)]);
        let cur = report("s", &[("a", 100.0), ("new", 100.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.unmatched, vec!["gone".to_string(), "new".to_string()]);
    }

    #[test]
    fn scenario_mismatch_is_an_error() {
        let base = report("a", &[]);
        let cur = report("b", &[]);
        assert!(compare(&base, &cur, 0.25).is_err());
    }
}
