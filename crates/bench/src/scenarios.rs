//! The named-scenario registry: every benchmark run is a scenario from this table.
//!
//! A [`Scenario`] is a named, self-describing sweep: given a [`Scale`] it expands to a
//! list of fully-specified simulation points ([`ScenarioPoint`]), each of which runs one
//! deterministic [`pocc_sim::Simulation`]. The registry covers:
//!
//! * the paper's evaluation figures (`fig1a` … `fig3d`, §V-B/§V-C),
//! * the timer/skew/sharding ablations,
//! * workloads beyond the paper: hot-key zipf skew, large-value payloads,
//!   read-heavy/write-heavy mixes, a transaction-size sweep, and a partition-and-heal
//!   fault scenario driven through `SimNetwork` partitions,
//! * `baseline`: the seed-equivalent configuration (one storage shard, no replication
//!   batching) whose smoke-scale output is checked in as `BENCH_baseline.json` and
//!   compared against fresh runs by CI.
//!
//! Running a scenario yields a [`ScenarioReport`], which serialises to the versioned
//! `BENCH_<name>.json` schema (see [`crate::json`]).

use crate::json::{Json, SCHEMA_VERSION};
use crate::{deployment, get_put, point, tx_put, Scale};
use pocc_sim::{
    ChaosGen, ChaosSchedule, ChaosStep, FaultEvent, ProtocolKind, SimConfig, SimReport, Simulation,
};
use pocc_types::ReplicaId;
use pocc_workload::WorkloadMix;
use std::time::Duration;

/// The RNG seed every scenario runs with (the sweeps vary parameters, not seeds, so any
/// two runs of the same scenario are comparable sample-for-sample).
pub const SEED: u64 = 42;

/// How a scenario's points are executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScenarioKind {
    /// Deterministic discrete-event simulation: same seed, same digest, every machine.
    Sim,
    /// Wall-clock execution on the threaded shard-parallel runtime (`pocc-exec`).
    /// Timing-dependent, so excluded from the digest corpus; gated by throughput ratio
    /// (`compare_bench --scaling`) instead of digest equality.
    Parallel,
}

impl ScenarioKind {
    /// Short name for `--list` output.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Sim => "sim",
            ScenarioKind::Parallel => "wall-clock",
        }
    }
}

/// A named benchmark scenario.
pub struct Scenario {
    /// The registry name (`--scenario <name>`; also the `BENCH_<name>.json` stem).
    pub name: &'static str,
    /// One-line description of what the scenario measures.
    pub title: &'static str,
    /// What the swept `x` of each point means.
    pub x_axis: &'static str,
    /// How the points run (simulated vs wall-clock).
    pub kind: ScenarioKind,
    points_fn: fn(Scale) -> Vec<ScenarioPoint>,
}

/// One fully-specified point of a scenario sweep.
pub struct ScenarioPoint {
    /// Unique label within the scenario (also the key compare tools align runs by).
    pub label: String,
    /// The swept parameter's value.
    pub x: f64,
    /// The simulation configuration to run.
    pub config: SimConfig,
}

/// The result of one scenario point.
pub struct PointResult {
    /// The point's label.
    pub label: String,
    /// The swept parameter's value.
    pub x: f64,
    /// The configuration that ran.
    pub config: SimConfig,
    /// The simulation report.
    pub report: SimReport,
}

/// The result of a full scenario run; serialises to `BENCH_<name>.json`.
pub struct ScenarioReport {
    /// The scenario's registry name.
    pub scenario: &'static str,
    /// The scenario's description.
    pub title: &'static str,
    /// The meaning of each point's `x`.
    pub x_axis: &'static str,
    /// The scale the scenario ran at.
    pub scale: Scale,
    /// The results, in sweep order.
    pub points: Vec<PointResult>,
}

impl Scenario {
    /// The points this scenario expands to at `scale`.
    pub fn points(&self, scale: Scale) -> Vec<ScenarioPoint> {
        (self.points_fn)(scale)
    }

    /// Runs every point of the scenario at `scale`, invoking `on_point` after each one
    /// (the runner uses this for progress output; pass `|_| {}` otherwise).
    pub fn run(&self, scale: Scale, mut on_point: impl FnMut(&PointResult)) -> ScenarioReport {
        let mut points = Vec::new();
        for p in self.points(scale) {
            let report = match self.kind {
                ScenarioKind::Sim => Simulation::new(p.config.clone()).run(),
                ScenarioKind::Parallel => crate::parallel::run_point(scale, &p),
            };
            let result = PointResult {
                label: p.label,
                x: p.x,
                config: p.config,
                report,
            };
            on_point(&result);
            points.push(result);
        }
        ScenarioReport {
            scenario: self.name,
            title: self.title,
            x_axis: self.x_axis,
            scale,
            points,
        }
    }
}

impl ScenarioReport {
    /// Serialises the report to the versioned `BENCH_*.json` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::u64(SCHEMA_VERSION)),
            ("scenario".into(), Json::str(self.scenario)),
            ("title".into(), Json::str(self.title)),
            ("x_axis".into(), Json::str(self.x_axis)),
            ("scale".into(), Json::str(self.scale.name())),
            ("seed".into(), Json::u64(SEED)),
            (
                "points".into(),
                Json::Arr(self.points.iter().map(point_to_json).collect()),
            ),
        ])
    }
}

fn latency_to_json(stats: &pocc_sim::LatencyStats) -> Json {
    let us = |d: Duration| Json::u64(d.as_micros() as u64);
    Json::Obj(vec![
        ("count".into(), Json::u64(stats.count())),
        ("mean".into(), us(stats.mean())),
        ("p50".into(), us(stats.p50())),
        ("p95".into(), us(stats.p95())),
        ("p99".into(), us(stats.p99())),
        ("p999".into(), us(stats.p999())),
        ("max".into(), us(stats.max())),
    ])
}

fn point_to_json(point: &PointResult) -> Json {
    let cfg = &point.config;
    let r = &point.report;
    let m = &r.server_metrics;
    Json::Obj(vec![
        ("label".into(), Json::str(point.label.clone())),
        ("x".into(), Json::num(point.x)),
        ("protocol".into(), Json::str(r.protocol.to_string())),
        (
            "config".into(),
            Json::Obj(vec![
                ("replicas".into(), Json::u64(r.replicas as u64)),
                ("partitions".into(), Json::u64(r.partitions as u64)),
                ("clients".into(), Json::u64(r.clients as u64)),
                (
                    "storage_shards".into(),
                    Json::u64(cfg.deployment.storage_shards as u64),
                ),
                (
                    "replication_batching".into(),
                    Json::Bool(cfg.deployment.replication_batching),
                ),
                (
                    "keys_per_partition".into(),
                    Json::u64(cfg.keys_per_partition),
                ),
                ("value_size".into(), Json::u64(cfg.value_size as u64)),
                ("zipf_theta".into(), Json::num(cfg.zipf_theta)),
                (
                    "measured_window_s".into(),
                    Json::num(r.measured_window.as_secs_f64()),
                ),
            ]),
        ),
        (
            "throughput_ops_per_sec".into(),
            Json::num(r.throughput_ops_per_sec),
        ),
        (
            "operations".into(),
            Json::Obj(vec![
                ("total".into(), Json::u64(r.operations_completed)),
                ("gets".into(), Json::u64(r.gets_completed)),
                ("puts".into(), Json::u64(r.puts_completed)),
                ("rotx".into(), Json::u64(r.rotx_completed)),
                (
                    "sessions_reinitialized".into(),
                    Json::u64(r.sessions_reinitialized),
                ),
            ]),
        ),
        (
            "latency_us".into(),
            Json::Obj(vec![
                ("all".into(), latency_to_json(&r.latency_all)),
                ("get".into(), latency_to_json(&r.latency_get)),
                ("put".into(), latency_to_json(&r.latency_put)),
                ("rotx".into(), latency_to_json(&r.latency_rotx)),
            ]),
        ),
        (
            "blocking".into(),
            Json::Obj(vec![
                ("probability".into(), Json::num(r.blocking_probability())),
                ("blocked_operations".into(), Json::u64(m.blocked_operations)),
                (
                    "avg_block_time_us".into(),
                    Json::u64(r.avg_block_time().as_micros() as u64),
                ),
                (
                    "clock_wait_time_us".into(),
                    Json::u64(m.clock_wait_time.as_micros() as u64),
                ),
            ]),
        ),
        (
            "staleness".into(),
            Json::Obj(vec![
                ("old_get_fraction".into(), Json::num(r.old_get_fraction())),
                (
                    "unmerged_get_fraction".into(),
                    Json::num(r.unmerged_get_fraction()),
                ),
                ("old_tx_fraction".into(), Json::num(r.old_tx_fraction())),
                (
                    "unmerged_tx_fraction".into(),
                    Json::num(r.unmerged_tx_fraction()),
                ),
                (
                    "stable_fallback_gets".into(),
                    Json::u64(m.stable_fallback_gets),
                ),
            ]),
        ),
        (
            "network".into(),
            Json::Obj(vec![
                ("messages_sent".into(), Json::u64(r.network.messages_sent)),
                ("wan_messages".into(), Json::u64(r.network.wan_messages)),
                ("bytes_sent".into(), Json::u64(r.network.bytes_sent)),
                ("held_messages".into(), Json::u64(r.network.held_messages)),
            ]),
        ),
        (
            "replication".into(),
            Json::Obj(vec![
                ("replicate_sent".into(), Json::u64(m.replicate_sent)),
                ("batches_sent".into(), Json::u64(m.batches_sent)),
                ("heartbeats_sent".into(), Json::u64(m.heartbeats_sent)),
                (
                    "stabilization_messages".into(),
                    Json::u64(m.stabilization_messages),
                ),
                ("gc_messages".into(), Json::u64(m.gc_messages)),
                (
                    "gc_versions_removed".into(),
                    Json::u64(m.gc_versions_removed),
                ),
                ("sessions_aborted".into(), Json::u64(m.sessions_aborted)),
            ]),
        ),
        (
            "store".into(),
            Json::Obj(vec![
                ("keys".into(), Json::u64(r.store.keys as u64)),
                ("versions".into(), Json::u64(r.store.versions as u64)),
                (
                    "max_chain_len".into(),
                    Json::u64(r.store.max_chain_len as u64),
                ),
                ("gc_removed".into(), Json::u64(r.store.gc_removed as u64)),
                ("live_bytes".into(), Json::u64(r.store.live_bytes as u64)),
                (
                    "per_shard_versions".into(),
                    Json::Arr(
                        r.store_shards
                            .iter()
                            .map(|s| Json::u64(s.versions as u64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "contention".into(),
            Json::Obj(vec![
                (
                    "lane_fast_path_hits".into(),
                    Json::u64(m.lane_fast_path_hits),
                ),
                (
                    "lane_fast_path_misses".into(),
                    Json::u64(m.lane_fast_path_misses),
                ),
                ("spine_acquisitions".into(), Json::u64(m.spine_acquisitions)),
                ("drain_spins".into(), Json::u64(m.drain_spins)),
            ]),
        ),
        (
            "consistency".into(),
            Json::Obj(vec![
                ("violations".into(), Json::u64(r.consistency_violations)),
                ("converged".into(), Json::Bool(r.converged)),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------------------

/// Every registered scenario, in presentation order.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "fig1a_scalability",
            title: "Figure 1a: throughput vs number of partitions (GET:PUT = p:1)",
            x_axis: "partitions",
            kind: ScenarioKind::Sim,
            points_fn: fig1a,
        },
        Scenario {
            name: "fig1b_resptime",
            title: "Figure 1b: avg. response time vs throughput",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig1b,
        },
        Scenario {
            name: "fig1c_write_intensity",
            title: "Figure 1c: throughput vs GET:PUT ratio",
            x_axis: "gets_per_put",
            kind: ScenarioKind::Sim,
            points_fn: fig1c,
        },
        Scenario {
            name: "fig2a_blocking",
            title: "Figure 2a: POCC blocking probability and blocking time vs load",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig2a,
        },
        Scenario {
            name: "fig2b_staleness",
            title: "Figure 2b: data staleness in Cure* vs load",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig2b,
        },
        Scenario {
            name: "fig3a_tx_scalability",
            title: "Figure 3a: throughput vs partitions contacted per RO-TX",
            x_axis: "partitions_per_tx",
            kind: ScenarioKind::Sim,
            points_fn: fig3a,
        },
        Scenario {
            name: "fig3b_tx_clients",
            title: "Figure 3b: throughput and RO-TX response time vs clients per partition",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig3b,
        },
        Scenario {
            name: "fig3c_tx_blocking",
            title: "Figure 3c: POCC blocking under the transactional workload",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig3c,
        },
        Scenario {
            name: "fig3d_tx_staleness",
            title: "Figure 3d: staleness of transactional reads vs clients per partition",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: fig3d,
        },
        Scenario {
            name: "ablation_stabilization",
            title: "Ablation: Cure* stabilization interval vs staleness",
            x_axis: "stabilization_interval_ms",
            kind: ScenarioKind::Sim,
            points_fn: ablation_stabilization,
        },
        Scenario {
            name: "ablation_heartbeat",
            title: "Ablation: POCC heartbeat interval vs blocking",
            x_axis: "heartbeat_interval_ms",
            kind: ScenarioKind::Sim,
            points_fn: ablation_heartbeat,
        },
        Scenario {
            name: "ablation_clock_skew",
            title: "Ablation: POCC clock skew vs blocking and clock waits",
            x_axis: "max_clock_skew_ms",
            kind: ScenarioKind::Sim,
            points_fn: ablation_clock_skew,
        },
        Scenario {
            name: "ablation_sharding",
            title: "Ablation: storage shards x replication batching",
            x_axis: "storage_shards",
            kind: ScenarioKind::Sim,
            points_fn: ablation_sharding,
        },
        Scenario {
            name: "hot_key_skew",
            title: "Hot-key workload: zipf exponent sweep (uniform through super-zipfian)",
            x_axis: "zipf_theta",
            kind: ScenarioKind::Sim,
            points_fn: hot_key_skew,
        },
        Scenario {
            name: "large_values",
            title: "Large-value payloads: value size sweep",
            x_axis: "value_size_bytes",
            kind: ScenarioKind::Sim,
            points_fn: large_values,
        },
        Scenario {
            name: "read_heavy",
            title: "Read-heavy mix (GET:PUT = 31:1) vs load",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: read_heavy,
        },
        Scenario {
            name: "write_heavy",
            title: "Write-heavy mix (GET:PUT = 1:1) vs load",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: write_heavy,
        },
        Scenario {
            name: "tx_size_sweep",
            title: "POCC RO-TX latency vs transaction size",
            x_axis: "partitions_per_tx",
            kind: ScenarioKind::Sim,
            points_fn: tx_size_sweep,
        },
        Scenario {
            name: "adaptive_vs_pocc",
            title: "Adaptive vs POCC vs Cure*: blocking and staleness under load",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: adaptive_vs_pocc,
        },
        Scenario {
            name: "adaptive_hot_key",
            title: "Adaptive under hot-key churn: zipf exponent sweep with per-key fall-back",
            x_axis: "zipf_theta",
            kind: ScenarioKind::Sim,
            points_fn: adaptive_hot_key,
        },
        Scenario {
            name: "partition_heal",
            title: "HA-POCC under a WAN partition that heals (SimNetwork fault injection)",
            x_axis: "partition_duration_ms",
            kind: ScenarioKind::Sim,
            points_fn: partition_heal,
        },
        Scenario {
            name: "chaos_partition_storm",
            title: "Chaos: seeded random partition/lag/drop storms (ChaosGen schedules)",
            x_axis: "chaos_seed",
            kind: ScenarioKind::Sim,
            points_fn: chaos_partition_storm,
        },
        Scenario {
            name: "chaos_lag_drop",
            title: "Chaos: scripted lag spike + drop window + duplication window, all protocols",
            x_axis: "protocol_index",
            kind: ScenarioKind::Sim,
            points_fn: chaos_lag_drop,
        },
        Scenario {
            name: "chaos_restart",
            title: "Chaos: whole-DC restart (frozen processing, retained state) vs outage length",
            x_axis: "outage_ms",
            kind: ScenarioKind::Sim,
            points_fn: chaos_restart,
        },
        Scenario {
            name: "baseline",
            title: "Seed-equivalent configuration (1 shard, no batching): the regression baseline",
            x_axis: "clients_per_partition",
            kind: ScenarioKind::Sim,
            points_fn: baseline,
        },
        Scenario {
            name: "core_scaling",
            title: "Threaded runtime: wall-clock throughput vs worker-lane count (write-heavy)",
            x_axis: "worker_lanes",
            kind: ScenarioKind::Parallel,
            points_fn: core_scaling,
        },
        Scenario {
            name: "replication_scaling",
            title: "Threaded runtime: wall-clock remote-apply throughput vs worker-lane count (3 replicas)",
            x_axis: "worker_lanes",
            kind: ScenarioKind::Parallel,
            points_fn: replication_scaling,
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// Resolves a list of scenario selectors, preserving selection order and deduplicating.
///
/// A selector is the literal `all`, an exact registry name, or a trailing-`*` prefix
/// glob (`chaos_*`, `fig3*`). A selector that matches nothing is an error — a typo in
/// `--scenario` must not silently select an empty run.
pub fn select(patterns: &[String]) -> Result<Vec<Scenario>, String> {
    let mut selected: Vec<Scenario> = Vec::new();
    for pattern in patterns {
        let matches: Vec<Scenario> = if pattern == "all" {
            all()
        } else if let Some(prefix) = pattern.strip_suffix('*') {
            all()
                .into_iter()
                .filter(|s| s.name.starts_with(prefix))
                .collect()
        } else {
            all().into_iter().filter(|s| s.name == *pattern).collect()
        };
        if matches.is_empty() {
            return Err(format!(
                "no scenario matches {pattern:?} (--list shows the registry)"
            ));
        }
        for scenario in matches {
            if !selected.iter().any(|s| s.name == scenario.name) {
                selected.push(scenario);
            }
        }
    }
    if selected.is_empty() {
        return Err("no scenarios selected".into());
    }
    Ok(selected)
}

// ---------------------------------------------------------------------------------------
// Scenario definitions
// ---------------------------------------------------------------------------------------

const BOTH: [ProtocolKind; 2] = [ProtocolKind::Cure, ProtocolKind::Pocc];

fn label(protocol: ProtocolKind, axis: &str, x: impl std::fmt::Display) -> String {
    format!("{protocol}/{axis}={x}")
}

/// The load sweep of the single-key figures (1b, 2a, 2b) and the mix scenarios.
fn client_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![6],
        Scale::Quick => vec![32, 64, 128, 192, 256, 320],
        Scale::Full => vec![32, 64, 128, 192, 256, 320, 384],
    }
}

/// The load sweep of the transactional figures (3b, 3c, 3d).
fn tx_client_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![6],
        Scale::Quick => vec![16, 32, 64, 96, 128, 192],
        Scale::Full => vec![40, 80, 120, 160, 200],
    }
}

/// The near-saturation client count used by the throughput-comparison figures.
fn saturating_clients(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 8,
        Scale::Quick => 256,
        Scale::Full => 192,
    }
}

/// The moderate-load client count used by the ablations and workload scenarios.
fn moderate_clients(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 6,
        Scale::Quick | Scale::Full => 64,
    }
}

/// The transaction size of the fixed-size transactional figures: half the partitions.
fn half_partitions(scale: Scale) -> usize {
    (scale.max_partitions() / 2).max(1)
}

fn fig1a(scale: Scale) -> Vec<ScenarioPoint> {
    let partitions: Vec<usize> = match scale {
        Scale::Smoke => vec![2],
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 8, 16, 24, 32],
    };
    let clients = saturating_clients(scale);
    let mut points = Vec::new();
    for &p in &partitions {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "partitions", p),
                x: p as f64,
                config: point(scale, protocol)
                    .deployment(deployment(scale, p))
                    .clients_per_partition(clients)
                    .mix(get_put(p))
                    .build(),
            });
        }
    }
    points
}

fn fig1b(scale: Scale) -> Vec<ScenarioPoint> {
    let p = scale.max_partitions();
    let mut points = Vec::new();
    for &clients in &client_sweep(scale) {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "clients", clients),
                x: clients as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(get_put(p))
                    .build(),
            });
        }
    }
    points
}

fn fig1c(scale: Scale) -> Vec<ScenarioPoint> {
    let ratios: Vec<usize> = match scale {
        Scale::Smoke => vec![8, 1],
        Scale::Quick => vec![8, 4, 2, 1],
        Scale::Full => vec![32, 16, 8, 4, 2, 1],
    };
    let clients = saturating_clients(scale);
    let mut points = Vec::new();
    for &ratio in &ratios {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "getput", ratio),
                x: ratio as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(get_put(ratio))
                    .build(),
            });
        }
    }
    points
}

fn fig2a(scale: Scale) -> Vec<ScenarioPoint> {
    let p = scale.max_partitions();
    client_sweep(scale)
        .into_iter()
        .map(|clients| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "clients", clients),
            x: clients as f64,
            config: point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(get_put(p))
                .build(),
        })
        .collect()
}

fn fig2b(scale: Scale) -> Vec<ScenarioPoint> {
    let p = scale.max_partitions();
    client_sweep(scale)
        .into_iter()
        .map(|clients| ScenarioPoint {
            label: label(ProtocolKind::Cure, "clients", clients),
            x: clients as f64,
            config: point(scale, ProtocolKind::Cure)
                .clients_per_partition(clients)
                .mix(get_put(p))
                .build(),
        })
        .collect()
}

fn fig3a(scale: Scale) -> Vec<ScenarioPoint> {
    let sweep: Vec<usize> = match scale {
        Scale::Smoke => vec![2],
        Scale::Quick => vec![2, 4, 6, 8],
        Scale::Full => vec![2, 4, 8, 16, 24, 32],
    };
    let clients = match scale {
        Scale::Smoke => 6,
        Scale::Quick => 96,
        Scale::Full => 64,
    };
    let mut points = Vec::new();
    for &p in &sweep {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "txsize", p),
                x: p as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(tx_put(p))
                    .build(),
            });
        }
    }
    points
}

fn fig3b(scale: Scale) -> Vec<ScenarioPoint> {
    let tx_size = half_partitions(scale);
    let mut points = Vec::new();
    for &clients in &tx_client_sweep(scale) {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "clients", clients),
                x: clients as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(tx_put(tx_size))
                    .build(),
            });
        }
    }
    points
}

fn fig3c(scale: Scale) -> Vec<ScenarioPoint> {
    let tx_size = half_partitions(scale);
    tx_client_sweep(scale)
        .into_iter()
        .map(|clients| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "clients", clients),
            x: clients as f64,
            config: point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(tx_put(tx_size))
                .build(),
        })
        .collect()
}

fn fig3d(scale: Scale) -> Vec<ScenarioPoint> {
    let tx_size = half_partitions(scale);
    let mut points = Vec::new();
    for &clients in &tx_client_sweep(scale) {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "clients", clients),
                x: clients as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(tx_put(tx_size))
                    .build(),
            });
        }
    }
    points
}

fn ablation_stabilization(scale: Scale) -> Vec<ScenarioPoint> {
    let stabs: Vec<u64> = match scale {
        Scale::Smoke => vec![5, 50],
        Scale::Quick | Scale::Full => vec![1, 5, 20, 50],
    };
    let p = scale.max_partitions();
    let clients = moderate_clients(scale);
    stabs
        .into_iter()
        .map(|stab_ms| ScenarioPoint {
            label: label(ProtocolKind::Cure, "stab_ms", stab_ms),
            x: stab_ms as f64,
            config: point(scale, ProtocolKind::Cure)
                .stabilization_interval(Duration::from_millis(stab_ms))
                .clients_per_partition(clients)
                .mix(get_put(p))
                .build(),
        })
        .collect()
}

fn ablation_heartbeat(scale: Scale) -> Vec<ScenarioPoint> {
    let heartbeats_us: Vec<u64> = match scale {
        Scale::Smoke => vec![1_000, 10_000],
        Scale::Quick | Scale::Full => vec![500, 1_000, 5_000, 10_000],
    };
    let p = scale.max_partitions();
    let clients = moderate_clients(scale);
    heartbeats_us
        .into_iter()
        .map(|hb_us| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "hb_us", hb_us),
            x: hb_us as f64 / 1_000.0,
            config: point(scale, ProtocolKind::Pocc)
                .heartbeat_interval(Duration::from_micros(hb_us))
                .clients_per_partition(clients)
                .mix(get_put(p))
                .build(),
        })
        .collect()
}

fn ablation_clock_skew(scale: Scale) -> Vec<ScenarioPoint> {
    let skews_us: Vec<u64> = match scale {
        Scale::Smoke => vec![0, 2_000],
        Scale::Quick | Scale::Full => vec![0, 500, 2_000, 5_000],
    };
    let p = scale.max_partitions();
    let clients = moderate_clients(scale);
    skews_us
        .into_iter()
        .map(|skew_us| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "skew_us", skew_us),
            x: skew_us as f64 / 1_000.0,
            config: point(scale, ProtocolKind::Pocc)
                .max_clock_skew(Duration::from_micros(skew_us))
                .clients_per_partition(clients)
                .mix(get_put(p))
                .build(),
        })
        .collect()
}

fn ablation_sharding(scale: Scale) -> Vec<ScenarioPoint> {
    let shard_counts: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 8],
        Scale::Quick => vec![1, 2, 8],
        Scale::Full => vec![1, 4, 16],
    };
    // Deliberately write-heavy (GET:PUT = 2:1) at the deleted ablation bin's client
    // count, so replication volume and store-insert pressure — the things sharding and
    // batching exist for — dominate the run instead of read service time.
    let clients = match scale {
        Scale::Smoke => 6,
        Scale::Quick | Scale::Full => 24,
    };
    let mut points = Vec::new();
    for &shards in &shard_counts {
        for batching in [false, true] {
            points.push(ScenarioPoint {
                label: format!("POCC/shards={shards}/batching={batching}"),
                x: shards as f64,
                config: point(scale, ProtocolKind::Pocc)
                    .clients_per_partition(clients)
                    .mix(get_put(2))
                    .storage_shards(shards)
                    .replication_batching(batching)
                    .build(),
            });
        }
    }
    points
}

fn hot_key_skew(scale: Scale) -> Vec<ScenarioPoint> {
    let thetas: Vec<f64> = match scale {
        Scale::Smoke => vec![0.5, 1.2],
        Scale::Quick | Scale::Full => vec![0.0, 0.5, 0.8, 0.99, 1.2],
    };
    let p = scale.max_partitions();
    let clients = moderate_clients(scale);
    let mut points = Vec::new();
    for &theta in &thetas {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, "theta", theta),
                x: theta,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .zipf_theta(theta)
                    .mix(get_put(p))
                    .build(),
            });
        }
    }
    points
}

fn large_values(scale: Scale) -> Vec<ScenarioPoint> {
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![8, 1024],
        Scale::Quick | Scale::Full => vec![8, 128, 1024, 8192],
    };
    let clients = moderate_clients(scale);
    sizes
        .into_iter()
        .map(|size| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "bytes", size),
            x: size as f64,
            // A write-heavier 4:1 mix so replicated payload bytes dominate the wire.
            config: point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .value_size(size)
                .mix(get_put(4))
                .build(),
        })
        .collect()
}

fn read_heavy(scale: Scale) -> Vec<ScenarioPoint> {
    mix_load_sweep(scale, WorkloadMix::read_heavy(), "clients")
}

fn write_heavy(scale: Scale) -> Vec<ScenarioPoint> {
    mix_load_sweep(scale, WorkloadMix::write_heavy(), "clients")
}

fn mix_load_sweep(scale: Scale, mix: WorkloadMix, axis: &str) -> Vec<ScenarioPoint> {
    let mut points = Vec::new();
    for &clients in &client_sweep(scale) {
        for protocol in BOTH {
            points.push(ScenarioPoint {
                label: label(protocol, axis, clients),
                x: clients as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(mix)
                    .build(),
            });
        }
    }
    points
}

fn tx_size_sweep(scale: Scale) -> Vec<ScenarioPoint> {
    let sizes: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 2],
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![1, 2, 4, 8, 16, 32],
    };
    let clients = match scale {
        Scale::Smoke => 6,
        Scale::Quick | Scale::Full => 48,
    };
    sizes
        .into_iter()
        .map(|size| ScenarioPoint {
            label: label(ProtocolKind::Pocc, "txsize", size),
            x: size as f64,
            config: point(scale, ProtocolKind::Pocc)
                .clients_per_partition(clients)
                .mix(tx_put(size))
                .build(),
        })
        .collect()
}

/// The adaptive protocol head-to-head against both ends of the visibility spectrum it
/// interpolates between, over the write-heavier 2:1 mix where remote churn (and thus the
/// per-key fall-back) actually engages.
fn adaptive_vs_pocc(scale: Scale) -> Vec<ScenarioPoint> {
    let protocols = [
        ProtocolKind::Pocc,
        ProtocolKind::Adaptive,
        ProtocolKind::Cure,
    ];
    let mut points = Vec::new();
    for &clients in &client_sweep(scale) {
        for protocol in protocols {
            points.push(ScenarioPoint {
                label: label(protocol, "clients", clients),
                x: clients as f64,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .mix(get_put(2))
                    .build(),
            });
        }
    }
    points
}

/// Adaptive under increasing key skew: the hotter the head of the zipf distribution, the
/// more keys cross the churn threshold and the closer the protocol moves to Cure*'s
/// stable reads — while the long tail keeps POCC freshness.
fn adaptive_hot_key(scale: Scale) -> Vec<ScenarioPoint> {
    let thetas: Vec<f64> = match scale {
        Scale::Smoke => vec![0.5, 1.2],
        Scale::Quick | Scale::Full => vec![0.0, 0.5, 0.8, 0.99, 1.2],
    };
    let clients = moderate_clients(scale);
    let mut points = Vec::new();
    for &theta in &thetas {
        for protocol in [ProtocolKind::Pocc, ProtocolKind::Adaptive] {
            points.push(ScenarioPoint {
                label: label(protocol, "theta", theta),
                x: theta,
                config: point(scale, protocol)
                    .clients_per_partition(clients)
                    .zipf_theta(theta)
                    .mix(get_put(2))
                    .build(),
            });
        }
    }
    points
}

fn partition_heal(scale: Scale) -> Vec<ScenarioPoint> {
    let durations_ms: Vec<u64> = match scale {
        Scale::Smoke => vec![0, 120],
        Scale::Quick | Scale::Full => vec![0, 100, 250],
    };
    let p = scale.max_partitions();
    let clients = moderate_clients(scale);
    durations_ms
        .into_iter()
        .map(|dur_ms| {
            // The partition opens a quarter into the measured window and heals `dur_ms`
            // later; the extended drain gives held WAN traffic time to deliver so the
            // run still converges.
            let partition_at = scale.warmup() + scale.duration() / 4;
            let mut builder = point(scale, ProtocolKind::HaPocc)
                .clients_per_partition(clients)
                .mix(get_put(p))
                .drain(scale.drain() + Duration::from_millis(300));
            if dur_ms > 0 {
                builder = builder
                    .fault(FaultEvent::Partition {
                        at: partition_at,
                        a: ReplicaId(0),
                        b: ReplicaId(1),
                    })
                    .fault(FaultEvent::Heal {
                        at: partition_at + Duration::from_millis(dur_ms),
                        a: ReplicaId(0),
                        b: ReplicaId(1),
                    });
            }
            ScenarioPoint {
                label: label(ProtocolKind::HaPocc, "partition_ms", dur_ms),
                x: dur_ms as f64,
                config: builder.build(),
            }
        })
        .collect()
}

/// The chaos scenarios disturb only the measured window — every schedule is fully over
/// by `warmup + duration` — and extend the drain so held, lagged and backlogged traffic
/// delivers before the convergence check. All of them run the exact causal checker.
fn chaos_point(scale: Scale, protocol: ProtocolKind, schedule: ChaosSchedule) -> SimConfig {
    debug_assert!(schedule.ends_by(scale.warmup() + scale.duration()));
    point(scale, protocol)
        .clients_per_partition(moderate_clients(scale))
        .mix(get_put(3))
        .check_consistency(true)
        .drain(scale.drain() + Duration::from_millis(300))
        .chaos(schedule)
        .build()
}

fn chaos_partition_storm(scale: Scale) -> Vec<ScenarioPoint> {
    let (seeds, events): (Vec<u64>, usize) = match scale {
        Scale::Smoke => (vec![1, 2], 3),
        Scale::Quick => (vec![1, 2, 3], 6),
        Scale::Full => (vec![1, 2, 3, 4], 10),
    };
    let mut points = Vec::new();
    for &seed in &seeds {
        for protocol in BOTH {
            let schedule = ChaosGen::new(seed, 3).sample(
                scale.warmup(),
                scale.warmup() + scale.duration(),
                events,
            );
            points.push(ScenarioPoint {
                label: label(protocol, "chaos_seed", seed),
                x: seed as f64,
                config: chaos_point(scale, protocol, schedule),
            });
        }
    }
    points
}

fn chaos_lag_drop(scale: Scale) -> Vec<ScenarioPoint> {
    const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Pocc,
        ProtocolKind::Cure,
        ProtocolKind::HaPocc,
        ProtocolKind::Adaptive,
    ];
    let w = scale.warmup();
    let d = scale.duration();
    let schedule = ChaosSchedule::new()
        .step(ChaosStep::LagSpike {
            at: w + d / 8,
            until: w + d * 3 / 8,
            a: ReplicaId(0),
            b: ReplicaId(1),
            extra: Duration::from_millis(40),
        })
        .step(ChaosStep::DropWindow {
            at: w + d / 4,
            until: w + d / 2,
            a: ReplicaId(0),
            b: ReplicaId(2),
        })
        .step(ChaosStep::DupWindow {
            at: w + d / 2,
            until: w + d * 3 / 4,
            a: ReplicaId(1),
            b: ReplicaId(2),
        });
    ALL.into_iter()
        .enumerate()
        .map(|(i, protocol)| ScenarioPoint {
            label: label(protocol, "chaos", "scripted"),
            x: i as f64,
            config: chaos_point(scale, protocol, schedule.clone()),
        })
        .collect()
}

fn chaos_restart(scale: Scale) -> Vec<ScenarioPoint> {
    let outages_ms: Vec<u64> = match scale {
        Scale::Smoke => vec![20, 60],
        Scale::Quick | Scale::Full => vec![50, 150],
    };
    let w = scale.warmup();
    let d = scale.duration();
    let mut points = Vec::new();
    for &outage_ms in &outages_ms {
        for protocol in [ProtocolKind::HaPocc, ProtocolKind::Adaptive] {
            let schedule = ChaosSchedule::new().step(ChaosStep::Restart {
                at: w + d / 4,
                replica: ReplicaId(1),
                outage: Duration::from_millis(outage_ms),
            });
            points.push(ScenarioPoint {
                label: label(protocol, "outage_ms", outage_ms),
                x: outage_ms as f64,
                config: chaos_point(scale, protocol, schedule),
            });
        }
    }
    points
}

/// The tentpole's evidence scenario: one server, one partition, POCC, swept over worker
/// lane counts on the threaded runtime ([`crate::parallel`]). Storage shards stay at the
/// default 8 so every lane count divides them evenly (lanes map to disjoint shard sets).
/// The workload and stream length are fixed per scale, so throughput differences between
/// points are the lanes, nothing else.
fn core_scaling(scale: Scale) -> Vec<ScenarioPoint> {
    [1usize, 2, 4]
        .into_iter()
        .map(|lanes| {
            let deployment = pocc_types::Config::builder()
                .num_replicas(1)
                .num_partitions(1)
                .worker_lanes(lanes)
                .build()
                .expect("core_scaling deployment is valid");
            ScenarioPoint {
                label: label(ProtocolKind::Pocc, "lanes", lanes),
                x: lanes as f64,
                config: point(scale, ProtocolKind::Pocc)
                    .deployment(deployment)
                    .clients_per_partition(1)
                    .mix(WorkloadMix::write_heavy())
                    .value_size(64)
                    .build(),
            }
        })
        .collect()
}

/// The remote-apply pipeline's evidence scenario: one server configured as replica 0 of
/// a three-replica deployment, swept over worker lane counts. The driver
/// ([`crate::parallel`]) feeds it batched `Replicate` traffic from the two synthetic
/// sibling origins at twice the client PUT volume — the steady-state ratio on a real
/// replica — so the throughput ratio between points measures how well remote installs
/// parallelise across lanes instead of serialising on the spine.
fn replication_scaling(scale: Scale) -> Vec<ScenarioPoint> {
    [1usize, 2, 4]
        .into_iter()
        .map(|lanes| {
            let deployment = pocc_types::Config::builder()
                .num_replicas(3)
                .num_partitions(1)
                .worker_lanes(lanes)
                .build()
                .expect("replication_scaling deployment is valid");
            ScenarioPoint {
                label: label(ProtocolKind::Pocc, "lanes", lanes),
                x: lanes as f64,
                config: point(scale, ProtocolKind::Pocc)
                    .deployment(deployment)
                    .clients_per_partition(1)
                    .mix(WorkloadMix::write_heavy())
                    .value_size(64)
                    .build(),
            }
        })
        .collect()
}

fn baseline(scale: Scale) -> Vec<ScenarioPoint> {
    let clients = moderate_clients(scale);
    BOTH.into_iter()
        .map(|protocol| ScenarioPoint {
            label: label(protocol, "clients", clients),
            x: clients as f64,
            // The seed-equivalent storage/replication configuration: one shard per
            // partition store, no replication batching (as before the sharding PR),
            // and the balanced default mix.
            config: point(scale, protocol)
                .clients_per_partition(clients)
                .mix(WorkloadMix::balanced())
                .storage_shards(1)
                .replication_batching(false)
                .build(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let scenarios = all();
        assert!(scenarios.len() >= 14, "{} scenarios", scenarios.len());
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "scenario names must be unique");
        for scenario in &scenarios {
            assert!(find(scenario.name).is_some());
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn every_scenario_expands_to_unique_labels_at_every_scale() {
        for scenario in all() {
            for scale in [Scale::Smoke, Scale::Quick, Scale::Full] {
                let points = scenario.points(scale);
                assert!(!points.is_empty(), "{} at {:?}", scenario.name, scale);
                let mut labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
                labels.sort_unstable();
                let before = labels.len();
                labels.dedup();
                assert_eq!(
                    labels.len(),
                    before,
                    "{} at {:?}: duplicate labels",
                    scenario.name,
                    scale
                );
            }
        }
    }

    #[test]
    fn select_resolves_names_globs_and_all() {
        let to_names = |scenarios: Vec<Scenario>| -> Vec<&'static str> {
            scenarios.into_iter().map(|s| s.name).collect()
        };
        let args =
            |patterns: &[&str]| -> Vec<String> { patterns.iter().map(|p| p.to_string()).collect() };

        assert_eq!(
            to_names(select(&args(&["all"])).unwrap()).len(),
            all().len()
        );
        assert_eq!(
            to_names(select(&args(&["baseline"])).unwrap()),
            vec!["baseline"]
        );
        assert_eq!(
            to_names(select(&args(&["chaos_*"])).unwrap()),
            vec!["chaos_partition_storm", "chaos_lag_drop", "chaos_restart"]
        );
        // Duplicates collapse; selection order is preserved.
        assert_eq!(
            to_names(select(&args(&["baseline", "chaos_restart", "baseline"])).unwrap()),
            vec!["baseline", "chaos_restart"]
        );
        // A selector that matches nothing is an error, not an empty run — and without
        // the trailing `*`, a prefix is just a misspelled exact name.
        assert!(select(&args(&["chaos_"])).is_err());
        assert!(select(&args(&["no_such_*"])).is_err());
        assert!(select(&args(&["no_such_scenario"])).is_err());
        assert!(select(&args(&["all", "no_such_scenario"])).is_err());
        assert!(select(&[]).is_err());
    }

    #[test]
    fn chaos_scenarios_check_consistency_and_end_before_the_drain() {
        for scenario in all().into_iter().filter(|s| s.name.starts_with("chaos_")) {
            for scale in [Scale::Smoke, Scale::Quick, Scale::Full] {
                let points = scenario.points(scale);
                assert!(!points.is_empty(), "{} at {:?}", scenario.name, scale);
                for point in points {
                    assert!(
                        point.config.check_consistency,
                        "{}/{}: chaos runs must keep the exact causal checker on",
                        scenario.name, point.label
                    );
                    assert!(
                        !point.config.chaos.is_empty() || scenario.name == "chaos_partition_storm",
                        "{}/{}: scripted chaos scenarios must schedule disturbances",
                        scenario.name,
                        point.label
                    );
                    let drain_start = point.config.warmup + point.config.duration;
                    assert!(
                        point.config.chaos.ends_by(drain_start),
                        "{}/{}: chaos must be over when the drain starts",
                        scenario.name,
                        point.label
                    );
                }
            }
        }
    }

    #[test]
    fn partition_heal_faults_stay_within_the_run() {
        for scale in [Scale::Smoke, Scale::Quick] {
            for point in partition_heal(scale) {
                let total = point.config.total_time();
                for fault in &point.config.faults {
                    let at = match fault {
                        FaultEvent::Partition { at, .. } | FaultEvent::Heal { at, .. } => *at,
                    };
                    assert!(at < total, "fault at {at:?} beyond run end {total:?}");
                }
            }
        }
    }
}
