//! Behaviour digests and the per-scenario digest corpus (`DIGESTS.json`).
//!
//! A behaviour digest is a one-line fingerprint of everything observable about a
//! deterministic simulation run: every protocol-level counter, the network totals, the
//! latency distribution shape and the end-of-run store statistics. Two runs of the same
//! scenario point produce the same digest if and only if they are observationally
//! identical — any change to message ordering, metric accounting, parking, timers, GC or
//! replication shows up as a digest mismatch.
//!
//! The [`DigestCorpus`] collects one digest per scenario point into the versioned
//! `DIGESTS.json` document checked in at the repository root. The benchmark runner emits
//! a fresh corpus (`runner --scenario all --digests DIGESTS.json`), and
//! `compare_bench --digests <baseline> <current>` diffs two corpora — CI runs that diff
//! as a blocking gate, replacing the former golden-digest test file as the single drift
//! detector. A deliberate behaviour change ships with a regenerated `DIGESTS.json` and
//! an explanation in the commit message.

use crate::json::Json;
use crate::scenarios::ScenarioReport;
use pocc_sim::SimReport;

/// The version of the `DIGESTS.json` schema. The digest *format* is part of the schema:
/// adding, removing or reordering digest fields bumps this version, and corpora of
/// different versions refuse to diff.
pub const DIGEST_SCHEMA_VERSION: u64 = 1;

/// A deterministic fingerprint of everything observable about a simulation run.
pub fn behaviour_digest(r: &SimReport) -> String {
    let m = &r.server_metrics;
    format!(
        "ops={} gets={} puts={} rotx={} reinit={} viol={} conv={} \
         net_msgs={} net_wan={} net_bytes={} net_held={} \
         lat_n={} lat_mean_us={} lat_max_us={} \
         keys={} versions={} max_chain={} store_gc={} \
         m_gets={} m_puts={} m_rotx={} m_slices={} \
         blocked={} block_us={} clock_us={} \
         old_g={} unm_g={} fresher={} unm_sum={} old_tx={} unm_tx={} tx_items={} \
         repl_rx={} repl_tx={} hb_rx={} hb_tx={} stab={} batches={} gc_msgs={} gc_rm={} \
         aborted={} bytes={}",
        r.operations_completed,
        r.gets_completed,
        r.puts_completed,
        r.rotx_completed,
        r.sessions_reinitialized,
        r.consistency_violations,
        r.converged,
        r.network.messages_sent,
        r.network.wan_messages,
        r.network.bytes_sent,
        r.network.held_messages,
        r.latency_all.count(),
        r.latency_all.mean().as_micros(),
        r.latency_all.max().as_micros(),
        r.store.keys,
        r.store.versions,
        r.store.max_chain_len,
        r.store.gc_removed,
        m.gets_served,
        m.puts_served,
        m.rotx_served,
        m.slices_served,
        m.blocked_operations,
        m.total_block_time.as_micros(),
        m.clock_wait_time.as_micros(),
        m.old_gets,
        m.unmerged_gets,
        m.fresher_versions_sum,
        m.unmerged_versions_sum,
        m.old_tx_items,
        m.unmerged_tx_items,
        m.tx_items_returned,
        m.replicate_received,
        m.replicate_sent,
        m.heartbeats_received,
        m.heartbeats_sent,
        m.stabilization_messages,
        m.batches_sent,
        m.gc_messages,
        m.gc_versions_removed,
        m.sessions_aborted,
        m.bytes_sent,
    )
}

/// The digests of one scenario run: `(point label, digest)` in sweep order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioDigests {
    /// The scenario's registry name.
    pub scenario: String,
    /// One `(label, digest)` entry per scenario point, in sweep order.
    pub points: Vec<(String, String)>,
}

/// A digest-per-scenario corpus: the serialisable content of `DIGESTS.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DigestCorpus {
    /// The scale every digest in the corpus was produced at.
    pub scale: String,
    /// One entry per scenario, in registry order.
    pub scenarios: Vec<ScenarioDigests>,
}

impl DigestCorpus {
    /// An empty corpus for runs at `scale`.
    pub fn new(scale: &str) -> Self {
        DigestCorpus {
            scale: scale.into(),
            scenarios: Vec::new(),
        }
    }

    /// Appends the digests of a finished scenario run.
    pub fn add_report(&mut self, report: &ScenarioReport) {
        self.scenarios.push(ScenarioDigests {
            scenario: report.scenario.into(),
            points: report
                .points
                .iter()
                .map(|p| (p.label.clone(), behaviour_digest(&p.report)))
                .collect(),
        });
    }

    /// Serialises the corpus to the versioned `DIGESTS.json` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "digest_schema_version".into(),
                Json::u64(DIGEST_SCHEMA_VERSION),
            ),
            ("scale".into(), Json::str(self.scale.clone())),
            (
                "scenarios".into(),
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("scenario".into(), Json::str(s.scenario.clone())),
                                (
                                    "points".into(),
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|(label, digest)| {
                                                Json::Obj(vec![
                                                    ("label".into(), Json::str(label.clone())),
                                                    ("digest".into(), Json::str(digest.clone())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `DIGESTS.json` document, rejecting unknown schema versions and malformed
    /// entries with a readable path-qualified error.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version = doc
            .get("digest_schema_version")
            .and_then(Json::as_u64)
            .ok_or("$.digest_schema_version: missing or not a whole number")?;
        if version != DIGEST_SCHEMA_VERSION {
            return Err(format!(
                "$.digest_schema_version: expected {DIGEST_SCHEMA_VERSION}, found {version}"
            ));
        }
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("$.scale: missing or not a string")?
            .to_string();
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("$.scenarios: missing or not an array")?;
        let mut corpus = DigestCorpus::new(&scale);
        for (i, entry) in scenarios.iter().enumerate() {
            let path = format!("$.scenarios[{i}]");
            let scenario = entry
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or(format!("{path}.scenario: missing or not a string"))?
                .to_string();
            let points = entry
                .get("points")
                .and_then(Json::as_array)
                .ok_or(format!("{path}.points: missing or not an array"))?;
            let mut digests = Vec::with_capacity(points.len());
            for (j, point) in points.iter().enumerate() {
                let ppath = format!("{path}.points[{j}]");
                let label = point
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or(format!("{ppath}.label: missing or not a string"))?;
                let digest = point
                    .get("digest")
                    .and_then(Json::as_str)
                    .ok_or(format!("{ppath}.digest: missing or not a string"))?;
                digests.push((label.to_string(), digest.to_string()));
            }
            corpus.scenarios.push(ScenarioDigests {
                scenario,
                points: digests,
            });
        }
        Ok(corpus)
    }

    /// Diffs this corpus (the baseline) against `current`.
    ///
    /// Differences split into two severities. *Failures* mean behaviour the baseline
    /// recorded has changed or disappeared: scale mismatches, scenarios or points
    /// present only in the baseline, and digest drift (with both digests printed so the
    /// changed fields are visible side by side). *Notes* are entries present only in
    /// `current` — a new scenario or a new sweep axis (say, a lane count the older
    /// baseline predates) extends coverage without invalidating anything the baseline
    /// vouches for, so it informs rather than fails.
    pub fn diff(&self, current: &DigestCorpus) -> DigestDiff {
        let mut diff = DigestDiff::default();
        if self.scale != current.scale {
            diff.failures.push(format!(
                "scale mismatch: baseline ran at {:?}, current at {:?}",
                self.scale, current.scale
            ));
        }
        for base in &self.scenarios {
            let Some(cur) = current
                .scenarios
                .iter()
                .find(|s| s.scenario == base.scenario)
            else {
                diff.failures
                    .push(format!("{}: missing from current corpus", base.scenario));
                continue;
            };
            for (label, base_digest) in &base.points {
                match cur.points.iter().find(|(l, _)| l == label) {
                    None => diff.failures.push(format!(
                        "{}/{}: missing from current corpus",
                        base.scenario, label
                    )),
                    Some((_, cur_digest)) if cur_digest != base_digest => {
                        diff.failures.push(format!(
                            "{}/{}: digest drift\n  baseline: {}\n  current:  {}",
                            base.scenario, label, base_digest, cur_digest
                        ));
                    }
                    Some(_) => {}
                }
            }
            for (label, _) in &cur.points {
                if !base.points.iter().any(|(l, _)| l == label) {
                    diff.notes.push(format!(
                        "{}/{}: not in baseline corpus (new point)",
                        base.scenario, label
                    ));
                }
            }
        }
        for cur in &current.scenarios {
            if !self.scenarios.iter().any(|s| s.scenario == cur.scenario) {
                diff.notes.push(format!(
                    "{}: not in baseline corpus (new scenario)",
                    cur.scenario
                ));
            }
        }
        diff
    }
}

/// The result of diffing two digest corpora: blocking `failures` (drift, missing
/// entries, scale mismatch) and informational `notes` (entries only the newer corpus
/// has). The drift gate fails only on `failures`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DigestDiff {
    /// Behaviour the baseline recorded changed or disappeared.
    pub failures: Vec<String>,
    /// Coverage the baseline does not have yet (new scenarios or sweep points).
    pub notes: Vec<String>,
}

impl DigestDiff {
    /// Whether the corpora agree on everything the baseline records.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Whether the two corpora are exactly identical (no failures *and* no notes).
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty() && self.notes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(entries: &[(&str, &[(&str, &str)])]) -> DigestCorpus {
        DigestCorpus {
            scale: "smoke".into(),
            scenarios: entries
                .iter()
                .map(|(name, points)| ScenarioDigests {
                    scenario: name.to_string(),
                    points: points
                        .iter()
                        .map(|(l, d)| (l.to_string(), d.to_string()))
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let c = corpus(&[
            (
                "baseline",
                &[("POCC/clients=6", "ops=1"), ("Cure*/clients=6", "ops=2")],
            ),
            ("chaos_mixed", &[("POCC/seed=1", "ops=3")]),
        ]);
        let parsed = DigestCorpus::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn from_json_rejects_wrong_version_and_malformed_entries() {
        let mut doc = corpus(&[]).to_json();
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::u64(DIGEST_SCHEMA_VERSION + 1);
        }
        let err = DigestCorpus::from_json(&doc).unwrap_err();
        assert!(err.contains("digest_schema_version"), "{err}");

        let err = DigestCorpus::from_json(&Json::Obj(vec![])).unwrap_err();
        assert!(err.contains("digest_schema_version"), "{err}");

        let doc = crate::json::parse(
            r#"{"digest_schema_version": 1, "scale": "smoke",
                "scenarios": [{"scenario": "x", "points": [{"label": "p"}]}]}"#,
        )
        .unwrap();
        let err = DigestCorpus::from_json(&doc).unwrap_err();
        assert!(err.contains("$.scenarios[0].points[0].digest"), "{err}");
    }

    #[test]
    fn diff_reports_drift_missing_and_new_entries() {
        let base = corpus(&[
            ("a", &[("p1", "d1"), ("p2", "d2")]),
            ("gone", &[("p", "d")]),
        ]);
        let cur = corpus(&[
            ("a", &[("p1", "d1-changed"), ("p3", "d3")]),
            ("new", &[("p", "d")]),
        ]);
        let diff = base.diff(&cur);
        let failures = diff.failures.join("\n");
        assert!(failures.contains("a/p1: digest drift"), "{failures}");
        assert!(failures.contains("a/p2: missing"), "{failures}");
        assert!(failures.contains("gone: missing"), "{failures}");
        assert_eq!(diff.failures.len(), 3, "{failures}");

        // Entries only the current corpus has are informational, not failing: an older
        // baseline simply predates the new coverage.
        let notes = diff.notes.join("\n");
        assert!(notes.contains("a/p3: not in baseline"), "{notes}");
        assert!(notes.contains("new: not in baseline"), "{notes}");
        assert_eq!(diff.notes.len(), 2, "{notes}");
        assert!(!diff.is_clean());
        assert!(!diff.is_empty());

        assert!(base.diff(&base).is_empty(), "a corpus agrees with itself");
    }

    #[test]
    fn new_coverage_alone_is_clean_but_not_empty() {
        let base = corpus(&[("a", &[("p1", "d1")])]);
        let cur = corpus(&[("a", &[("p1", "d1"), ("p2", "d2")]), ("b", &[("p", "d")])]);
        let diff = base.diff(&cur);
        assert!(diff.is_clean(), "{:?}", diff.failures);
        assert!(!diff.is_empty());
        assert_eq!(diff.notes.len(), 2);
    }

    #[test]
    fn diff_flags_scale_mismatch() {
        let base = corpus(&[]);
        let mut cur = base.clone();
        cur.scale = "full".into();
        let diff = base.diff(&cur);
        assert_eq!(diff.failures.len(), 1);
        assert!(
            diff.failures[0].contains("scale mismatch"),
            "{}",
            diff.failures[0]
        );
    }
}
