//! The digest corpus is the repository's behaviour-drift gate: `DIGESTS.json` at the
//! repository root holds one behaviour digest per smoke-scale scenario point, and CI
//! regenerates the corpus and diffs it (`compare_bench --digests`) as a blocking check.
//!
//! These tests keep the checked-in corpus honest between CI runs: it must parse, carry
//! the current schema version, cover the whole scenario registry point-for-point, and —
//! for a cheap spot-check — match a fresh deterministic run of the `baseline` scenario.
//! The full-registry diff stays in CI where its runtime belongs.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! cargo run --release -p pocc-bench --bin runner -- \
//!     --scenario all --scale smoke --digests DIGESTS.json
//! ```
//!
//! and explain the change in the commit message.

use pocc_bench::digest::{behaviour_digest, DigestCorpus, DIGEST_SCHEMA_VERSION};
use pocc_bench::{json, scenarios, Scale};

fn checked_in_corpus() -> DigestCorpus {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DIGESTS.json");
    let text = std::fs::read_to_string(path).expect("DIGESTS.json exists at the repo root");
    let doc = json::parse(&text).expect("DIGESTS.json parses");
    DigestCorpus::from_json(&doc).expect("DIGESTS.json matches the corpus schema")
}

#[test]
fn corpus_parses_and_carries_the_current_schema_version() {
    let corpus = checked_in_corpus();
    assert_eq!(
        corpus.scale, "smoke",
        "the corpus is generated at smoke scale"
    );
    // from_json rejects other versions, so reaching here proves the version; make the
    // intent explicit anyway.
    let doc = corpus.to_json();
    assert_eq!(
        doc.get("digest_schema_version")
            .and_then(json::Json::as_u64),
        Some(DIGEST_SCHEMA_VERSION)
    );
}

#[test]
fn corpus_covers_the_whole_scenario_registry_point_for_point() {
    // Wall-clock scenarios (e.g. core_scaling) are timing-dependent and deliberately
    // excluded from the corpus; only deterministic simulator scenarios are covered.
    let sim_scenarios: Vec<_> = scenarios::all()
        .into_iter()
        .filter(|s| s.kind == scenarios::ScenarioKind::Sim)
        .collect();
    let corpus = checked_in_corpus();
    for scenario in &sim_scenarios {
        let entry = corpus
            .scenarios
            .iter()
            .find(|s| s.scenario == scenario.name)
            .unwrap_or_else(|| panic!("{}: not in DIGESTS.json — regenerate", scenario.name));
        let expected: Vec<String> = scenario
            .points(Scale::Smoke)
            .into_iter()
            .map(|p| p.label)
            .collect();
        let actual: Vec<&str> = entry.points.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            actual, expected,
            "{}: corpus points diverge from the registry sweep — regenerate",
            scenario.name
        );
    }
    assert_eq!(
        corpus.scenarios.len(),
        sim_scenarios.len(),
        "corpus contains scenarios no longer in the registry — regenerate"
    );
}

#[test]
fn baseline_scenario_matches_its_checked_in_digests() {
    let corpus = checked_in_corpus();
    let entry = corpus
        .scenarios
        .iter()
        .find(|s| s.scenario == "baseline")
        .expect("baseline scenario is in the corpus");
    let scenario = scenarios::find("baseline").unwrap();
    let report = scenario.run(Scale::Smoke, |_| {});
    for (point, (label, checked_in)) in report.points.iter().zip(&entry.points) {
        assert_eq!(&point.label, label);
        assert_eq!(
            &behaviour_digest(&point.report),
            checked_in,
            "baseline/{label}: behaviour drifted from DIGESTS.json — if intentional, \
             regenerate the corpus and explain the change in the commit message"
        );
    }
}

#[test]
fn behaviour_digests_are_deterministic() {
    let scenario = scenarios::find("chaos_lag_drop").unwrap();
    let first: Vec<String> = scenario
        .run(Scale::Smoke, |_| {})
        .points
        .iter()
        .map(|p| behaviour_digest(&p.report))
        .collect();
    let second: Vec<String> = scenario
        .run(Scale::Smoke, |_| {})
        .points
        .iter()
        .map(|p| behaviour_digest(&p.report))
        .collect();
    assert_eq!(first, second, "same scenario, same seed, same digests");
}
