//! Scenario-registry round-trip: every registered scenario resolves by name, runs at
//! smoke parameters, and produces a schema-valid `BENCH_*.json` document that survives
//! a serialize → parse round trip.
//!
//! This is the same path CI's `bench-smoke` job exercises, so a scenario that breaks
//! (bad sweep, panicking config, schema drift) fails `cargo test` before it fails CI.

use pocc_bench::json;
use pocc_bench::scenarios;
use pocc_bench::Scale;

#[test]
fn every_scenario_runs_at_smoke_scale_and_emits_schema_valid_json() {
    let registry = scenarios::all();
    assert!(
        registry.len() >= 14,
        "the registry must keep at least the 9 paper-figure scenarios, the ablations, \
         and 4 extended workloads"
    );

    for scenario in registry {
        let resolved = scenarios::find(scenario.name).expect("registry name resolves");
        assert_eq!(resolved.name, scenario.name);

        let report = resolved.run(Scale::Smoke, |_| {});
        assert!(
            !report.points.is_empty(),
            "{}: no points at smoke scale",
            scenario.name
        );
        for point in &report.points {
            assert!(
                point.report.operations_completed > 0,
                "{}/{}: completed no operations",
                scenario.name,
                point.label
            );
        }

        let doc = report.to_json();
        json::validate_report(&doc)
            .unwrap_or_else(|err| panic!("{}: schema validation failed: {err}", scenario.name));

        // The document survives a write → parse round trip unchanged.
        let text = doc.to_pretty();
        let parsed = json::parse(&text)
            .unwrap_or_else(|err| panic!("{}: writer output unparsable: {err}", scenario.name));
        assert_eq!(parsed, doc, "{}: JSON round trip diverged", scenario.name);
        json::validate_report(&parsed).expect("parsed document still validates");
    }
}

#[test]
fn scenario_runs_are_deterministic() {
    // Two runs of the same scenario at the same scale produce byte-identical JSON;
    // this is what lets CI diff fresh runs against the checked-in baseline.
    let scenario = scenarios::find("baseline").expect("baseline scenario exists");
    let a = scenario.run(Scale::Smoke, |_| {}).to_json().to_pretty();
    let scenario = scenarios::find("baseline").expect("baseline scenario exists");
    let b = scenario.run(Scale::Smoke, |_| {}).to_json().to_pretty();
    assert_eq!(a, b);
}

#[test]
fn partition_heal_scenario_reports_fault_effects() {
    let scenario = scenarios::find("partition_heal").expect("registered");
    let report = scenario.run(Scale::Smoke, |_| {});
    // The control point (no partition) and the faulted point must both complete work.
    assert!(report.points.len() >= 2);
    let control = &report.points[0];
    let faulted = report.points.last().unwrap();
    assert_eq!(control.config.faults.len(), 0);
    assert!(!faulted.config.faults.is_empty());
    assert!(faulted.report.operations_completed > 0);
}
